//! Partitioned alignments: one shared tree, several data blocks ("genes"),
//! each with its own alphabet and substitution model.
//!
//! A partition file uses the RAxML-style syntax, one partition per line:
//!
//! ```text
//! # model, name = sites (1-based, inclusive; comma-separated ranges)
//! DNA,   gene1 = 1-400
//! PROT,  gene2 = 401-600, 701-720
//! CODON, gene3 = 601-700
//! ```
//!
//! Model keywords: `DNA`/`NUC` (4-state nucleotide), `PROT`/`AA`/`POISSON`
//! (20-state amino acid), `CODON`/`GY94` (61-state codon; the site range
//! counts *nucleotide* columns, whose length must be divisible by 3 —
//! triplets are re-encoded via [`crate::Alignment::to_codons`]).
//!
//! [`PartitionSpec::split_chars`] slices the raw character matrix into one
//! [`Alignment`] per partition, each encoded under its own alphabet — the
//! input file itself has no single alphabet when partitions mix data
//! types, which is why the splitter consumes characters, not masks.

use crate::alignment::{Alignment, AlignmentError};
use crate::alphabet::Alphabet;
use std::ops::Range;

/// The data type (and default model family) of one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionKind {
    /// 4-state nucleotide data.
    Dna,
    /// 20-state amino-acid data.
    Protein,
    /// 61-state codon data (site ranges count nucleotide columns).
    Codon,
}

impl PartitionKind {
    /// The alphabet a partition of this kind encodes to.
    pub fn alphabet(&self) -> Alphabet {
        match self {
            PartitionKind::Dna => Alphabet::Dna,
            PartitionKind::Protein => Alphabet::Protein,
            PartitionKind::Codon => Alphabet::Codon,
        }
    }

    /// Canonical keyword (what [`std::fmt::Display`] prints).
    pub fn keyword(&self) -> &'static str {
        match self {
            PartitionKind::Dna => "DNA",
            PartitionKind::Protein => "PROT",
            PartitionKind::Codon => "CODON",
        }
    }
}

impl std::fmt::Display for PartitionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One partition: a named, typed set of alignment column ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionDef {
    /// Partition name (unique within a spec).
    pub name: String,
    /// Data type / model family.
    pub kind: PartitionKind,
    /// Column ranges, 0-based half-open, in file order.
    pub ranges: Vec<Range<usize>>,
}

impl PartitionDef {
    /// Total number of input (nucleotide/amino-acid) columns.
    pub fn n_columns(&self) -> usize {
        self.ranges.iter().map(|r| r.len()).sum()
    }
}

/// Errors from parsing or applying a partition spec.
#[derive(Debug)]
pub enum PartitionError {
    /// A line could not be parsed (line number, message).
    Parse(usize, String),
    /// Two partitions claim the same column.
    Overlap { column: usize, a: String, b: String },
    /// A range exceeds the alignment length.
    OutOfBounds {
        name: String,
        end: usize,
        n_sites: usize,
    },
    /// Encoding a partition's slice failed.
    Encode {
        name: String,
        source: AlignmentError,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Parse(line, msg) => write!(f, "partition line {line}: {msg}"),
            PartitionError::Overlap { column, a, b } => write!(
                f,
                "partitions {a:?} and {b:?} both claim column {}",
                column + 1
            ),
            PartitionError::OutOfBounds { name, end, n_sites } => write!(
                f,
                "partition {name:?} ends at column {end} but the alignment has {n_sites} sites"
            ),
            PartitionError::Encode { name, source } => {
                write!(f, "partition {name:?}: {source}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// An ordered set of disjoint partitions over one alignment's columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// The partitions, in file order.
    pub partitions: Vec<PartitionDef>,
}

impl PartitionSpec {
    /// Parse the RAxML-style partition syntax (see the module docs).
    /// `#`-comments and blank lines are skipped.
    pub fn parse(text: &str) -> Result<PartitionSpec, PartitionError> {
        let mut partitions: Vec<PartitionDef> = Vec::new();
        for (li, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lno = li + 1;
            let err = |msg: String| PartitionError::Parse(lno, msg);
            let (head, sites) = line
                .split_once('=')
                .ok_or_else(|| err("expected `model, name = sites`".into()))?;
            let (model, name) = head
                .split_once(',')
                .ok_or_else(|| err("expected `model, name` before `=`".into()))?;
            let kind = match model.trim().to_ascii_uppercase().as_str() {
                "DNA" | "NUC" => PartitionKind::Dna,
                "PROT" | "AA" | "POISSON" => PartitionKind::Protein,
                "CODON" | "GY94" => PartitionKind::Codon,
                other => return Err(err(format!("unknown model keyword {other:?}"))),
            };
            let name = name.trim();
            if name.is_empty() {
                return Err(err("empty partition name".into()));
            }
            if partitions.iter().any(|p| p.name == name) {
                return Err(err(format!("duplicate partition name {name:?}")));
            }
            let mut ranges = Vec::new();
            for part in sites.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    return Err(err("empty site range".into()));
                }
                let (a, b) = match part.split_once('-') {
                    Some((a, b)) => (a.trim(), b.trim()),
                    None => (part, part),
                };
                let start: usize = a
                    .parse()
                    .map_err(|_| err(format!("bad site number {a:?}")))?;
                let end: usize = b
                    .parse()
                    .map_err(|_| err(format!("bad site number {b:?}")))?;
                if start == 0 || end < start {
                    return Err(err(format!("bad range {part:?} (sites are 1-based)")));
                }
                ranges.push(start - 1..end);
            }
            partitions.push(PartitionDef {
                name: name.to_owned(),
                kind,
                ranges,
            });
        }
        if partitions.is_empty() {
            return Err(PartitionError::Parse(0, "no partitions defined".into()));
        }
        let spec = PartitionSpec { partitions };
        spec.check_disjoint()?;
        Ok(spec)
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Highest column index any partition touches, exclusive.
    pub fn max_column(&self) -> usize {
        self.partitions
            .iter()
            .flat_map(|p| p.ranges.iter().map(|r| r.end))
            .max()
            .unwrap_or(0)
    }

    fn check_disjoint(&self) -> Result<(), PartitionError> {
        let mut owner: Vec<(Range<usize>, usize)> = Vec::new();
        for (pi, p) in self.partitions.iter().enumerate() {
            for r in &p.ranges {
                for (other, oi) in &owner {
                    if r.start < other.end && other.start < r.end {
                        return Err(PartitionError::Overlap {
                            column: r.start.max(other.start),
                            a: self.partitions[*oi].name.clone(),
                            b: p.name.clone(),
                        });
                    }
                }
                owner.push((r.clone(), pi));
            }
        }
        Ok(())
    }

    /// Slice the raw character matrix into one [`Alignment`] per partition
    /// (in spec order), encoding each slice under its partition's
    /// alphabet. Codon partitions are encoded as DNA triplets and
    /// re-encoded to 61-state codons.
    pub fn split_chars(
        &self,
        entries: &[(String, String)],
    ) -> Result<Vec<Alignment>, PartitionError> {
        let n_sites = entries.first().map_or(0, |(_, s)| s.len());
        for p in &self.partitions {
            if let Some(r) = p.ranges.iter().find(|r| r.end > n_sites) {
                return Err(PartitionError::OutOfBounds {
                    name: p.name.clone(),
                    end: r.end,
                    n_sites,
                });
            }
        }
        self.partitions
            .iter()
            .map(|p| {
                let sliced: Vec<(String, String)> = entries
                    .iter()
                    .map(|(name, row)| {
                        let cols: String = p
                            .ranges
                            .iter()
                            .flat_map(|r| row[r.clone()].chars())
                            .collect();
                        (name.clone(), cols)
                    })
                    .collect();
                let encode_err = |source| PartitionError::Encode {
                    name: p.name.clone(),
                    source,
                };
                match p.kind {
                    PartitionKind::Codon => Alignment::from_chars(Alphabet::Dna, &sliced)
                        .and_then(|a| a.to_codons())
                        .map_err(encode_err),
                    kind => Alignment::from_chars(kind.alphabet(), &sliced).map_err(encode_err),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
# mixed-type example
DNA,   gene1 = 1-6
PROT,  gene2 = 7-9   # trailing comment
CODON, gene3 = 10-15
";

    #[test]
    fn parses_mixed_spec() {
        let spec = PartitionSpec::parse(SPEC).unwrap();
        assert_eq!(spec.n_partitions(), 3);
        assert_eq!(spec.partitions[0].kind, PartitionKind::Dna);
        assert_eq!(spec.partitions[0].ranges, vec![0..6]);
        assert_eq!(spec.partitions[1].kind, PartitionKind::Protein);
        assert_eq!(spec.partitions[2].kind, PartitionKind::Codon);
        assert_eq!(spec.max_column(), 15);
    }

    #[test]
    fn parses_multi_range_and_single_site() {
        let spec = PartitionSpec::parse("NUC, a = 1-3, 7, 9-10\nAA, b = 4-6").unwrap();
        assert_eq!(spec.partitions[0].ranges, vec![0..3, 6..7, 8..10]);
        assert_eq!(spec.partitions[0].n_columns(), 6);
    }

    #[test]
    fn rejects_overlap_and_garbage() {
        assert!(matches!(
            PartitionSpec::parse("DNA, a = 1-5\nDNA, b = 5-8"),
            Err(PartitionError::Overlap { column: 4, .. })
        ));
        assert!(PartitionSpec::parse("DNA a = 1-5").is_err());
        assert!(PartitionSpec::parse("RNA, a = 1-5").is_err());
        assert!(PartitionSpec::parse("DNA, a = 0-5").is_err());
        assert!(PartitionSpec::parse("DNA, a = 1-5\nDNA, a = 6-8").is_err());
        assert!(PartitionSpec::parse("").is_err());
    }

    #[test]
    fn split_chars_encodes_each_kind() {
        let spec = PartitionSpec::parse(SPEC).unwrap();
        let entries = vec![
            ("s0".to_owned(), "ACGTRN MFW ATGGCN".replace(' ', "")),
            ("s1".to_owned(), "ACGTAC ARV TTTAAT".replace(' ', "")),
        ];
        let parts = spec.split_chars(&entries).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].alphabet(), Alphabet::Dna);
        assert_eq!(parts[0].n_sites(), 6);
        assert_eq!(parts[1].alphabet(), Alphabet::Protein);
        assert_eq!(parts[1].n_sites(), 3);
        assert_eq!(parts[2].alphabet(), Alphabet::Codon);
        assert_eq!(parts[2].n_sites(), 2);
        // Out-of-bounds spec against a shorter matrix is reported.
        let short = vec![("s0".to_owned(), "ACGT".to_owned())];
        assert!(matches!(
            spec.split_chars(&short),
            Err(PartitionError::OutOfBounds { .. })
        ));
    }
}
