//! FASTA reading and writing.

use crate::alignment::{Alignment, AlignmentError};
use crate::alphabet::Alphabet;
use std::io::{self, BufRead, Write};

/// Errors when reading FASTA.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural or encoding problem.
    Format(String),
}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

impl From<AlignmentError> for FastaError {
    fn from(e: AlignmentError) -> Self {
        FastaError::Format(e.to_string())
    }
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::Format(s) => write!(f, "FASTA format error: {s}"),
        }
    }
}

impl std::error::Error for FastaError {}

/// Read an aligned FASTA file from any buffered reader.
pub fn read_fasta<R: BufRead>(reader: R, alphabet: Alphabet) -> Result<Alignment, FastaError> {
    let mut entries: Vec<(String, String)> = Vec::new();
    let mut current: Option<(String, String)> = None;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            if let Some(done) = current.take() {
                entries.push(done);
            }
            let name = name.split_whitespace().next().unwrap_or("").to_owned();
            if name.is_empty() {
                return Err(FastaError::Format("empty sequence name".into()));
            }
            current = Some((name, String::new()));
        } else {
            match current.as_mut() {
                Some((_, seq)) => seq.push_str(line.trim()),
                None => {
                    return Err(FastaError::Format(
                        "sequence data before first '>' header".into(),
                    ))
                }
            }
        }
    }
    if let Some(done) = current.take() {
        entries.push(done);
    }
    Ok(Alignment::from_chars(alphabet, &entries)?)
}

/// Write an alignment as FASTA with 70-column wrapping.
pub fn write_fasta<W: Write>(w: &mut W, alignment: &Alignment) -> io::Result<()> {
    for i in 0..alignment.n_seqs() {
        writeln!(w, ">{}", alignment.names()[i])?;
        let chars = alignment.seq_chars(i);
        for chunk in chars.as_bytes().chunks(70) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parse_simple() {
        let data = ">a desc ignored\nACGT\n>b\nAC\nGT\n";
        let a = read_fasta(BufReader::new(data.as_bytes()), Alphabet::Dna).unwrap();
        assert_eq!(a.n_seqs(), 2);
        assert_eq!(a.names(), &["a", "b"]);
        assert_eq!(a.seq_chars(1), "ACGT");
    }

    #[test]
    fn roundtrip() {
        let a = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("tax1".into(), "ACGTN-RY".into()),
                ("tax2".into(), "TTTTACGT".into()),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &a).unwrap();
        let b = read_fasta(BufReader::new(&buf[..]), Alphabet::Dna).unwrap();
        assert_eq!(a.names(), b.names());
        assert_eq!(a.seq(0), b.seq(0));
        assert_eq!(a.seq(1), b.seq(1));
    }

    #[test]
    fn data_before_header_is_error() {
        let r = read_fasta(BufReader::new("ACGT\n>a\nAC".as_bytes()), Alphabet::Dna);
        assert!(r.is_err());
    }

    #[test]
    fn ragged_lengths_rejected() {
        let r = read_fasta(
            BufReader::new(">a\nACGT\n>b\nAC\n".as_bytes()),
            Alphabet::Dna,
        );
        assert!(matches!(r, Err(FastaError::Format(_))));
    }

    #[test]
    fn long_sequences_wrap() {
        let seq: String = "A".repeat(200);
        let a = Alignment::from_chars(Alphabet::Dna, &[("x".into(), seq)]).unwrap();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &a).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().all(|l| l.len() <= 70));
        let b = read_fasta(BufReader::new(text.as_bytes()), Alphabet::Dna).unwrap();
        assert_eq!(b.n_sites(), 200);
    }
}
