//! Sequence simulation along a tree (the INDELible substitute).
//!
//! Draws a root sequence from the stationary distribution, assigns each site
//! a discrete-Γ rate category, and evolves states along every branch using
//! the exact transition probabilities `P(t·r_c)`. This is how we generate
//! the paper's datasets: the 1288/1908-taxon search inputs and the
//! 8192-taxon variable-width datasets of Figure 5 (the paper used INDELible
//! for the latter; substitution-only simulation reproduces the same
//! alignment geometry, which is all the out-of-core experiments depend on).

use crate::alignment::Alignment;
use crate::alphabet::Alphabet;
use phylo_models::{DiscreteGamma, PMatrices, ReversibleModel};
use phylo_tree::Tree;
use rand::Rng;

/// Simulate an alignment of `n_sites` columns along `tree` under `model`
/// with `gamma` rate heterogeneity. Tip `i` of the tree becomes sequence `i`
/// named `t<i>`. All characters are unambiguous.
pub fn simulate_alignment<R: Rng>(
    tree: &Tree,
    model: &ReversibleModel,
    gamma: &DiscreteGamma,
    n_sites: usize,
    rng: &mut R,
) -> Alignment {
    let alphabet = match model.n_states() {
        4 => Alphabet::Dna,
        20 => Alphabet::Protein,
        61 => Alphabet::Codon,
        n => panic!("no alphabet with {n} states"),
    };
    let n_states = model.n_states();
    let eigen = model.eigen();
    let n_cats = gamma.n_cats();

    // Per-branch transition matrices, indexed by half-edge id of the
    // child-facing half-edge (we fill both directions for simplicity).
    let mut pmats: Vec<Option<PMatrices>> = (0..tree.n_half_edges()).map(|_| None).collect();
    for h in tree.branches() {
        let mut pm = PMatrices::new(n_states, n_cats);
        pm.update(&eigen, gamma, tree.branch_length(h));
        pmats[h as usize] = Some(pm);
        pmats[tree.back(h) as usize] = None; // one copy per branch is enough
    }
    let pm_of = |h: u32| -> &PMatrices {
        pmats[h as usize]
            .as_ref()
            .or(pmats[tree.back(h) as usize].as_ref())
            .expect("transition matrix missing")
    };

    // Site rate categories, fixed across the tree.
    let cats: Vec<u8> = (0..n_sites)
        .map(|_| rng.gen_range(0..n_cats) as u8)
        .collect();

    // Root the simulation at inner node 0 and evolve outwards in pre-order.
    let root = tree.inner_node(0);
    let mut states: Vec<Vec<u8>> = vec![Vec::new(); tree.n_nodes()];
    states[root as usize] = (0..n_sites)
        .map(|_| sample_categorical(model.freqs(), rng))
        .collect();

    // Pre-order over directed half-edges leaving the root region.
    let mut stack: Vec<u32> = tree.ring(root).to_vec();
    while let Some(h) = stack.pop() {
        let parent = tree.node_of(h);
        let child = tree.neighbor(h);
        let pm = pm_of(h);
        let parent_states = std::mem::take(&mut states[parent as usize]);
        let mut child_states = Vec::with_capacity(n_sites);
        let mut row = vec![0.0f64; n_states];
        for site in 0..n_sites {
            let x = parent_states[site] as usize;
            let c = cats[site] as usize;
            let cat = pm.cat(c);
            row.copy_from_slice(&cat[x * n_states..(x + 1) * n_states]);
            child_states.push(sample_categorical(&row, rng));
        }
        states[parent as usize] = parent_states;
        states[child as usize] = child_states;
        if !tree.is_tip(child) {
            let hb = tree.back(h);
            let (l, r) = tree.children_dirs(hb);
            stack.push(l);
            stack.push(r);
        }
        // Parent states can be dropped once all its outgoing edges are done;
        // for simplicity we keep them (peak memory n_nodes * n_sites bytes).
    }

    let names: Vec<String> = (0..tree.n_tips()).map(|i| format!("t{i}")).collect();
    let seqs: Vec<Vec<crate::alphabet::SiteMask>> = (0..tree.n_tips())
        .map(|t| {
            states[t]
                .iter()
                .map(|&s| alphabet.state_mask(s as usize))
                .collect()
        })
        .collect();
    Alignment::from_encoded(alphabet, names, seqs)
}

/// Sample an index from unnormalised non-negative weights.
fn sample_categorical<R: Rng>(weights: &[f64], rng: &mut R) -> u8 {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i as u8;
        }
        u -= w;
    }
    (weights.len() - 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_tree::build::{random_topology, yule_like_lengths};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Tree, ReversibleModel, DiscreteGamma) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = random_topology(n, 0.1, &mut rng);
        yule_like_lengths(&mut tree, 0.1, 1e-4, &mut rng);
        (tree, ReversibleModel::jc69(), DiscreteGamma::new(1.0, 4))
    }

    #[test]
    fn shapes_and_names() {
        let (tree, model, gamma) = setup(12, 1);
        let a = simulate_alignment(&tree, &model, &gamma, 300, &mut StdRng::seed_from_u64(2));
        assert_eq!(a.n_seqs(), 12);
        assert_eq!(a.n_sites(), 300);
        assert_eq!(a.names()[5], "t5");
        assert!(a.seq(0).iter().all(|&m| m.count_ones() == 1));
    }

    #[test]
    fn deterministic_for_seed() {
        let (tree, model, gamma) = setup(8, 3);
        let a = simulate_alignment(&tree, &model, &gamma, 100, &mut StdRng::seed_from_u64(9));
        let b = simulate_alignment(&tree, &model, &gamma, 100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = simulate_alignment(&tree, &model, &gamma, 100, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn base_composition_roughly_stationary() {
        let freqs = [0.4, 0.3, 0.2, 0.1];
        let model = ReversibleModel::hky85(2.0, &freqs);
        let mut rng = StdRng::seed_from_u64(4);
        let mut tree = random_topology(20, 0.1, &mut rng);
        yule_like_lengths(&mut tree, 0.15, 1e-4, &mut rng);
        let a = simulate_alignment(
            &tree,
            &model,
            &DiscreteGamma::none(),
            4000,
            &mut StdRng::seed_from_u64(5),
        );
        let emp = a.empirical_freqs();
        for (e, f) in emp.iter().zip(freqs.iter()) {
            assert!((e - f).abs() < 0.05, "empirical {e} vs stationary {f}");
        }
    }

    #[test]
    fn short_branches_conserve_sequences() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut tree = random_topology(6, 1e-6, &mut rng);
        for h in tree.branches().collect::<Vec<_>>() {
            tree.set_branch_length(h, 1e-8);
        }
        let a = simulate_alignment(
            &tree,
            &ReversibleModel::jc69(),
            &DiscreteGamma::none(),
            200,
            &mut rng,
        );
        // With essentially zero branch lengths all sequences are identical.
        for i in 1..a.n_seqs() {
            assert_eq!(a.seq(0), a.seq(i));
        }
    }

    #[test]
    fn long_branches_decorrelate_sequences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut tree = random_topology(4, 10.0, &mut rng);
        for h in tree.branches().collect::<Vec<_>>() {
            tree.set_branch_length(h, 10.0);
        }
        let a = simulate_alignment(
            &tree,
            &ReversibleModel::jc69(),
            &DiscreteGamma::none(),
            3000,
            &mut rng,
        );
        // At saturation, expected identity is 25 %.
        let matches = a
            .seq(0)
            .iter()
            .zip(a.seq(3).iter())
            .filter(|(x, y)| x == y)
            .count();
        let frac = matches as f64 / 3000.0;
        assert!((frac - 0.25).abs() < 0.05, "identity fraction {frac}");
    }

    #[test]
    fn protein_simulation_works() {
        let model = phylo_models::protein::synthetic_protein(11);
        let (tree, _, gamma) = setup(5, 8);
        let a = simulate_alignment(&tree, &model, &gamma, 50, &mut StdRng::seed_from_u64(12));
        assert_eq!(a.alphabet(), Alphabet::Protein);
        assert!(a.seq(2).iter().all(|&m| m.count_ones() == 1));
    }
}
