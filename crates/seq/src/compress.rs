//! Site-pattern compression.
//!
//! Identical alignment columns contribute identical per-site likelihoods, so
//! production PLF implementations compute each distinct *pattern* once and
//! weight its log-likelihood by the column count. This shrinks the ancestral
//! probability vectors (and thus the out-of-core working set) without
//! changing the result.

use crate::alignment::Alignment;
use crate::alphabet::SiteMask;
use std::collections::HashMap;

/// An alignment reduced to its distinct columns plus per-pattern weights.
#[derive(Debug, Clone)]
pub struct CompressedAlignment {
    /// The pattern alignment (one column per distinct site pattern).
    pub alignment: Alignment,
    /// Multiplicity of each pattern column in the original alignment.
    pub weights: Vec<u32>,
    /// For each original column, the index of its pattern.
    pub site_to_pattern: Vec<u32>,
}

impl CompressedAlignment {
    /// Number of distinct patterns.
    pub fn n_patterns(&self) -> usize {
        self.weights.len()
    }

    /// Total weight, equal to the original alignment length.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().map(|&w| w as u64).sum()
    }
}

/// Compress an alignment into distinct site patterns with weights.
/// Patterns keep their first-occurrence order, so compression is
/// deterministic.
pub fn compress_patterns(alignment: &Alignment) -> CompressedAlignment {
    let n_seqs = alignment.n_seqs();
    let n_sites = alignment.n_sites();
    let mut pattern_of: HashMap<Vec<SiteMask>, u32> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    let mut weights: Vec<u32> = Vec::new();
    let mut site_to_pattern = Vec::with_capacity(n_sites);
    let mut column = Vec::with_capacity(n_seqs);
    for site in 0..n_sites {
        column.clear();
        for s in 0..n_seqs {
            column.push(alignment.seq(s)[site]);
        }
        let next_id = pattern_of.len() as u32;
        let id = *pattern_of.entry(column.clone()).or_insert_with(|| {
            order.push(site);
            weights.push(0);
            next_id
        });
        weights[id as usize] += 1;
        site_to_pattern.push(id);
    }
    CompressedAlignment {
        alignment: alignment.select_columns(&order),
        weights,
        site_to_pattern,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn toy() -> Alignment {
        Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "AAGAG".into()),
                ("b".into(), "CCTCT".into()),
                ("c".into(), "GGAGA".into()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn duplicate_columns_merge() {
        let c = compress_patterns(&toy());
        // Columns: ACG, ACG, GTA, ACG, GTA -> 2 patterns, weights 3 and 2.
        assert_eq!(c.n_patterns(), 2);
        assert_eq!(c.weights, vec![3, 2]);
        assert_eq!(c.site_to_pattern, vec![0, 0, 1, 0, 1]);
        assert_eq!(c.total_weight(), 5);
    }

    #[test]
    fn patterns_preserve_column_content() {
        let a = toy();
        let c = compress_patterns(&a);
        for (site, &pat) in c.site_to_pattern.iter().enumerate() {
            for s in 0..a.n_seqs() {
                assert_eq!(a.seq(s)[site], c.alignment.seq(s)[pat as usize]);
            }
        }
    }

    #[test]
    fn all_unique_columns_unchanged() {
        let a = Alignment::from_chars(
            Alphabet::Dna,
            &[("a".into(), "ACGT".into()), ("b".into(), "TGCA".into())],
        )
        .unwrap();
        let c = compress_patterns(&a);
        assert_eq!(c.n_patterns(), 4);
        assert!(c.weights.iter().all(|&w| w == 1));
    }

    #[test]
    fn ambiguity_distinguishes_patterns() {
        // A column with N differs from a column with A even though N covers A.
        let a = Alignment::from_chars(
            Alphabet::Dna,
            &[("a".into(), "AN".into()), ("b".into(), "CC".into())],
        )
        .unwrap();
        let c = compress_patterns(&a);
        assert_eq!(c.n_patterns(), 2);
    }

    #[test]
    fn deterministic_order() {
        let c1 = compress_patterns(&toy());
        let c2 = compress_patterns(&toy());
        assert_eq!(c1.site_to_pattern, c2.site_to_pattern);
        assert_eq!(c1.weights, c2.weights);
    }
}
