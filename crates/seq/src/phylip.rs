//! Relaxed sequential PHYLIP reading and writing (the format RAxML uses).
//!
//! Header line `n_seqs n_sites`, then one `name sequence` record per line;
//! sequence data may contain internal whitespace.

use crate::alignment::{Alignment, AlignmentError};
use crate::alphabet::Alphabet;
use std::io::{self, BufRead, Write};

/// Errors when reading PHYLIP.
#[derive(Debug)]
pub enum PhylipError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural or encoding problem.
    Format(String),
}

impl From<io::Error> for PhylipError {
    fn from(e: io::Error) -> Self {
        PhylipError::Io(e)
    }
}

impl From<AlignmentError> for PhylipError {
    fn from(e: AlignmentError) -> Self {
        PhylipError::Format(e.to_string())
    }
}

impl std::fmt::Display for PhylipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhylipError::Io(e) => write!(f, "I/O error: {e}"),
            PhylipError::Format(s) => write!(f, "PHYLIP format error: {s}"),
        }
    }
}

impl std::error::Error for PhylipError {}

/// Read a relaxed sequential PHYLIP alignment.
pub fn read_phylip<R: BufRead>(reader: R, alphabet: Alphabet) -> Result<Alignment, PhylipError> {
    Ok(Alignment::from_chars(alphabet, &read_phylip_raw(reader)?)?)
}

/// Read the raw `(name, sequence)` records of a relaxed sequential PHYLIP
/// file without encoding them to any alphabet. A partitioned analysis
/// reads mixed DNA/protein/codon data this way and encodes each
/// partition's column slice under that partition's own alphabet
/// (`crate::partition::PartitionSpec::split_chars`).
pub fn read_phylip_raw<R: BufRead>(reader: R) -> Result<Vec<(String, String)>, PhylipError> {
    let mut lines = reader.lines();
    let header = loop {
        match lines.next() {
            Some(l) => {
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => return Err(PhylipError::Format("missing header".into())),
        }
    };
    let mut parts = header.split_whitespace();
    let n_seqs: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PhylipError::Format("bad taxon count".into()))?;
    let n_sites: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| PhylipError::Format("bad site count".into()))?;

    let mut entries = Vec::with_capacity(n_seqs);
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| PhylipError::Format("missing name".into()))?
            .to_owned();
        let seq: String = it.collect();
        entries.push((name, seq));
        if entries.len() == n_seqs {
            break;
        }
    }
    if entries.len() != n_seqs {
        return Err(PhylipError::Format(format!(
            "expected {n_seqs} sequences, found {}",
            entries.len()
        )));
    }
    if entries.iter().any(|(_, s)| s.len() != n_sites) {
        return Err(PhylipError::Format("sequence length != header".into()));
    }
    Ok(entries)
}

/// Write relaxed sequential PHYLIP.
pub fn write_phylip<W: Write>(w: &mut W, alignment: &Alignment) -> io::Result<()> {
    writeln!(w, "{} {}", alignment.n_seqs(), alignment.n_sites())?;
    for i in 0..alignment.n_seqs() {
        writeln!(w, "{} {}", alignment.names()[i], alignment.seq_chars(i))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parse_simple() {
        let data = "2 4\ntaxA ACGT\ntaxB TT GA\n";
        let a = read_phylip(BufReader::new(data.as_bytes()), Alphabet::Dna).unwrap();
        assert_eq!(a.n_seqs(), 2);
        assert_eq!(a.seq_chars(1), "TTGA");
    }

    #[test]
    fn roundtrip() {
        let a = Alignment::from_chars(
            Alphabet::Dna,
            &[("x".into(), "ACGTAC".into()), ("y".into(), "NNACGT".into())],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_phylip(&mut buf, &a).unwrap();
        let b = read_phylip(BufReader::new(&buf[..]), Alphabet::Dna).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn header_mismatch_detected() {
        let r = read_phylip(
            BufReader::new("3 4\na ACGT\nb ACGT\n".as_bytes()),
            Alphabet::Dna,
        );
        assert!(r.is_err());
        let r = read_phylip(BufReader::new("1 5\na ACGT\n".as_bytes()), Alphabet::Dna);
        assert!(r.is_err());
    }

    #[test]
    fn protein_alignment_roundtrip() {
        let a = Alignment::from_chars(
            Alphabet::Protein,
            &[("p1".into(), "ARNDC".into()), ("p2".into(), "QEGHX".into())],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_phylip(&mut buf, &a).unwrap();
        let b = read_phylip(BufReader::new(&buf[..]), Alphabet::Protein).unwrap();
        assert_eq!(a.seq(1), b.seq(1));
    }
}
