//! Hill-climbing search driver: smoothing → (SPR rounds + model
//! optimisation) until no further improvement.

use crate::spr::lazy_spr_round;
use ooc_core::{OocResult, Recorder, StallKind};
use phylo_plf::LikelihoodEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// SPR rearrangement radius (RAxML defaults to 5–10).
    pub spr_radius: u32,
    /// Maximum SPR rounds.
    pub max_rounds: usize,
    /// Newton–Raphson iterations per branch optimisation.
    pub nr_iter: u32,
    /// Minimum log-likelihood gain to accept a move / continue a round.
    pub epsilon: f64,
    /// Optimise the Γ shape between rounds.
    pub optimize_model: bool,
    /// Smoothing passes between rounds.
    pub smooth_passes: usize,
    /// RNG seed for the subtree visiting order.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            spr_radius: 5,
            max_rounds: 8,
            nr_iter: 16,
            epsilon: 1e-3,
            optimize_model: true,
            smooth_passes: 1,
            seed: 0,
        }
    }
}

/// Statistics of a completed search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchStats {
    /// Log-likelihood of the starting tree after initial smoothing.
    pub initial_lnl: f64,
    /// Final log-likelihood.
    pub final_lnl: f64,
    /// SPR rounds executed.
    pub rounds: usize,
    /// SPR moves kept.
    pub spr_applied: usize,
    /// Candidate insertions evaluated.
    pub spr_evaluated: u64,
    /// Final Γ shape.
    pub alpha: f64,
}

/// Run the search on an engine holding the starting tree. Deterministic
/// for a given configuration (and starting state) — including across
/// serial and sharded engines, which are bit-identical.
pub fn hill_climb<E: LikelihoodEngine>(
    engine: &mut E,
    cfg: &SearchConfig,
) -> OocResult<SearchStats> {
    hill_climb_observed(engine, cfg, None)
}

/// [`hill_climb`] with an optional observability recorder: each search
/// phase (initial/per-round smoothing, SPR rounds, α optimisation) becomes
/// one `("search", …)` span. The spans are unattributed wall-time markers
/// — the residency layers below carve the actual stall time out of them —
/// so the search trace answers "*which phase* paid the I/O".
pub fn hill_climb_observed<E: LikelihoodEngine>(
    engine: &mut E,
    cfg: &SearchConfig,
    obs: Option<&Recorder>,
) -> OocResult<SearchStats> {
    let now = || obs.map(|r| r.now());
    let span = |op: &'static str, t0: Option<u64>| {
        if let (Some(rec), Some(t0)) = (obs, t0) {
            rec.span_at("search", op, StallKind::Compute, t0)
                .unattributed()
                .finish();
        }
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Initial branch smoothing (and model optimisation) on the start tree.
    let t0 = now();
    let mut lnl = engine.smooth_branches(cfg.smooth_passes.max(1), cfg.nr_iter)?;
    span("smooth", t0);
    if cfg.optimize_model {
        let t0 = now();
        let (_, l) = engine.optimize_alpha(1e-3, 40)?;
        span("alpha-opt", t0);
        lnl = l;
    }
    let initial_lnl = lnl;

    let mut rounds = 0usize;
    let mut spr_applied = 0usize;
    let mut spr_evaluated = 0u64;
    for _ in 0..cfg.max_rounds {
        rounds += 1;
        let t0 = now();
        let round = lazy_spr_round(engine, cfg.spr_radius, cfg.nr_iter, cfg.epsilon, &mut rng)?;
        span("spr-round", t0);
        spr_applied += round.applied;
        spr_evaluated += round.evaluated;
        let mut new_lnl = round.lnl;
        if cfg.smooth_passes > 0 {
            let t0 = now();
            new_lnl = engine.smooth_branches(cfg.smooth_passes, cfg.nr_iter)?;
            span("smooth", t0);
        }
        if cfg.optimize_model {
            let t0 = now();
            let (_, l) = engine.optimize_alpha(1e-3, 40)?;
            span("alpha-opt", t0);
            new_lnl = l;
        }
        let improved = new_lnl > lnl + cfg.epsilon;
        lnl = lnl.max(new_lnl);
        if round.applied == 0 || !improved {
            break;
        }
    }

    Ok(SearchStats {
        initial_lnl,
        final_lnl: lnl,
        rounds,
        spr_applied,
        spr_evaluated,
        alpha: engine.alpha(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_plf::{InRamStore, PlfEngine};
    use phylo_seq::{compress_patterns, simulate_alignment, CompressedAlignment};
    use phylo_tree::build::{random_topology, yule_like_lengths};
    use phylo_tree::Tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulated_case(n: usize, s: usize, seed: u64) -> (Tree, CompressedAlignment) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut true_tree = random_topology(n, 0.1, &mut rng);
        yule_like_lengths(&mut true_tree, 0.15, 1e-4, &mut rng);
        let model = ReversibleModel::jc69();
        let gamma = DiscreteGamma::new(1.0, 4);
        let aln = simulate_alignment(&true_tree, &model, &gamma, s, &mut rng);
        (true_tree, compress_patterns(&aln))
    }

    fn engine_from(start: Tree, comp: &CompressedAlignment) -> PlfEngine<InRamStore> {
        let dims = PlfEngine::<InRamStore>::dims_for(comp, 4);
        let store = InRamStore::new(start.n_inner(), dims.width());
        PlfEngine::new(start, comp, ReversibleModel::jc69(), 1.0, 4, store)
    }

    #[test]
    fn search_improves_from_random_start() {
        let (_, comp) = simulated_case(12, 200, 77);
        let start = random_topology(12, 0.1, &mut StdRng::seed_from_u64(999));
        let mut engine = engine_from(start, &comp);
        let cfg = SearchConfig {
            max_rounds: 4,
            spr_radius: 4,
            ..Default::default()
        };
        let stats = hill_climb(&mut engine, &cfg).unwrap();
        assert!(stats.final_lnl >= stats.initial_lnl - 1e-9);
        assert!(stats.spr_evaluated > 0);
        // Internal consistency after the whole search.
        let partial = engine.log_likelihood().unwrap();
        engine.invalidate_all();
        let full = engine.log_likelihood().unwrap();
        assert!((partial - full).abs() < 1e-8 * full.abs());
    }

    #[test]
    fn search_recovers_likelihood_of_true_tree_ballpark() {
        // Searching from a random start should get within a few log units
        // of the (smoothed) true tree's likelihood on easy simulated data.
        let (true_tree, comp) = simulated_case(10, 400, 78);
        let mut engine_true = engine_from(true_tree, &comp);
        let true_lnl = engine_true.smooth_branches(2, 24).unwrap();

        let start = random_topology(10, 0.1, &mut StdRng::seed_from_u64(4242));
        let mut engine = engine_from(start, &comp);
        let cfg = SearchConfig {
            max_rounds: 6,
            spr_radius: 6,
            optimize_model: false,
            ..Default::default()
        };
        let stats = hill_climb(&mut engine, &cfg).unwrap();
        assert!(
            stats.final_lnl > true_lnl - 10.0,
            "search lnl {} far below true-tree lnl {true_lnl}",
            stats.final_lnl
        );
    }

    #[test]
    fn search_is_deterministic() {
        let (_, comp) = simulated_case(9, 120, 79);
        let cfg = SearchConfig {
            max_rounds: 2,
            ..Default::default()
        };
        let run = || {
            let start = random_topology(9, 0.1, &mut StdRng::seed_from_u64(5));
            let mut engine = engine_from(start, &comp);
            hill_climb(&mut engine, &cfg).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_lnl.to_bits(), b.final_lnl.to_bits());
        assert_eq!(a.spr_applied, b.spr_applied);
        assert_eq!(a.spr_evaluated, b.spr_evaluated);
    }
}
