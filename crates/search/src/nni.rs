//! Nearest-neighbour-interchange rounds (a cheaper local move than SPR,
//! used to polish the tree between SPR rounds).

use ooc_core::OocResult;
use phylo_plf::LikelihoodEngine;
use phylo_tree::HalfEdgeId;

/// One NNI sweep: every internal branch is tried in both swap variants;
/// improving swaps are kept (with the branch re-optimised), the rest are
/// undone. Returns the final log-likelihood and the number of accepted
/// swaps.
pub fn nni_round<E: LikelihoodEngine>(
    engine: &mut E,
    nr_iter: u32,
    epsilon: f64,
) -> OocResult<(f64, usize)> {
    let mut lnl = engine.log_likelihood()?;
    let mut accepted = 0usize;
    let internal: Vec<HalfEdgeId> = engine
        .tree()
        .branches()
        .filter(|&h| {
            !engine.tree().is_tip(engine.tree().node_of(h))
                && !engine.tree().is_tip(engine.tree().neighbor(h))
        })
        .collect();
    for h in internal {
        // An earlier accepted swap may have rewired this branch so that it
        // now borders a tip; re-check before trying.
        if engine.tree().is_tip(engine.tree().node_of(h))
            || engine.tree().is_tip(engine.tree().neighbor(h))
        {
            continue;
        }
        for variant in [0u8, 1] {
            let undo = engine.apply_nni(h, variant);
            let (_, l) = engine.optimize_branch(h, nr_iter)?;
            if l > lnl + epsilon {
                lnl = l;
                accepted += 1;
            } else {
                engine.undo_nni(&undo);
            }
        }
    }
    Ok((lnl, accepted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_plf::{InRamStore, PlfEngine};
    use phylo_seq::{compress_patterns, simulate_alignment};
    use phylo_tree::build::{random_topology, yule_like_lengths};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nni_round_never_decreases_likelihood() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut true_tree = random_topology(10, 0.1, &mut rng);
        yule_like_lengths(&mut true_tree, 0.15, 1e-4, &mut rng);
        let model = ReversibleModel::jc69();
        let gamma = DiscreteGamma::new(1.0, 4);
        let aln = simulate_alignment(&true_tree, &model, &gamma, 150, &mut rng);
        let comp = compress_patterns(&aln);
        // Start from a *different* random topology.
        let start = random_topology(10, 0.1, &mut rng);
        let dims = PlfEngine::<InRamStore>::dims_for(&comp, 4);
        let store = InRamStore::new(start.n_inner(), dims.width());
        let mut engine = PlfEngine::new(start, &comp, model, 1.0, 4, store);
        let before = engine.log_likelihood().unwrap();
        let (after, accepted) = nni_round(&mut engine, 16, 1e-4).unwrap();
        assert!(after >= before - 1e-7, "{before} -> {after}");
        // From a random start on simulated data, some swap should help.
        assert!(accepted > 0, "expected at least one accepted NNI");
        // Consistency of incremental state.
        let partial = engine.log_likelihood().unwrap();
        engine.invalidate_all();
        let full = engine.log_likelihood().unwrap();
        assert!((partial - full).abs() < 1e-8 * full.abs());
    }
}
