//! Lazy subtree-pruning-and-regrafting rounds.
//!
//! Each candidate evaluation below goes through the engine, which submits
//! the traversal's lowered access plan to the residency layer first — the
//! SPR loop itself needs no residency calls for read skipping or prefetch
//! to track its (highly local) access pattern.

use ooc_core::OocResult;
use phylo_plf::LikelihoodEngine;
use phylo_tree::{HalfEdgeId, Tree};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;

/// Outcome of one SPR round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprRoundResult {
    /// Log-likelihood after the round.
    pub lnl: f64,
    /// Moves applied (improvements kept).
    pub applied: usize,
    /// Candidate insertions evaluated.
    pub evaluated: u64,
}

/// Regraft target branches within `radius` hops of the pruning point.
///
/// Starting from the two neighbours that become adjacent when the subtree
/// at `prune_dir` is removed, a breadth-first walk (never entering the
/// moving subtree) collects every branch whose near endpoint is within the
/// radius — the rearrangement-distance window RAxML's lazy SPR explores.
pub fn spr_candidates(tree: &Tree, prune_dir: HalfEdgeId, radius: u32) -> Vec<HalfEdgeId> {
    let p = tree.node_of(prune_dir);
    if tree.is_tip(p) {
        return Vec::new();
    }
    let (a, b) = tree.children_dirs(prune_dir);
    let (qa, qb) = (tree.back(a), tree.back(b));
    let forbidden = [a, b, qa, qb];

    let mut depth = vec![u32::MAX; tree.n_nodes()];
    let mut queue = VecDeque::new();
    for start in [tree.node_of(qa), tree.node_of(qb)] {
        depth[start as usize] = 0;
        queue.push_back(start);
    }
    depth[p as usize] = u32::MAX - 1; // block the moving subtree's gateway
    let mut candidates = Vec::new();
    let mut seen_branch = vec![false; tree.n_half_edges()];
    while let Some(node) = queue.pop_front() {
        let d = depth[node as usize];
        let half_edges: &[HalfEdgeId] = &if tree.is_tip(node) {
            vec![tree.tip_half_edge(node)]
        } else {
            tree.ring(node).to_vec()
        };
        for &h in half_edges {
            let nb = tree.neighbor(h);
            if nb == p {
                continue;
            }
            // Record the branch (canonical: smaller half-edge id).
            let canon = h.min(tree.back(h));
            if !seen_branch[canon as usize]
                && !forbidden.contains(&canon)
                && !forbidden.contains(&tree.back(canon))
            {
                seen_branch[canon as usize] = true;
                candidates.push(canon);
            }
            if d < radius && depth[nb as usize] == u32::MAX {
                depth[nb as usize] = d + 1;
                queue.push_back(nb);
            }
        }
    }
    candidates
}

/// One lazy SPR round: every subtree (each inner node, each of its three
/// pruning directions) is tried against all targets within `radius`; each
/// candidate is scored by a partial traversal at the insertion branch
/// (*lazy*: default graft lengths, no global re-optimisation), and the best
/// improving move is kept, followed by Newton–Raphson on the three local
/// branches.
pub fn lazy_spr_round<E: LikelihoodEngine, R: Rng>(
    engine: &mut E,
    radius: u32,
    nr_iter: u32,
    epsilon: f64,
    rng: &mut R,
) -> OocResult<SprRoundResult> {
    let mut lnl = engine.log_likelihood()?;
    let mut applied = 0usize;
    let mut evaluated = 0u64;

    let n_inner = engine.tree().n_inner() as u32;
    let mut order: Vec<(u32, u32)> = (0..n_inner)
        .flat_map(|i| (0..3u32).map(move |k| (i, k)))
        .collect();
    order.shuffle(rng);

    for (i, k) in order {
        let dir = engine.tree().inner_half_edge(i, k);
        let candidates = spr_candidates(engine.tree(), dir, radius);
        if candidates.is_empty() {
            continue;
        }
        let mut best: Option<(HalfEdgeId, f64)> = None;
        for target in candidates {
            let undo = engine.apply_spr(dir, target, None);
            // Lazy scoring: evaluate at one of the fresh graft branches.
            let graft = engine.tree().next(dir);
            let l = engine.log_likelihood_at(graft, false)?;
            evaluated += 1;
            engine.undo_spr(dir, &undo);
            if best.is_none_or(|(_, bl)| l > bl) {
                best = Some((target, l));
            }
        }
        if let Some((target, best_l)) = best {
            if best_l > lnl + epsilon {
                engine.apply_spr(dir, target, None);
                // Re-optimise the three branches around the pruned node.
                let a = engine.tree().next(dir);
                let b = engine.tree().next(a);
                let mut new_lnl = best_l;
                for h in [a, b, dir] {
                    let (_, l) = engine.optimize_branch(h, nr_iter)?;
                    new_lnl = l;
                }
                if new_lnl > lnl {
                    lnl = new_lnl;
                    applied += 1;
                } else {
                    // Local optimisation did not confirm the improvement;
                    // keep the move anyway only if it is not worse.
                    lnl = new_lnl.max(lnl);
                }
            }
        }
    }
    Ok(SprRoundResult {
        lnl,
        applied,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_tree::build::random_topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn candidates_respect_radius_and_exclusions() {
        let tree = random_topology(30, 0.1, &mut StdRng::seed_from_u64(1));
        let dir = tree.inner_half_edge(5, 0);
        let (a, b) = tree.children_dirs(dir);
        let (qa, qb) = (tree.back(a), tree.back(b));
        for radius in [1u32, 2, 5, 100] {
            let cands = spr_candidates(&tree, dir, radius);
            for &t in &cands {
                assert!(t != a && t != b && t != qa && t != qb);
                let tb = tree.back(t);
                assert!(tb != a && tb != b);
                // Target must not be inside the moving subtree.
                assert!(!phylo_tree::spr::subtree_contains(
                    &tree,
                    dir,
                    tree.node_of(t)
                ));
                assert!(!phylo_tree::spr::subtree_contains(
                    &tree,
                    dir,
                    tree.node_of(tb)
                ));
            }
        }
        // Larger radii find at least as many candidates.
        let c1 = spr_candidates(&tree, dir, 1).len();
        let c5 = spr_candidates(&tree, dir, 5).len();
        let cbig = spr_candidates(&tree, dir, 1000).len();
        assert!(c1 <= c5 && c5 <= cbig);
        assert!(cbig >= 10, "radius 1000 should reach most branches");
    }

    #[test]
    fn candidate_moves_are_all_legal() {
        let mut tree = random_topology(15, 0.1, &mut StdRng::seed_from_u64(2));
        let dir = tree.inner_half_edge(3, 1);
        let cands = spr_candidates(&tree, dir, 3);
        for t in cands {
            let undo = phylo_tree::spr::spr_prune_regraft(&mut tree, dir, t, None);
            tree.validate().unwrap();
            phylo_tree::spr::spr_undo(&mut tree, &undo);
            tree.validate().unwrap();
        }
    }
}
