//! Maximum-likelihood tree search.
//!
//! A hill-climbing search in the style of RAxML, the host program of the
//! paper: rounds of radius-bounded *lazy SPR* moves (only the three
//! branches at the insertion point are re-optimised per candidate, and only
//! the vectors invalidated by the move are recomputed), interleaved with
//! branch-length smoothing and Γ-shape optimisation. The point of this
//! crate for the reproduction is not tree quality per se but the *memory
//! access pattern*: real searches touch ancestral vectors with high
//! locality, which is what makes the paper's out-of-core miss rates so low
//! (§4.2: "access locality is also achieved by in most cases only
//! re-optimizing three branch lengths after a change of the tree topology
//! during the tree search (Lazy SPR technique)").
//!
//! The search layer never talks to the residency layer directly: every
//! likelihood evaluation it requests makes the engine lower its traversal
//! plan into an [`ooc_core::AccessPlan`] and submit it before computing
//! (see `PlfEngine::execute_plan`), so read skipping, lookahead prefetch
//! and plan-aware (NextUse) replacement automatically track each SPR
//! candidate, smoothing pass and MCMC proposal evaluated here.

pub mod hillclimb;
pub mod mcmc;
pub mod nni;
pub mod parsimony;
pub mod spr;

pub use hillclimb::{hill_climb, hill_climb_observed, SearchConfig, SearchStats};
pub use mcmc::{run_mcmc, McmcConfig, McmcStats};
pub use nni::nni_round;
pub use parsimony::{parsimony_stepwise_tree, FitchScorer};
pub use spr::{lazy_spr_round, spr_candidates, SprRoundResult};
