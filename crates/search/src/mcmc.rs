//! Bayesian-style MCMC sampling over trees.
//!
//! The paper (§5) notes its out-of-core concepts "can be applied to all
//! PLF-based programs (ML and Bayesian)". This module provides the
//! Bayesian-side workload: a Metropolis–Hastings sampler whose proposals
//! (NNI topology moves, branch-length scalings, Γ-shape moves) generate a
//! *different* ancestral-vector access pattern than hill climbing — more
//! random, lower locality — which the `mcmc` ablation uses to probe the
//! replacement strategies outside the ML comfort zone.
//!
//! Priors are deliberately simple (exponential on branch lengths,
//! uniform on topologies, exponential on α): the sampler exists to drive
//! the PLF realistically, not to be a full Bayesian package.
//!
//! Like the ML search, every proposal evaluation goes through the engine,
//! which submits the traversal's lowered access plan to the residency
//! layer before computing — the sampler needs no residency-aware code of
//! its own.

use ooc_core::OocResult;
use phylo_plf::LikelihoodEngine;
use phylo_tree::HalfEdgeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning parameters of the sampler.
#[derive(Debug, Clone, Copy)]
pub struct McmcConfig {
    /// Iterations to run.
    pub iterations: usize,
    /// Mean of the exponential branch-length prior.
    pub branch_prior_mean: f64,
    /// Multiplier window for branch-length proposals (`exp(u·λ)` scaling).
    pub branch_tuning: f64,
    /// Relative probability of a topology (NNI) proposal.
    pub topology_weight: f64,
    /// Relative probability of an α proposal.
    pub alpha_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig {
            iterations: 500,
            branch_prior_mean: 0.1,
            branch_tuning: 1.0,
            topology_weight: 0.3,
            alpha_weight: 0.05,
            seed: 0,
        }
    }
}

/// Chain statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McmcStats {
    /// Iterations run.
    pub iterations: usize,
    /// Accepted proposals.
    pub accepted: usize,
    /// Accepted topology moves.
    pub topology_accepted: usize,
    /// Log-posterior of the final state.
    pub final_log_posterior: f64,
    /// Best log-posterior seen.
    pub best_log_posterior: f64,
    /// Mean log-posterior over the second half of the chain.
    pub mean_log_posterior: f64,
}

/// Log prior: exponential on every branch length plus exponential(1) on α.
fn log_prior<E: LikelihoodEngine>(engine: &E, mean: f64) -> f64 {
    let rate = 1.0 / mean;
    let mut lp = 0.0;
    for h in engine.tree().branches() {
        lp += rate.ln() - rate * engine.tree().branch_length(h);
    }
    lp - engine.alpha()
}

/// Run a Metropolis–Hastings chain on the engine's tree. The engine is
/// left in the final state of the chain.
pub fn run_mcmc<E: LikelihoodEngine>(engine: &mut E, cfg: &McmcConfig) -> OocResult<McmcStats> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut log_like = engine.log_likelihood()?;
    let mut log_post = log_like + log_prior(engine, cfg.branch_prior_mean);
    let mut accepted = 0usize;
    let mut topology_accepted = 0usize;
    let mut best = log_post;
    let mut second_half_sum = 0.0;
    let mut second_half_n = 0usize;

    let total_w = 1.0 + cfg.topology_weight + cfg.alpha_weight;
    for iter in 0..cfg.iterations {
        let u: f64 = rng.gen_range(0.0..total_w);
        let (proposal_ll, log_hastings, undo): (f64, f64, Undo) = if u < cfg.topology_weight {
            // NNI on a random internal branch (symmetric proposal).
            let internal: Vec<HalfEdgeId> = engine
                .tree()
                .branches()
                .filter(|&h| {
                    !engine.tree().is_tip(engine.tree().node_of(h))
                        && !engine.tree().is_tip(engine.tree().neighbor(h))
                })
                .collect();
            if internal.is_empty() {
                continue;
            }
            let h = internal[rng.gen_range(0..internal.len())];
            let variant = rng.gen_range(0..2u8);
            let nni_undo = engine.apply_nni(h, variant);
            let ll = engine.log_likelihood_at(h, false)?;
            (ll, 0.0, Undo::Nni(nni_undo))
        } else if u < cfg.topology_weight + cfg.alpha_weight {
            // Multiplicative α proposal: Hastings ratio = ln(multiplier).
            let old_alpha = engine.alpha();
            let log_m = rng.gen_range(-0.5..0.5f64);
            let new_alpha = (old_alpha * log_m.exp()).clamp(0.02, 100.0);
            engine.set_alpha(new_alpha);
            let ll = engine.log_likelihood()?;
            (ll, (new_alpha / old_alpha).ln(), Undo::Alpha(old_alpha))
        } else {
            // Multiplicative branch-length proposal on a random branch.
            let n_he = engine.tree().n_half_edges() as u32;
            let h = loop {
                let h = rng.gen_range(0..n_he);
                if engine.tree().is_connected(h) {
                    break h;
                }
            };
            let old_len = engine.tree().branch_length(h);
            let log_m = rng.gen_range(-cfg.branch_tuning..cfg.branch_tuning);
            let new_len = (old_len * log_m.exp()).clamp(1e-7, 50.0);
            engine.set_branch_length(h, new_len);
            let ll = engine.log_likelihood_at(h, false)?;
            (ll, (new_len / old_len).ln(), Undo::Branch(h, old_len))
        };

        let proposal_post = proposal_ll + log_prior(engine, cfg.branch_prior_mean);
        let log_ratio = proposal_post - log_post + log_hastings;
        if log_ratio >= 0.0 || rng.gen_range(0.0f64..1.0).ln() < log_ratio {
            // Accept.
            accepted += 1;
            if matches!(undo, Undo::Nni(_)) {
                topology_accepted += 1;
            }
            log_like = proposal_ll;
            log_post = proposal_post;
        } else {
            // Reject: restore the previous state.
            match undo {
                Undo::Nni(nu) => engine.undo_nni(&nu),
                Undo::Alpha(a) => engine.set_alpha(a),
                Undo::Branch(h, len) => engine.set_branch_length(h, len),
            }
        }
        let _ = log_like;
        best = best.max(log_post);
        if iter >= cfg.iterations / 2 {
            second_half_sum += log_post;
            second_half_n += 1;
        }
    }

    Ok(McmcStats {
        iterations: cfg.iterations,
        accepted,
        topology_accepted,
        final_log_posterior: log_post,
        best_log_posterior: best,
        mean_log_posterior: second_half_sum / second_half_n.max(1) as f64,
    })
}

enum Undo {
    Nni(phylo_tree::spr::NniUndo),
    Alpha(f64),
    Branch(HalfEdgeId, f64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_plf::{InRamStore, PlfEngine};
    use phylo_seq::{compress_patterns, simulate_alignment};
    use phylo_tree::build::{random_topology, yule_like_lengths};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(seed: u64) -> PlfEngine<InRamStore> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = random_topology(10, 0.1, &mut rng);
        yule_like_lengths(&mut tree, 0.12, 1e-4, &mut rng);
        let model = ReversibleModel::jc69();
        let gamma = DiscreteGamma::new(1.0, 4);
        let aln = simulate_alignment(&tree, &model, &gamma, 150, &mut rng);
        let comp = compress_patterns(&aln);
        let dims = PlfEngine::<InRamStore>::dims_for(&comp, 4);
        let store = InRamStore::new(tree.n_inner(), dims.width());
        PlfEngine::new(tree, &comp, model, 1.0, 4, store)
    }

    #[test]
    fn chain_runs_and_accepts_some_moves() {
        let mut e = engine(1);
        let cfg = McmcConfig {
            iterations: 300,
            seed: 7,
            ..Default::default()
        };
        let stats = run_mcmc(&mut e, &cfg).unwrap();
        assert_eq!(stats.iterations, 300);
        assert!(
            stats.accepted > 10,
            "acceptance too low: {}",
            stats.accepted
        );
        assert!(stats.accepted < 300, "everything accepted is suspicious");
        assert!(stats.final_log_posterior.is_finite());
        assert!(stats.best_log_posterior >= stats.final_log_posterior);
    }

    #[test]
    fn rejected_moves_restore_state_exactly() {
        // After the chain, incremental likelihood must equal a full
        // recompute — i.e. every rejection's undo left consistent state.
        let mut e = engine(2);
        let cfg = McmcConfig {
            iterations: 200,
            seed: 3,
            ..Default::default()
        };
        run_mcmc(&mut e, &cfg).unwrap();
        let partial = e.log_likelihood().unwrap();
        e.invalidate_all();
        let full = e.log_likelihood().unwrap();
        assert!(
            (partial - full).abs() < 1e-8 * full.abs(),
            "{partial} vs {full}"
        );
    }

    #[test]
    fn chain_is_deterministic() {
        let cfg = McmcConfig {
            iterations: 150,
            seed: 11,
            ..Default::default()
        };
        let run = |seed| {
            let mut e = engine(seed);
            run_mcmc(&mut e, &cfg).unwrap()
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(
            a.final_log_posterior.to_bits(),
            b.final_log_posterior.to_bits()
        );
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn chain_improves_from_bad_start() {
        // Start with all branch lengths far too long: the chain should
        // drift towards much better posteriors.
        let mut e = engine(4);
        let branches: Vec<_> = e.tree().branches().collect();
        for h in branches {
            e.set_branch_length(h, 3.0);
        }
        let start = e.log_likelihood().unwrap() + log_prior(&e, 0.1);
        let cfg = McmcConfig {
            iterations: 600,
            seed: 13,
            ..Default::default()
        };
        let stats = run_mcmc(&mut e, &cfg).unwrap();
        assert!(
            stats.best_log_posterior > start + 10.0,
            "no improvement: start {start}, best {}",
            stats.best_log_posterior
        );
    }
}
