//! Fitch parsimony and randomized stepwise-addition starting trees.
//!
//! RAxML (the paper's host) builds its starting trees by randomized
//! stepwise addition under parsimony rather than starting from a random
//! topology; better starting trees mean the subsequent ML search performs
//! fewer, more local rearrangements — the access pattern the out-of-core
//! experiments rely on. This module implements the Fitch (1971) small
//! parsimony count and the greedy insertion builder.

use phylo_seq::{CompressedAlignment, SiteMask};
use phylo_tree::traverse::{plan_traversal, Orientation};
use phylo_tree::{ChildRef, HalfEdgeId, Tree};
use rand::seq::SliceRandom;
use rand::Rng;

/// Fitch state sets per pattern for every inner node, plus the total
/// mutation count, for a fixed tree.
pub struct FitchScorer<'a> {
    comp: &'a CompressedAlignment,
}

impl<'a> FitchScorer<'a> {
    /// Scorer over a pattern-compressed alignment.
    pub fn new(comp: &'a CompressedAlignment) -> Self {
        FitchScorer { comp }
    }

    /// Weighted Fitch parsimony score of `tree` (number of state changes,
    /// summed over patterns with their column weights).
    pub fn score(&self, tree: &Tree) -> u64 {
        let n_patterns = self.comp.n_patterns();
        let aln = &self.comp.alignment;
        let mut orient = Orientation::new(tree.n_inner());
        let plan = plan_traversal(tree, tree.default_root_edge(), &mut orient, true);

        // Per inner node: state sets and per-pattern mutation counts.
        let mut sets: Vec<Vec<SiteMask>> = vec![Vec::new(); tree.n_inner()];
        let mut score = 0u64;
        let child_set = |c: ChildRef, sets: &Vec<Vec<SiteMask>>, i: usize| -> SiteMask {
            match c {
                ChildRef::Tip(t) => aln.seq(t as usize)[i],
                ChildRef::Inner(x) => sets[x as usize][i],
            }
        };
        for step in &plan.steps {
            let mut here = Vec::with_capacity(n_patterns);
            for i in 0..n_patterns {
                let l = child_set(step.left, &sets, i);
                let r = child_set(step.right, &sets, i);
                let inter = l & r;
                if inter != 0 {
                    here.push(inter);
                } else {
                    here.push(l | r);
                    score += self.comp.weights[i] as u64;
                }
            }
            sets[step.parent as usize] = here;
        }
        // Root branch union step.
        let root_l = plan.root_left;
        let root_r = plan.root_right;
        for i in 0..n_patterns {
            let l = child_set(root_l, &sets, i);
            let r = child_set(root_r, &sets, i);
            if l & r == 0 {
                score += self.comp.weights[i] as u64;
            }
        }
        score
    }
}

/// Build a starting tree by randomized stepwise addition under parsimony:
/// tips are inserted in random order, each at the branch minimising the
/// Fitch score. `candidate_cap` bounds how many branches are scored per
/// insertion (all when `usize::MAX`; RAxML-style subsampling keeps the
/// builder O(n²) instead of O(n³) for big trees).
pub fn parsimony_stepwise_tree<R: Rng>(
    comp: &CompressedAlignment,
    init_len: f64,
    candidate_cap: usize,
    rng: &mut R,
) -> Tree {
    let n_tips = comp.alignment.n_seqs();
    assert!(n_tips >= 3);
    let scorer = FitchScorer::new(comp);

    // Random insertion order; the first three tips are fixed by the arena.
    let mut order: Vec<u32> = (3..n_tips as u32).collect();
    order.shuffle(rng);

    let mut tree = Tree::with_capacity(n_tips);
    tree.join(tree.tip_half_edge(0), tree.inner_half_edge(0, 0), init_len);
    tree.join(tree.tip_half_edge(1), tree.inner_half_edge(0, 1), init_len);
    tree.join(tree.tip_half_edge(2), tree.inner_half_edge(0, 2), init_len);

    for (k, &tip) in order.iter().enumerate() {
        let inner = (k + 1) as u32; // inner node created by this insertion
                                    // Candidate branches among those already connected.
        let mut branches: Vec<HalfEdgeId> = (0..tree.n_half_edges() as u32)
            .filter(|&h| tree.is_connected(h) && tree.back(h) > h)
            .collect();
        branches.shuffle(rng);
        branches.truncate(candidate_cap.max(1));

        let mut best: Option<(HalfEdgeId, u64)> = None;
        for &target in &branches {
            insert_tip(&mut tree, tip, inner, target, init_len);
            // Scoring walks only the connected prefix (the traversal never
            // crosses a dangling half-edge), so the partial arena is safe.
            let s = scorer.score(&tree);
            remove_tip(&mut tree, inner, target, init_len);
            if best.is_none_or(|(_, bs)| s < bs) {
                best = Some((target, s));
            }
        }
        let (target, _) = best.expect("no insertion branch found");
        insert_tip(&mut tree, tip, inner, target, init_len);
    }
    debug_assert!(tree.validate().is_ok());
    tree
}

/// Split `target` and wire `tip` in via fresh `inner`.
fn insert_tip(tree: &mut Tree, tip: u32, inner: u32, target: HalfEdgeId, len: f64) {
    let (other, old_len) = tree.split(target);
    tree.join(tree.inner_half_edge(inner, 0), target, old_len * 0.5);
    tree.join(tree.inner_half_edge(inner, 1), other, old_len * 0.5);
    tree.join(tree.inner_half_edge(inner, 2), tree.tip_half_edge(tip), len);
}

/// Undo [`insert_tip`].
fn remove_tip(tree: &mut Tree, inner: u32, target: HalfEdgeId, _len: f64) {
    let h0 = tree.inner_half_edge(inner, 0);
    let h1 = tree.inner_half_edge(inner, 1);
    let h2 = tree.inner_half_edge(inner, 2);
    let (t, l0) = tree.split(h0);
    let (other, l1) = tree.split(h1);
    let _ = tree.split(h2);
    debug_assert_eq!(t, target);
    tree.join(t, other, l0 + l1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_seq::{compress_patterns, simulate_alignment, Alignment, Alphabet};
    use phylo_tree::build::{random_topology, yule_like_lengths};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fitch_score_hand_example() {
        // Four taxa, one site: A A C C. The true split ((A,A),(C,C)) needs
        // one change; the "wrong" splits need... also one change for this
        // pattern (any binary tree on {A,A,C,C} achieves 1). Use a second
        // site to discriminate: AACC + ACAC.
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("t0".into(), "AA".into()),
                ("t1".into(), "AC".into()),
                ("t2".into(), "CA".into()),
                ("t3".into(), "CC".into()),
            ],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let scorer = FitchScorer::new(&comp);
        // Any unrooted 4-taxon topology pays 1 on one site and 2 on the
        // other (sites support conflicting splits) = 3 total, except the
        // matching split which pays 1 + 2... enumerate all three:
        let mut scores = Vec::new();
        for seed in 0..20u64 {
            let t = random_topology(4, 0.1, &mut StdRng::seed_from_u64(seed));
            scores.push(scorer.score(&t));
        }
        // Both sites are parsimony-informative with conflicting splits:
        // the minimum achievable total is 3 and the maximum 4... all
        // topologies must be in that range, and both extremes must occur.
        assert!(scores.iter().all(|&s| s == 3 || s == 4), "{scores:?}");
        assert!(scores.contains(&3));
    }

    #[test]
    fn identical_sequences_score_zero() {
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "ACGT".into()),
                ("b".into(), "ACGT".into()),
                ("c".into(), "ACGT".into()),
                ("d".into(), "ACGT".into()),
                ("e".into(), "ACGT".into()),
            ],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let t = random_topology(5, 0.1, &mut StdRng::seed_from_u64(1));
        assert_eq!(FitchScorer::new(&comp).score(&t), 0);
    }

    #[test]
    fn weights_multiply_changes() {
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "AAA".into()),
                ("b".into(), "AAA".into()),
                ("c".into(), "CCC".into()),
            ],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        assert_eq!(comp.n_patterns(), 1);
        assert_eq!(comp.weights[0], 3);
        let t = random_topology(3, 0.1, &mut StdRng::seed_from_u64(2));
        // One change per column x weight 3.
        assert_eq!(FitchScorer::new(&comp).score(&t), 3);
    }

    #[test]
    fn stepwise_tree_is_valid_and_beats_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut true_tree = random_topology(16, 0.1, &mut rng);
        yule_like_lengths(&mut true_tree, 0.15, 1e-4, &mut rng);
        let aln = simulate_alignment(
            &true_tree,
            &ReversibleModel::jc69(),
            &DiscreteGamma::none(),
            400,
            &mut rng,
        );
        let comp = compress_patterns(&aln);
        let scorer = FitchScorer::new(&comp);

        let built = parsimony_stepwise_tree(&comp, 0.1, usize::MAX, &mut rng);
        built.validate().unwrap();
        assert_eq!(built.n_tips(), 16);
        let built_score = scorer.score(&built);

        // Should beat the average random topology comfortably.
        let mut random_scores = Vec::new();
        for seed in 0..10u64 {
            let t = random_topology(16, 0.1, &mut StdRng::seed_from_u64(100 + seed));
            random_scores.push(scorer.score(&t));
        }
        let avg_random: f64 = random_scores.iter().sum::<u64>() as f64 / random_scores.len() as f64;
        assert!(
            (built_score as f64) < avg_random,
            "stepwise {built_score} vs avg random {avg_random}"
        );
        // And be within shouting distance of the truth's score.
        let true_score = scorer.score(&true_tree);
        assert!(built_score <= true_score + true_score / 5 + 10);
    }

    #[test]
    fn candidate_cap_still_produces_valid_trees() {
        let mut rng = StdRng::seed_from_u64(5);
        let tree = random_topology(12, 0.1, &mut rng);
        let aln = simulate_alignment(
            &tree,
            &ReversibleModel::jc69(),
            &DiscreteGamma::none(),
            100,
            &mut rng,
        );
        let comp = compress_patterns(&aln);
        let built = parsimony_stepwise_tree(&comp, 0.1, 5, &mut rng);
        built.validate().unwrap();
    }
}
