//! Property-based tests of the likelihood engine: for arbitrary simulated
//! datasets the fundamental invariants must hold — re-rooting invariance,
//! partial/full agreement, out-of-core bit-equality at any slot count,
//! and monotone branch optimisation.

use ooc_core::{MemStore, OocConfig, StrategyKind, VectorManager};
use phylo_models::{DiscreteGamma, ReversibleModel};
use phylo_plf::{InRamStore, OocStore, PlfEngine};
use phylo_seq::{compress_patterns, simulate_alignment, CompressedAlignment};
use phylo_tree::build::{random_topology, yule_like_lengths};
use phylo_tree::Tree;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary small dataset: random topology, lengths, sequences, and a
/// GTR model with arbitrary (positive) parameters.
#[derive(Debug, Clone)]
struct Case {
    tree: Tree,
    comp: CompressedAlignment,
    model: ReversibleModel,
    alpha: f64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        4usize..14,
        10usize..80,
        any::<u64>(),
        proptest::collection::vec(0.2f64..4.0, 6),
        proptest::collection::vec(0.08f64..1.0, 4),
        0.1f64..5.0,
    )
        .prop_map(|(n, s, seed, rates, freqs, alpha)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut tree = random_topology(n, 0.1, &mut rng);
            yule_like_lengths(&mut tree, 0.15, 1e-5, &mut rng);
            let model = ReversibleModel::new(&freqs, &rates);
            let gamma = DiscreteGamma::new(alpha, 4);
            let aln = simulate_alignment(&tree, &model, &gamma, s, &mut rng);
            Case {
                tree,
                comp: compress_patterns(&aln),
                model,
                alpha,
            }
        })
}

fn inram(case: &Case) -> PlfEngine<InRamStore> {
    let dims = PlfEngine::<InRamStore>::dims_for(&case.comp, 4);
    PlfEngine::new(
        case.tree.clone(),
        &case.comp,
        case.model.clone(),
        case.alpha,
        4,
        InRamStore::new(case.tree.n_inner(), dims.width()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn likelihood_finite_and_rooting_invariant(case in arb_case(), root_pick in any::<u64>()) {
        let mut engine = inram(&case);
        let base = engine.log_likelihood().unwrap();
        prop_assert!(base.is_finite() && base < 0.0, "lnl {base}");
        let branches: Vec<u32> = engine.tree().branches().collect();
        let root = branches[(root_pick % branches.len() as u64) as usize];
        let re = engine.log_likelihood_at(root, false).unwrap();
        prop_assert!((re - base).abs() < 1e-7 * base.abs(), "{re} vs {base}");
        // Full recompute agrees with incremental state.
        let full = engine.log_likelihood_at(root, true).unwrap();
        prop_assert!((re - full).abs() < 1e-8 * full.abs());
    }

    #[test]
    fn out_of_core_bit_identical_for_any_slot_count(
        case in arb_case(),
        slot_pick in any::<u64>(),
        strat_pick in any::<u8>(),
    ) {
        let mut standard = inram(&case);
        let reference = standard.log_likelihood().unwrap();

        let n_items = case.tree.n_inner();
        let dims = PlfEngine::<InRamStore>::dims_for(&case.comp, 4);
        let n_slots = 3 + (slot_pick as usize % n_items.max(1));
        let kind = match strat_pick % 5 {
            0 => StrategyKind::Random { seed: 9 },
            1 => StrategyKind::Lru,
            2 => StrategyKind::Lfu,
            3 => StrategyKind::NextUse,
            _ => StrategyKind::Lru, // Topological needs an oracle; covered elsewhere
        };
        let cfg = OocConfig::builder(n_items, dims.width())
            .slots(n_slots.min(n_items.max(3)))
            .build()
            .unwrap();
        let manager = VectorManager::new(cfg, kind.build(None), MemStore::new(n_items, dims.width()));
        let mut ooc = PlfEngine::new(
            case.tree.clone(),
            &case.comp,
            case.model.clone(),
            case.alpha,
            4,
            OocStore::new(manager),
        );
        let lnl = ooc.log_likelihood().unwrap();
        prop_assert_eq!(reference.to_bits(), lnl.to_bits());
    }

    #[test]
    fn branch_optimisation_never_hurts(case in arb_case(), branch_pick in any::<u64>()) {
        let mut engine = inram(&case);
        let before = engine.log_likelihood().unwrap();
        let branches: Vec<u32> = engine.tree().branches().collect();
        let h = branches[(branch_pick % branches.len() as u64) as usize];
        let (z, lnl) = engine.optimize_branch(h, 24).unwrap();
        prop_assert!(z > 0.0 && z.is_finite());
        prop_assert!(lnl >= before - 1e-6 * before.abs(), "{before} -> {lnl}");
        // Incremental consistency afterwards.
        let partial = engine.log_likelihood().unwrap();
        engine.invalidate_all();
        let full = engine.log_likelihood().unwrap();
        prop_assert!((partial - full).abs() < 1e-8 * full.abs());
    }

    #[test]
    fn alpha_roundtrip_is_exact(case in arb_case(), alpha2 in 0.1f64..5.0) {
        let mut engine = inram(&case);
        let l1 = engine.log_likelihood().unwrap();
        engine.set_alpha(alpha2);
        let _ = engine.log_likelihood().unwrap();
        engine.set_alpha(case.alpha);
        let l2 = engine.log_likelihood().unwrap();
        prop_assert_eq!(l1.to_bits(), l2.to_bits(), "alpha roundtrip must be exact");
    }
}
