//! Property-based equivalence of the kernel backends: for arbitrary
//! state counts (DNA, protein, codon), pattern counts, branch lengths,
//! APV contents and underflow magnitudes, every backend that runs on this
//! machine must agree with the scalar reference — entries within 1e-13,
//! scale counts *exactly* equal (the 2⁻²⁵⁶ threshold predicate must never
//! flip across backends), and the generic-unrolled backend bit-identical.

use phylo_models::{DiscreteGamma, PMatrices, ReversibleModel};
use phylo_plf::kernels::derivatives::{build_sumtable, SumSide};
use phylo_plf::kernels::{Dims, KernelBackend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Backends whose own code path runs for `dims` on this machine.
fn live_backends(dims: &Dims) -> Vec<KernelBackend> {
    KernelBackend::ALL
        .iter()
        .copied()
        .filter(|b| *b != KernelBackend::Scalar && b.effective(dims) == *b)
        .collect()
}

/// Closeness: 1e-13 of the larger magnitude, floored at 1.0 so terms that
/// suffer catastrophic cancellation (the d2 numerator `l″l − l′²`) are
/// compared absolutely (AVX2 differs from scalar only by FMA contraction
/// and horizontal-sum reassociation).
fn close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-13 * a.abs().max(b.abs()).max(1.0)
}

fn assert_close_slices(name: &str, got: &[f64], want: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (i, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
        prop_assert!(close(g, w), "{}[{}]: {} vs scalar {}", name, i, g, w);
    }
    Ok(())
}

/// One random kernel workload: APVs drawn at `magnitude` (driving the
/// 2⁻²⁵⁶ scaling predicate when small), P-matrices from real branch
/// lengths.
struct Case {
    dims: Dims,
    pm_l: PMatrices,
    pm_r: PMatrices,
    model: ReversibleModel,
    gamma: DiscreteGamma,
    left: Vec<f64>,
    right: Vec<f64>,
    scale_l: Vec<u32>,
    scale_r: Vec<u32>,
}

fn build_case(
    n_patterns: usize,
    n_states: usize,
    seed: u64,
    bl_l: f64,
    bl_r: f64,
    mag_exp: i32,
) -> Case {
    let dims = Dims {
        n_patterns,
        n_states,
        n_cats: 4,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let model = match n_states {
        4 => ReversibleModel::hky85(2.0 + rng.gen_range(0.0..2.0), &[0.3, 0.2, 0.2, 0.3]),
        20 => phylo_models::protein::synthetic_protein(seed),
        61 => phylo_models::codon::synthetic_codon(seed),
        other => panic!("no test model for {other} states"),
    };
    let gamma = DiscreteGamma::new(0.5 + rng.gen_range(0.0..1.0), 4);
    let eigen = model.eigen();
    let mut pm_l = PMatrices::new(n_states, 4);
    let mut pm_r = PMatrices::new(n_states, 4);
    pm_l.update(&eigen, &gamma, bl_l);
    pm_r.update(&eigen, &gamma, bl_r);
    let magnitude = 10.0f64.powi(mag_exp);
    let mut apv = |_| {
        (0..dims.width())
            .map(|_| rng.gen_range(0.05..1.0) * magnitude)
            .collect::<Vec<f64>>()
    };
    let left = apv(0);
    let right = apv(1);
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xabcd);
    let scale_l: Vec<u32> = (0..n_patterns).map(|_| rng2.gen_range(0u32..3)).collect();
    let scale_r: Vec<u32> = (0..n_patterns).map(|_| rng2.gen_range(0u32..3)).collect();
    Case {
        dims,
        pm_l,
        pm_r,
        model,
        gamma,
        left,
        right,
        scale_l,
        scale_r,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `newview_inner_inner`: entries within 1e-13, scale counts exact.
    /// `mag_exp` sweeps from no-scaling (0) to deep-underflow (-100)
    /// territory; at -100 every site trips the 2⁻²⁵⁶ threshold.
    #[test]
    fn newview_backends_agree(
        n_patterns in 1usize..96,
        n_states in prop_oneof![Just(4usize), Just(20), Just(61)],
        seed in any::<u64>(),
        bl_l in 1e-6f64..2.0,
        bl_r in 1e-6f64..2.0,
        mag_exp in -100i32..0,
    ) {
        let case = build_case(n_patterns, n_states, seed, bl_l, bl_r, mag_exp);
        let dims = &case.dims;

        let mut want = vec![0.0f64; dims.width()];
        let mut want_scale = vec![0u32; n_patterns];
        KernelBackend::Scalar.newview_inner_inner(
            dims, &mut want, &mut want_scale,
            &case.left, &case.scale_l, &case.pm_l,
            &case.right, &case.scale_r, &case.pm_r,
        );

        for backend in live_backends(dims) {
            let mut got = vec![0.0f64; dims.width()];
            let mut got_scale = vec![0u32; n_patterns];
            backend.newview_inner_inner(
                dims, &mut got, &mut got_scale,
                &case.left, &case.scale_l, &case.pm_l,
                &case.right, &case.scale_r, &case.pm_r,
            );
            prop_assert_eq!(
                &got_scale, &want_scale,
                "{} scale counts diverged from scalar", backend.name()
            );
            if backend == KernelBackend::GenericUnrolled {
                // The generic-unrolled backend performs the scalar
                // reference's additions in the same order per lane:
                // bit-identical, not merely close.
                prop_assert_eq!(&got, &want);
            } else {
                assert_close_slices(backend.name(), &got, &want)?;
            }
        }
        // Deep underflow must actually engage the scaling path, so the
        // equality above is exercised where it matters.
        if mag_exp <= -80 {
            prop_assert!(want_scale.iter().all(|&s| s > 0));
        }
    }

    /// Root evaluation and NR derivative site terms across backends.
    #[test]
    fn evaluate_and_derivative_backends_agree(
        n_patterns in 1usize..96,
        n_states in prop_oneof![Just(4usize), Just(20), Just(61)],
        seed in any::<u64>(),
        bl in 1e-6f64..2.0,
        z in 0.02f64..0.95,
        mag_exp in -60i32..0,
    ) {
        let case = build_case(n_patterns, n_states, seed, bl, bl, mag_exp);
        let dims = &case.dims;
        let eigen = case.model.eigen();
        let mut wrng = StdRng::seed_from_u64(seed ^ 0x77);
        let weights: Vec<u32> = (0..n_patterns).map(|_| wrng.gen_range(1u32..5)).collect();

        let mut want = vec![0.0f64; n_patterns];
        KernelBackend::Scalar.evaluate_inner_inner_sites(
            dims, &case.left, &case.scale_l, &case.right, &case.scale_r,
            &case.pm_l, case.model.freqs(), &weights, &mut want,
        );
        for backend in live_backends(dims) {
            let mut got = vec![0.0f64; n_patterns];
            backend.evaluate_inner_inner_sites(
                dims, &case.left, &case.scale_l, &case.right, &case.scale_r,
                &case.pm_l, case.model.freqs(), &weights, &mut got,
            );
            if backend == KernelBackend::GenericUnrolled {
                prop_assert_eq!(&got, &want);
            } else {
                assert_close_slices(backend.name(), &got, &want)?;
            }
        }

        let mut sumtable = Vec::new();
        build_sumtable(
            dims,
            SumSide::Inner(&case.left),
            SumSide::Inner(&case.right),
            &eigen,
            case.model.freqs(),
            &mut sumtable,
        );
        let scale_sums: Vec<u32> = case
            .scale_l
            .iter()
            .zip(&case.scale_r)
            .map(|(&a, &b)| a + b)
            .collect();
        let mut want = [
            vec![0.0f64; n_patterns],
            vec![0.0f64; n_patterns],
            vec![0.0f64; n_patterns],
        ];
        {
            let [l, d1, d2] = &mut want;
            KernelBackend::Scalar.nr_derivatives_sites(
                dims, &sumtable, &weights, &scale_sums,
                eigen.values(), case.gamma.rates(), z, l, d1, d2,
            );
        }
        for backend in live_backends(dims) {
            let mut got = [
                vec![0.0f64; n_patterns],
                vec![0.0f64; n_patterns],
                vec![0.0f64; n_patterns],
            ];
            {
                let [l, d1, d2] = &mut got;
                backend.nr_derivatives_sites(
                    dims, &sumtable, &weights, &scale_sums,
                    eigen.values(), case.gamma.rates(), z, l, d1, d2,
                );
            }
            for (part, (g, w)) in ["lnl", "d1", "d2"].iter().zip(got.iter().zip(want.iter())) {
                assert_close_slices(&format!("{}:{}", backend.name(), part), g, w)?;
            }
        }
    }
}
