//! Engine-level backend equivalence: the same dataset evaluated with
//! every kernel backend that runs on this machine must produce the same
//! log-likelihood (Dna4Unrolled bit-identically — it preserves the scalar
//! summation order; AVX2+FMA within 1e-13 relative), and the sharded
//! engine must stay bit-identical to the serial engine for any fixed
//! backend.

use ooc_core::ShardSpec;
use phylo_models::{DiscreteGamma, ReversibleModel};
use phylo_plf::{InRamStore, KernelBackend, LikelihoodEngine, PlfEngine, ShardedPlfEngine};
use phylo_seq::{compress_patterns, simulate_alignment, CompressedAlignment};
use phylo_tree::build::{random_topology, yule_like_lengths};
use phylo_tree::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(
    n_taxa: usize,
    n_sites: usize,
    seed: u64,
) -> (Tree, CompressedAlignment, ReversibleModel) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = random_topology(n_taxa, 0.1, &mut rng);
    yule_like_lengths(&mut tree, 0.15, 1e-5, &mut rng);
    let model = ReversibleModel::hky85(2.5, &[0.3, 0.2, 0.2, 0.3]);
    let gamma = DiscreteGamma::new(0.8, 4);
    let aln = simulate_alignment(&tree, &model, &gamma, n_sites, &mut rng);
    (tree, compress_patterns(&aln), model)
}

fn serial(
    tree: &Tree,
    comp: &CompressedAlignment,
    model: &ReversibleModel,
) -> PlfEngine<InRamStore> {
    let dims = PlfEngine::<InRamStore>::dims_for(comp, 4);
    PlfEngine::new(
        tree.clone(),
        comp,
        model.clone(),
        0.8,
        4,
        InRamStore::new(tree.n_inner(), dims.width()),
    )
}

fn sharded(
    tree: &Tree,
    comp: &CompressedAlignment,
    model: &ReversibleModel,
    k: usize,
) -> ShardedPlfEngine<InRamStore> {
    let spec = ShardSpec::even(comp.n_patterns(), k);
    let stores = ShardedPlfEngine::<InRamStore>::shard_dims(comp, 4, &spec)
        .iter()
        .map(|d| InRamStore::new(tree.n_inner(), d.width()))
        .collect();
    ShardedPlfEngine::new(tree.clone(), comp, model.clone(), 0.8, 4, spec, stores)
}

/// Backends that run their own code path for DNA/Γ4 on this machine.
fn live_backends() -> Vec<KernelBackend> {
    let dims = phylo_plf::kernels::Dims {
        n_patterns: 1,
        n_states: 4,
        n_cats: 4,
    };
    KernelBackend::ALL
        .iter()
        .copied()
        .filter(|b| b.effective(&dims) == *b)
        .collect()
}

fn close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-13 * a.abs().max(b.abs())
}

#[test]
fn serial_engine_backends_agree() {
    let (tree, comp, model) = dataset(24, 400, 7);
    let mut engine = serial(&tree, &comp, &model);
    engine.set_kernel(KernelBackend::Scalar);
    let want = engine.log_likelihood().unwrap();
    let want_sites = engine.site_lnl().to_vec();
    assert!(want.is_finite() && want < 0.0);

    for backend in live_backends() {
        engine.set_kernel(backend);
        assert_eq!(engine.kernel(), backend);
        let got = engine.log_likelihood().unwrap();
        if backend == KernelBackend::Dna4Unrolled {
            // Unrolled preserves the exact scalar summation order.
            assert_eq!(got, want, "dna4 lnl must be bit-identical to scalar");
        }
        assert!(
            close(got, want),
            "{}: {got} vs scalar {want}",
            backend.name()
        );
        for (i, (&g, &w)) in engine.site_lnl().iter().zip(want_sites.iter()).enumerate() {
            assert!(close(g, w), "{} site {i}: {g} vs {w}", backend.name());
        }
    }
}

#[test]
fn branch_optimisation_backends_agree() {
    let (tree, comp, model) = dataset(16, 240, 11);
    let mut results = Vec::new();
    for backend in live_backends() {
        let mut engine = serial(&tree, &comp, &model);
        engine.set_kernel(backend);
        engine.log_likelihood().unwrap();
        let lnl = engine.smooth_branches(2, 8).unwrap();
        results.push((backend, lnl));
    }
    let (_, want) = results[0];
    for &(backend, got) in &results[1..] {
        // Newton steps amplify last-ulp differences slightly; the
        // optimised likelihoods must still agree to ~1e-10 relative.
        assert!(
            (got - want).abs() <= 1e-10 * want.abs(),
            "{}: optimised lnl {got} vs {want}",
            backend.name()
        );
    }
}

#[test]
fn sharded_matches_serial_for_every_backend() {
    let (tree, comp, model) = dataset(20, 300, 23);
    for backend in live_backends() {
        let mut eng = serial(&tree, &comp, &model);
        eng.set_kernel(backend);
        let want = eng.log_likelihood().unwrap();
        for k in [2usize, 3] {
            let mut sh = sharded(&tree, &comp, &model, k);
            sh.set_kernel(backend);
            assert_eq!(sh.kernel(), backend);
            let got = sh.log_likelihood().unwrap();
            assert_eq!(
                got,
                want,
                "{} with {k} shards must be bit-identical to serial",
                backend.name()
            );
        }
    }
}
