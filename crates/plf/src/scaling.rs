//! Numerical underflow scaling.
//!
//! Conditional likelihood entries shrink exponentially with tree depth, so
//! implementations multiply a site's entries by 2²⁵⁶ whenever they all drop
//! below 2⁻²⁵⁶, counting how often this happened per site. The counts are
//! added back as `count · ln 2⁻²⁵⁶` at evaluation time. This is exactly
//! RAxML's `minlikelihood` / `twotothe256` scheme; keeping it identical
//! matters because the paper validates the out-of-core implementation by
//! exact equality of log-likelihood scores.

/// Threshold below which a site's entries are rescaled: 2⁻²⁵⁶.
pub const MINLIKELIHOOD: f64 = 8.636168555094445e-78;

/// The rescale multiplier: 2²⁵⁶.
pub const TWOTOTHE256: f64 = 1.157920892373162e77;

/// `ln 2⁻²⁵⁶`, the log-likelihood contribution of one scaling event.
pub const LOG_MINLIKELIHOOD: f64 = -177.445_678_223_346;

/// The hoisted underflow test: does the whole site block (all categories ×
/// states) sit below [`MINLIKELIHOOD`]? Kernels test the block first and
/// only branch into the (cold) rescale when it does — in a converged
/// likelihood computation almost every site takes the not-scaled path, so
/// the predicate is separated from the rescale to keep the hot loop free
/// of the multiply branch.
#[inline]
pub fn site_needs_scaling(entries: &[f64]) -> bool {
    let mut max = 0.0f64;
    for &x in entries.iter() {
        let a = x.abs();
        if a > max {
            max = a;
        }
    }
    max < MINLIKELIHOOD
}

/// The rare path: multiply every entry of an underflowed site block by
/// [`TWOTOTHE256`]. Cold — callers branch here only after
/// [`site_needs_scaling`] (or a SIMD max-reduction equivalent) fired.
#[cold]
pub fn rescale_site(entries: &mut [f64]) {
    for x in entries.iter_mut() {
        *x *= TWOTOTHE256;
    }
}

/// Rescale one site's entries (all categories × states) if every entry's
/// magnitude is below [`MINLIKELIHOOD`]. Returns 1 if rescaled, else 0.
#[inline]
pub fn scale_site(entries: &mut [f64]) -> u32 {
    if site_needs_scaling(entries) {
        rescale_site(entries);
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_consistent() {
        assert!((MINLIKELIHOOD - 2f64.powi(-256)).abs() / MINLIKELIHOOD < 1e-12);
        assert!((TWOTOTHE256 - 2f64.powi(256)).abs() / TWOTOTHE256 < 1e-12);
        assert!((LOG_MINLIKELIHOOD - (-256.0 * std::f64::consts::LN_2)).abs() < 1e-9);
        assert!((MINLIKELIHOOD * TWOTOTHE256 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_sites_get_scaled() {
        let mut entries = vec![1e-100, 1e-90, 1e-120, 1e-95];
        assert_eq!(scale_site(&mut entries), 1);
        assert!((entries[1] - 1e-90 * TWOTOTHE256).abs() / entries[1] < 1e-12);
    }

    #[test]
    fn normal_sites_untouched() {
        let mut entries = vec![0.5, 1e-100, 0.1, 0.0];
        let before = entries.clone();
        assert_eq!(scale_site(&mut entries), 0);
        assert_eq!(entries, before);
    }

    #[test]
    fn boundary_behaviour() {
        // Exactly at the threshold: not strictly below, so no scaling.
        let mut entries = vec![MINLIKELIHOOD; 4];
        assert_eq!(scale_site(&mut entries), 0);
        let mut entries = vec![MINLIKELIHOOD * 0.999; 4];
        assert_eq!(scale_site(&mut entries), 1);
    }
}
