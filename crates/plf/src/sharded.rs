//! Sharded parallel PLF execution.
//!
//! [`ShardedPlfEngine`] partitions the alignment's pattern columns into
//! `k` contiguous shards ([`ShardSpec`]) and runs one complete
//! [`PlfEngine`] per shard: each owns the shard's slice of every ancestral
//! vector (through its own [`AncestralStore`], typically a
//! `VectorManager` over a disjoint region of one backing file), the
//! shard's tip codes and pattern weights, and a private clone of the tree.
//! Felsenstein combines are embarrassingly parallel across columns, so a
//! traversal executes all shards concurrently ([`ooc_core::par_each_mut`])
//! with zero synchronisation inside the kernels.
//!
//! **Determinism.** Results are bit-identical to the serial engine:
//!
//! * per-pattern terms are computed by the same kernels on the same
//!   column data — shard boundaries do not change any per-column value;
//! * reductions (root log-likelihood, Newton–Raphson derivatives) fold
//!   the per-pattern term buffers *in shard order*, which is the serial
//!   pattern order, using the same left-to-right fold
//!   ([`crate::kernels::evaluate::reduce_site_lnl`]) the serial engine
//!   uses — the identical sequence of floating-point additions;
//! * control flow that depends on reduced values (Newton steps, Brent's
//!   α search, search accept/reject) therefore sees identical numbers
//!   and takes identical decisions.
//!
//! The shard trees are kept in lockstep: every topology or parameter
//! operation is forwarded to all shards, so their traversal plans — and
//! hence each shard's residency access pattern — coincide.
//!
//! **Per-shard I/O pipelines.** Because every shard owns its store
//! outright, each one may independently wrap its region in a plan-driven
//! `ooc_core::PrefetchingStore`: shard `k`'s I/O workers stream shard
//! `k`'s plan window from shard `k`'s region while shard `k`'s kernels
//! compute, with no cross-shard coordination (the regions are disjoint
//! byte ranges of one file, accessed by positioned I/O). The pipeline
//! moves bytes earlier but never changes them, so the determinism
//! argument above is untouched — pipelined shards remain bit-identical
//! to the serial engine. The canonical wiring is an `EngineSpec` with
//! `Residency::File`, `shards > 1` and `io_threads > 0`.

use crate::brlen::{newton_optimize, smoothing_order};
use crate::kernels::{Dims, KernelBackend};
use crate::likelihood_api::LikelihoodEngine;
use crate::modelopt::{ALPHA_MAX, ALPHA_MIN};
use crate::store_api::AncestralStore;
use crate::{PlfEngine, TipCodes};
use ooc_core::{par_each_mut, OocError, OocResult, OocStats, Recorder, ShardSpec, StallKind};
use phylo_models::{brent_minimize, ReversibleModel};
use phylo_seq::CompressedAlignment;
use phylo_tree::spr::{NniUndo, SprUndo};
use phylo_tree::{HalfEdgeId, Tree};

/// `k` shard engines over disjoint, contiguous pattern ranges.
pub struct ShardedPlfEngine<S: AncestralStore + Send> {
    shards: Vec<PlfEngine<S>>,
    spec: ShardSpec,
    /// Observability recorder: per-shard execution and barrier-wait spans.
    obs: Option<Recorder>,
}

impl<S: AncestralStore + Send> ShardedPlfEngine<S> {
    /// Per-shard vector dimensions for `spec` — needed to size the backing
    /// stores (e.g. the per-shard widths of
    /// `ooc_core::FileStore::create_regions`) before construction.
    pub fn shard_dims(comp: &CompressedAlignment, n_cats: usize, spec: &ShardSpec) -> Vec<Dims> {
        let full = PlfEngine::<S>::dims_for(comp, n_cats);
        spec.ranges()
            .iter()
            .map(|r| Dims {
                n_patterns: r.len(),
                ..full
            })
            .collect()
    }

    /// Build a sharded engine. `stores[i]` must be sized for
    /// `tree.n_inner()` vectors of `shard_dims(..)[i].width()` doubles;
    /// `spec` must cover exactly the alignment's patterns.
    pub fn new(
        tree: Tree,
        comp: &CompressedAlignment,
        model: ReversibleModel,
        alpha: f64,
        n_cats: usize,
        spec: ShardSpec,
        stores: Vec<S>,
    ) -> Self {
        assert_eq!(
            spec.n_columns(),
            comp.n_patterns(),
            "shard spec must cover exactly the alignment's patterns"
        );
        assert_eq!(stores.len(), spec.n_shards(), "one backing store per shard");
        let tips = TipCodes::from_alignment(comp);
        let dims = Self::shard_dims(comp, n_cats, &spec);
        let shards = spec
            .ranges()
            .iter()
            .zip(dims)
            .zip(stores)
            .map(|((range, d), store)| {
                PlfEngine::from_parts(
                    tree.clone(),
                    model.clone(),
                    alpha,
                    d,
                    tips.slice_patterns(range.clone()),
                    comp.weights[range.clone()].to_vec(),
                    store,
                )
            })
            .collect();
        ShardedPlfEngine {
            shards,
            spec,
            obs: None,
        }
    }

    /// Attach an observability recorder. Every parallel section then
    /// records, per shard, a `("sharded", "shard-exec")` span (the shard's
    /// own wall time, unattributed — the residency layers below attribute
    /// their slices) and a `("sharded", "barrier-wait")` span (how long
    /// the shard sat idle waiting for the slowest sibling — the §4
    /// load-imbalance signal). The recorder is also forwarded to each
    /// shard engine for its combine-batch spans; shard-level residency
    /// stores attach their own recorders via [`Self::shard_mut`].
    pub fn set_recorder(&mut self, rec: Recorder) {
        for e in &mut self.shards {
            e.set_recorder(rec.clone());
        }
        self.obs = Some(rec);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.obs.as_ref()
    }

    /// The shard specification.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The kernel backend the shard engines dispatch through.
    pub fn kernel(&self) -> KernelBackend {
        self.shards[0].kernel()
    }

    /// Set the kernel backend on every shard. The serial/sharded
    /// bit-equality guarantee holds between engines running the *same*
    /// backend — mixed backends differ in the last ulps (FMA contraction).
    pub fn set_kernel(&mut self, kernel: KernelBackend) {
        for e in &mut self.shards {
            e.set_kernel(kernel);
        }
    }

    /// A shard's engine (its store carries the shard's residency stats).
    pub fn shard(&self, i: usize) -> &PlfEngine<S> {
        &self.shards[i]
    }

    /// Mutable shard access (e.g. to reset per-shard statistics).
    pub fn shard_mut(&mut self, i: usize) -> &mut PlfEngine<S> {
        &mut self.shards[i]
    }

    /// Sum of the shards' residency statistics, or `None` if the backends
    /// keep none.
    pub fn merged_ooc_stats(&self) -> Option<OocStats> {
        self.shards
            .iter()
            .map(|e| e.store().ooc_stats())
            .sum::<Option<OocStats>>()
    }

    /// Run `op` on every shard concurrently, failing with the first
    /// shard's error (in shard order) if any shard fails. With a recorder
    /// attached, each shard's wall time and its wait for the slowest
    /// sibling (the parallel-section barrier) are recorded as spans.
    fn par_shards<R: Send>(
        &mut self,
        op: impl Fn(&mut PlfEngine<S>) -> OocResult<R> + Sync,
    ) -> OocResult<Vec<R>> {
        let Some(rec) = self.obs.clone() else {
            return par_each_mut(&mut self.shards, |_, e| op(e))
                .into_iter()
                .collect();
        };
        let timed = par_each_mut(&mut self.shards, |_, e| {
            let t0 = rec.now();
            let r = op(e);
            (r, t0, rec.now())
        });
        // The barrier releases when the slowest shard finishes; everything
        // a faster shard spent past its own finish is attributed wait.
        let max_end = timed.iter().map(|&(_, _, t1)| t1).max().unwrap_or(0);
        let mut out = Vec::with_capacity(timed.len());
        for (i, (r, t0, t1)) in timed.into_iter().enumerate() {
            rec.span_at("sharded", "shard-exec", StallKind::Compute, t0)
                .shard(i as u32)
                .unattributed()
                .finish_at(t1);
            rec.span_at("sharded", "barrier-wait", StallKind::BarrierWait, t1)
                .shard(i as u32)
                .finish_at(max_end);
            out.push(r?);
        }
        Ok(out)
    }

    /// The cross-shard ordered reduction: continue one left-to-right fold
    /// across the shards' per-pattern buffers in shard order — exactly the
    /// serial engine's `reduce_site_lnl` over the full-alignment buffer.
    fn fold_shards<'a>(bufs: impl Iterator<Item = &'a [f64]>) -> f64 {
        bufs.flatten().fold(0.0, |acc, &t| acc + t)
    }

    /// Build the branch sumtable on every shard in parallel (the prepare
    /// half of a Newton–Raphson branch optimisation).
    pub(crate) fn par_prepare_branch(&mut self, h: HalfEdgeId) -> OocResult<()> {
        self.par_shards(|e| e.prepare_branch(h)).map(|_| ())
    }

    /// Cross-shard `(lnL, d1, d2)` of the prepared branch at length `z`:
    /// per-pattern terms per shard in parallel, into each shard's reusable
    /// NR scratch (no per-iteration allocation); each accumulator is then
    /// folded across shards in shard order, matching the serial
    /// `nr_derivatives` folds bit-for-bit.
    pub(crate) fn shard_branch_derivatives(&mut self, z: f64) -> (f64, f64, f64) {
        let shards = &mut self.shards;
        let triples = par_each_mut(shards, |_, e| {
            let mut l = std::mem::take(&mut e.nr_l);
            let mut d1 = std::mem::take(&mut e.nr_d1);
            let mut d2 = std::mem::take(&mut e.nr_d2);
            e.branch_derivatives_sites(z, &mut l, &mut d1, &mut d2);
            (l, d1, d2)
        });
        let folded = (
            Self::fold_shards(triples.iter().map(|t| t.0.as_slice())),
            Self::fold_shards(triples.iter().map(|t| t.1.as_slice())),
            Self::fold_shards(triples.iter().map(|t| t.2.as_slice())),
        );
        for (e, (l, d1, d2)) in shards.iter_mut().zip(triples) {
            e.nr_l = l;
            e.nr_d1 = d1;
            e.nr_d2 = d2;
        }
        folded
    }

    /// The paper's `-f z` worst case: `count` successive full traversals.
    pub fn full_traversals(&mut self, count: usize) -> OocResult<f64> {
        let root = self.tree().default_root_edge();
        let mut lnl = 0.0;
        for _ in 0..count {
            lnl = self.log_likelihood_at(root, true)?;
        }
        Ok(lnl)
    }
}

impl<S: AncestralStore + Send> LikelihoodEngine for ShardedPlfEngine<S> {
    fn tree(&self) -> &Tree {
        self.shards[0].tree()
    }

    fn alpha(&self) -> f64 {
        self.shards[0].alpha()
    }

    fn set_alpha(&mut self, alpha: f64) {
        for e in &mut self.shards {
            e.set_alpha(alpha);
        }
    }

    fn invalidate_all(&mut self) {
        for e in &mut self.shards {
            e.invalidate_all();
        }
    }

    fn log_likelihood(&mut self) -> OocResult<f64> {
        self.log_likelihood_at(self.tree().default_root_edge(), false)
    }

    fn log_likelihood_at(&mut self, root_he: HalfEdgeId, full: bool) -> OocResult<f64> {
        // Each shard plans, executes and evaluates its columns in
        // parallel, leaving per-pattern terms in its `site_lnl` buffer...
        self.par_shards(|e| e.log_likelihood_at(root_he, full).map(|_| ()))?;
        // ...which are reduced serially in shard order (determinism).
        Ok(Self::fold_shards(self.shards.iter().map(|e| e.site_lnl())))
    }

    fn set_branch_length(&mut self, h: HalfEdgeId, len: f64) {
        for e in &mut self.shards {
            e.set_branch_length(h, len);
        }
    }

    fn optimize_branch(&mut self, h: HalfEdgeId, max_iter: u32) -> OocResult<(f64, f64)> {
        // Sumtables for the branch, all shards in parallel; then Newton
        // over the cross-shard ordered derivative reduction.
        self.par_prepare_branch(h)?;
        let z0 = self.tree().branch_length(h);
        let (z, best_lnl) = newton_optimize(z0, max_iter, |z| self.shard_branch_derivatives(z));
        self.set_branch_length(h, z);
        Ok((z, best_lnl))
    }

    fn smooth_branches(&mut self, passes: usize, nr_iter: u32) -> OocResult<f64> {
        let mut lnl = f64::NEG_INFINITY;
        for _ in 0..passes {
            // Same DFS half-edge order as the serial engine (the shard
            // trees are identical), so the optimisation sequence matches.
            for h in smoothing_order(self.tree()) {
                let (_, l) = self.optimize_branch(h, nr_iter)?;
                lnl = l;
            }
        }
        Ok(lnl)
    }

    fn optimize_alpha(&mut self, tol: f64, max_iter: u32) -> OocResult<(f64, f64)> {
        // Same Brent-on-ln(α) procedure as the serial engine; because the
        // sharded log-likelihood is bit-identical, Brent probes the same
        // α sequence and converges to the same optimum.
        let mut io_error: Option<OocError> = None;
        let result = brent_minimize(
            |ln_a| {
                if io_error.is_some() {
                    return f64::INFINITY;
                }
                self.set_alpha(ln_a.exp());
                match self.log_likelihood() {
                    Ok(lnl) => -lnl,
                    Err(e) => {
                        io_error = Some(e);
                        f64::INFINITY
                    }
                }
            },
            ALPHA_MIN.ln(),
            ALPHA_MAX.ln(),
            tol,
            max_iter,
        );
        if let Some(e) = io_error {
            return Err(e);
        }
        let alpha = result.x.exp();
        self.set_alpha(alpha);
        let lnl = self.log_likelihood()?;
        Ok((alpha, lnl))
    }

    fn apply_spr(
        &mut self,
        prune_dir: HalfEdgeId,
        target: HalfEdgeId,
        graft_lens: Option<(f64, f64)>,
    ) -> SprUndo {
        // The shard trees are identical, so each shard produces the same
        // undo record; keep the first.
        let mut undo = None;
        for e in &mut self.shards {
            let u = e.apply_spr(prune_dir, target, graft_lens);
            undo.get_or_insert(u);
        }
        undo.expect("sharded engine has at least one shard")
    }

    fn undo_spr(&mut self, prune_dir: HalfEdgeId, undo: &SprUndo) {
        for e in &mut self.shards {
            e.undo_spr(prune_dir, undo);
        }
    }

    fn apply_nni(&mut self, h: HalfEdgeId, variant: u8) -> NniUndo {
        let mut undo = None;
        for e in &mut self.shards {
            let u = e.apply_nni(h, variant);
            undo.get_or_insert(u);
        }
        undo.expect("sharded engine has at least one shard")
    }

    fn undo_nni(&mut self, undo: &NniUndo) {
        for e in &mut self.shards {
            e.undo_nni(undo);
        }
    }

    fn ooc_stats(&self) -> Option<OocStats> {
        self.merged_ooc_stats()
    }

    fn reset_ooc_stats(&mut self) {
        for i in 0..self.n_shards() {
            self.shard_mut(i).reset_ooc_stats();
        }
    }
}
