//! Fully unrolled kernels for the dominant case: DNA (4 states) under Γ4
//! (4 rate categories), i.e. a site stride of exactly 16 `f64`s.
//!
//! The generic kernels in [`super::newview`] walk `n_states`/`n_cats` with
//! runtime trip counts, which keeps the inner loops opaque to the
//! optimizer. Here every loop is either fully unrolled by hand (the 4×4
//! mat-vec) or runs over a fixed-size `[f64; 16]` obtained via
//! `chunks_exact`, so the compiler sees constant trip counts and emits
//! straight-line vectorizable code. Floating-point evaluation order is kept
//! identical to the scalar kernels (left-to-right sums, no reassociation),
//! so results — including scale counts — match the scalar backend exactly.

use super::Dims;
use crate::scaling::{rescale_site, site_needs_scaling, LOG_MINLIKELIHOOD};
use phylo_models::PMatrices;

/// Site stride this module is specialized for: 4 states × 4 categories.
pub const DNA4_STRIDE: usize = 16;

/// Does this dimension set match the specialization?
#[inline]
pub fn dims_match(dims: &Dims) -> bool {
    dims.n_states == 4 && dims.n_cats == 4
}

/// Floor for per-site likelihoods before taking logs (same as the scalar
/// evaluate kernel).
const L_FLOOR: f64 = 1e-300;

#[inline(always)]
fn a16(s: &[f64]) -> &[f64; DNA4_STRIDE] {
    s.try_into().expect("dna4 kernels require stride-16 blocks")
}

/// Copy the four per-category 4×4 matrices into stack-local fixed arrays
/// (512 B, one-time per kernel call) so the site loop indexes constants.
#[inline]
fn load_pms(pm: &PMatrices) -> [[f64; DNA4_STRIDE]; 4] {
    core::array::from_fn(|c| *a16(pm.cat(c)))
}

/// Unrolled 4×4 row-major mat-vec with the scalar kernels' exact
/// (left-to-right) summation order.
#[inline(always)]
fn matvec4(p: &[f64; DNA4_STRIDE], v: &[f64; 4]) -> [f64; 4] {
    [
        p[0] * v[0] + p[1] * v[1] + p[2] * v[2] + p[3] * v[3],
        p[4] * v[0] + p[5] * v[1] + p[6] * v[2] + p[7] * v[3],
        p[8] * v[0] + p[9] * v[1] + p[10] * v[2] + p[11] * v[3],
        p[12] * v[0] + p[13] * v[1] + p[14] * v[2] + p[15] * v[3],
    ]
}

/// Hoisted scale handling: test the whole 16-entry block once, branch to
/// the cold rescale only when every entry underflowed.
#[inline(always)]
fn scale_block(site: &mut [f64; DNA4_STRIDE]) -> u32 {
    if site_needs_scaling(site) {
        rescale_site(site);
        1
    } else {
        0
    }
}

/// DNA/Γ4 specialization of [`super::newview::newview_tip_tip`].
pub fn newview_tip_tip(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_l: &[f64],
    codes_l: &[u16],
    lut_r: &[f64],
    codes_r: &[u16],
) {
    debug_assert!(dims_match(dims));
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(scale_p.len(), dims.n_patterns);
    debug_assert_eq!(lut_l.len() % DNA4_STRIDE, 0);
    debug_assert_eq!(lut_r.len() % DNA4_STRIDE, 0);
    for (i, chunk) in parent.chunks_exact_mut(DNA4_STRIDE).enumerate() {
        let site: &mut [f64; DNA4_STRIDE] = chunk.try_into().unwrap();
        let lbase = codes_l[i] as usize * DNA4_STRIDE;
        let rbase = codes_r[i] as usize * DNA4_STRIDE;
        let l = a16(&lut_l[lbase..lbase + DNA4_STRIDE]);
        let r = a16(&lut_r[rbase..rbase + DNA4_STRIDE]);
        for e in 0..DNA4_STRIDE {
            site[e] = l[e] * r[e];
        }
        scale_p[i] = scale_block(site);
    }
}

/// DNA/Γ4 specialization of [`super::newview::newview_tip_inner`].
#[allow(clippy::too_many_arguments)]
pub fn newview_tip_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_tip: &[f64],
    codes_tip: &[u16],
    inner: &[f64],
    scale_inner: &[u32],
    pm_inner: &PMatrices,
) {
    debug_assert!(dims_match(dims));
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(inner.len(), dims.width());
    debug_assert_eq!(lut_tip.len() % DNA4_STRIDE, 0);
    let pms = load_pms(pm_inner);
    for (i, (chunk, child)) in parent
        .chunks_exact_mut(DNA4_STRIDE)
        .zip(inner.chunks_exact(DNA4_STRIDE))
        .enumerate()
    {
        let site: &mut [f64; DNA4_STRIDE] = chunk.try_into().unwrap();
        let tbase = codes_tip[i] as usize * DNA4_STRIDE;
        let tip = a16(&lut_tip[tbase..tbase + DNA4_STRIDE]);
        let child = a16(child);
        for (c, pm) in pms.iter().enumerate() {
            let o = c * 4;
            let ch = [child[o], child[o + 1], child[o + 2], child[o + 3]];
            let s = matvec4(pm, &ch);
            site[o] = tip[o] * s[0];
            site[o + 1] = tip[o + 1] * s[1];
            site[o + 2] = tip[o + 2] * s[2];
            site[o + 3] = tip[o + 3] * s[3];
        }
        scale_p[i] = scale_inner[i] + scale_block(site);
    }
}

/// DNA/Γ4 specialization of [`super::newview::newview_inner_inner`].
#[allow(clippy::too_many_arguments)]
pub fn newview_inner_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    left: &[f64],
    scale_l: &[u32],
    pm_l: &PMatrices,
    right: &[f64],
    scale_r: &[u32],
    pm_r: &PMatrices,
) {
    debug_assert!(dims_match(dims));
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(left.len(), dims.width());
    debug_assert_eq!(right.len(), dims.width());
    let pls = load_pms(pm_l);
    let prs = load_pms(pm_r);
    for (i, ((chunk, lsite), rsite)) in parent
        .chunks_exact_mut(DNA4_STRIDE)
        .zip(left.chunks_exact(DNA4_STRIDE))
        .zip(right.chunks_exact(DNA4_STRIDE))
        .enumerate()
    {
        let site: &mut [f64; DNA4_STRIDE] = chunk.try_into().unwrap();
        let lsite = a16(lsite);
        let rsite = a16(rsite);
        for c in 0..4 {
            let o = c * 4;
            let lc = [lsite[o], lsite[o + 1], lsite[o + 2], lsite[o + 3]];
            let rc = [rsite[o], rsite[o + 1], rsite[o + 2], rsite[o + 3]];
            let sl = matvec4(&pls[c], &lc);
            let sr = matvec4(&prs[c], &rc);
            site[o] = sl[0] * sr[0];
            site[o + 1] = sl[1] * sr[1];
            site[o + 2] = sl[2] * sr[2];
            site[o + 3] = sl[3] * sr[3];
        }
        scale_p[i] = scale_l[i] + scale_r[i] + scale_block(site);
    }
}

/// DNA/Γ4 specialization of
/// [`super::evaluate::evaluate_inner_inner_sites`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_inner_inner_sites(
    dims: &Dims,
    pvec: &[f64],
    scale_p: &[u32],
    qvec: &[f64],
    scale_q: &[u32],
    pm_root: &PMatrices,
    freqs: &[f64],
    weights: &[u32],
    site_out: &mut [f64],
) {
    debug_assert!(dims_match(dims));
    debug_assert_eq!(pvec.len(), dims.width());
    debug_assert_eq!(qvec.len(), dims.width());
    let pms = load_pms(pm_root);
    let fr = [freqs[0], freqs[1], freqs[2], freqs[3]];
    let cat_w = 0.25;
    for (i, (psite, qsite)) in pvec
        .chunks_exact(DNA4_STRIDE)
        .zip(qvec.chunks_exact(DNA4_STRIDE))
        .enumerate()
    {
        let psite = a16(psite);
        let qsite = a16(qsite);
        let mut site_l = 0.0;
        for (c, pm) in pms.iter().enumerate() {
            let o = c * 4;
            let qc = [qsite[o], qsite[o + 1], qsite[o + 2], qsite[o + 3]];
            let dot = matvec4(pm, &qc);
            let mut cat_sum = 0.0;
            cat_sum += fr[0] * psite[o] * dot[0];
            cat_sum += fr[1] * psite[o + 1] * dot[1];
            cat_sum += fr[2] * psite[o + 2] * dot[2];
            cat_sum += fr[3] * psite[o + 3] * dot[3];
            site_l += cat_w * cat_sum;
        }
        let scale = (scale_p[i] + scale_q[i]) as f64;
        site_out[i] = weights[i] as f64 * (site_l.max(L_FLOOR).ln() + scale * LOG_MINLIKELIHOOD);
    }
}

/// DNA/Γ4 specialization of [`super::evaluate::evaluate_tip_inner_sites`].
pub fn evaluate_tip_inner_sites(
    dims: &Dims,
    root_lut: &[f64],
    codes_tip: &[u16],
    qvec: &[f64],
    scale_q: &[u32],
    weights: &[u32],
    site_out: &mut [f64],
) {
    debug_assert!(dims_match(dims));
    debug_assert_eq!(qvec.len(), dims.width());
    debug_assert_eq!(root_lut.len() % DNA4_STRIDE, 0);
    let cat_w = 0.25;
    for (i, qsite) in qvec.chunks_exact(DNA4_STRIDE).enumerate() {
        let qsite = a16(qsite);
        let lbase = codes_tip[i] as usize * DNA4_STRIDE;
        let lut = a16(&root_lut[lbase..lbase + DNA4_STRIDE]);
        let mut site_l = 0.0;
        for e in 0..DNA4_STRIDE {
            site_l += lut[e] * qsite[e];
        }
        site_l *= cat_w;
        site_out[i] =
            weights[i] as f64 * (site_l.max(L_FLOOR).ln() + scale_q[i] as f64 * LOG_MINLIKELIHOOD);
    }
}

/// DNA/Γ4 specialization of [`super::derivatives::nr_derivatives_sites`].
#[allow(clippy::too_many_arguments)]
pub fn nr_derivatives_sites(
    dims: &Dims,
    sumtable: &[f64],
    weights: &[u32],
    scale_sums: &[u32],
    eigenvalues: &[f64],
    rates: &[f64],
    z: f64,
    out_l: &mut [f64],
    out_d1: &mut [f64],
    out_d2: &mut [f64],
) {
    debug_assert!(dims_match(dims));
    debug_assert_eq!(sumtable.len(), dims.width());
    let cat_w = 0.25;
    let mut e0 = [0.0; DNA4_STRIDE];
    let mut e1 = [0.0; DNA4_STRIDE];
    let mut e2 = [0.0; DNA4_STRIDE];
    for c in 0..4 {
        for k in 0..4 {
            let lr = eigenvalues[k] * rates[c];
            let ex = (lr * z).exp();
            e0[c * 4 + k] = ex;
            e1[c * 4 + k] = lr * ex;
            e2[c * 4 + k] = lr * lr * ex;
        }
    }
    for (i, site) in sumtable.chunks_exact(DNA4_STRIDE).enumerate() {
        let site = a16(site);
        let (mut l, mut lp, mut lpp) = (0.0, 0.0, 0.0);
        for e in 0..DNA4_STRIDE {
            l += site[e] * e0[e];
            lp += site[e] * e1[e];
            lpp += site[e] * e2[e];
        }
        l *= cat_w;
        lp *= cat_w;
        lpp *= cat_w;
        let l_safe = l.max(L_FLOOR);
        let w = weights[i] as f64;
        out_l[i] = w * (l_safe.ln() + scale_sums[i] as f64 * LOG_MINLIKELIHOOD);
        out_d1[i] = w * (lp / l_safe);
        out_d2[i] = w * ((lpp * l_safe - lp * lp) / (l_safe * l_safe));
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::random_vector;
    use super::super::{derivatives, evaluate, newview};
    use super::*;
    use crate::encode::TipCodes;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_seq::{compress_patterns, Alignment, Alphabet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        Dims,
        TipCodes,
        PMatrices,
        PMatrices,
        ReversibleModel,
        DiscreteGamma,
    ) {
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "ACGTNACGTRYA".into()),
                ("b".into(), "ACGARGTTACGT".into()),
            ],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let codes = TipCodes::from_alignment(&comp);
        let model = ReversibleModel::hky85(2.0, &[0.3, 0.2, 0.2, 0.3]);
        let gamma = DiscreteGamma::new(0.7, 4);
        let eigen = model.eigen();
        let mut pm_l = PMatrices::new(4, 4);
        let mut pm_r = PMatrices::new(4, 4);
        pm_l.update(&eigen, &gamma, 0.12);
        pm_r.update(&eigen, &gamma, 0.31);
        let dims = Dims {
            n_patterns: comp.n_patterns(),
            n_states: 4,
            n_cats: 4,
        };
        (dims, codes, pm_l, pm_r, model, gamma)
    }

    #[test]
    fn tip_tip_matches_scalar_exactly() {
        let (dims, codes, pm_l, pm_r, _m, _g) = setup();
        let (mut lut_l, mut lut_r) = (Vec::new(), Vec::new());
        codes.build_lut(&pm_l, &mut lut_l);
        codes.build_lut(&pm_r, &mut lut_r);
        let mut p_s = vec![0.0; dims.width()];
        let mut sc_s = vec![0u32; dims.n_patterns];
        newview::newview_tip_tip(
            &dims,
            &mut p_s,
            &mut sc_s,
            &lut_l,
            codes.tip(0),
            &lut_r,
            codes.tip(1),
        );
        let mut p_u = vec![0.0; dims.width()];
        let mut sc_u = vec![0u32; dims.n_patterns];
        newview_tip_tip(
            &dims,
            &mut p_u,
            &mut sc_u,
            &lut_l,
            codes.tip(0),
            &lut_r,
            codes.tip(1),
        );
        assert_eq!(p_s, p_u, "identical op order must be bit-identical");
        assert_eq!(sc_s, sc_u);
    }

    #[test]
    fn tip_inner_matches_scalar_exactly() {
        let (dims, codes, pm_l, pm_r, _m, _g) = setup();
        let mut lut = Vec::new();
        codes.build_lut(&pm_l, &mut lut);
        let mut rng = StdRng::seed_from_u64(41);
        let inner = random_vector(&dims, &mut rng);
        let scale_inner = vec![1u32; dims.n_patterns];
        let mut p_s = vec![0.0; dims.width()];
        let mut sc_s = vec![0u32; dims.n_patterns];
        newview::newview_tip_inner(
            &dims,
            &mut p_s,
            &mut sc_s,
            &lut,
            codes.tip(0),
            &inner,
            &scale_inner,
            &pm_r,
        );
        let mut p_u = vec![0.0; dims.width()];
        let mut sc_u = vec![0u32; dims.n_patterns];
        newview_tip_inner(
            &dims,
            &mut p_u,
            &mut sc_u,
            &lut,
            codes.tip(0),
            &inner,
            &scale_inner,
            &pm_r,
        );
        assert_eq!(p_s, p_u);
        assert_eq!(sc_s, sc_u);
    }

    #[test]
    fn inner_inner_matches_scalar_incl_underflow() {
        let (dims, _codes, pm_l, pm_r, _m, _g) = setup();
        for magnitude in [1.0, 1e-100] {
            let mut rng = StdRng::seed_from_u64(43);
            let left: Vec<f64> = random_vector(&dims, &mut rng)
                .iter()
                .map(|x| x * magnitude)
                .collect();
            let right: Vec<f64> = random_vector(&dims, &mut rng)
                .iter()
                .map(|x| x * magnitude)
                .collect();
            let scale_l = vec![1u32; dims.n_patterns];
            let scale_r = vec![2u32; dims.n_patterns];
            let mut p_s = vec![0.0; dims.width()];
            let mut sc_s = vec![0u32; dims.n_patterns];
            newview::newview_inner_inner(
                &dims, &mut p_s, &mut sc_s, &left, &scale_l, &pm_l, &right, &scale_r, &pm_r,
            );
            let mut p_u = vec![0.0; dims.width()];
            let mut sc_u = vec![0u32; dims.n_patterns];
            newview_inner_inner(
                &dims, &mut p_u, &mut sc_u, &left, &scale_l, &pm_l, &right, &scale_r, &pm_r,
            );
            assert_eq!(p_s, p_u, "magnitude {magnitude}");
            assert_eq!(sc_s, sc_u, "magnitude {magnitude}");
            if magnitude < 1.0 {
                assert!(sc_u.iter().all(|&s| s == 4), "underflow must have scaled");
            }
        }
    }

    #[test]
    fn evaluate_matches_scalar_exactly() {
        let (dims, codes, pm_l, _pm_r, model, _g) = setup();
        let mut rng = StdRng::seed_from_u64(47);
        let p = random_vector(&dims, &mut rng);
        let q = random_vector(&dims, &mut rng);
        let scale_p = vec![1u32; dims.n_patterns];
        let scale_q = vec![0u32; dims.n_patterns];
        let w = vec![2u32; dims.n_patterns];
        let mut s_ref = vec![0.0; dims.n_patterns];
        let mut s_got = vec![0.0; dims.n_patterns];
        evaluate::evaluate_inner_inner_sites(
            &dims,
            &p,
            &scale_p,
            &q,
            &scale_q,
            &pm_l,
            model.freqs(),
            &w,
            &mut s_ref,
        );
        evaluate_inner_inner_sites(
            &dims,
            &p,
            &scale_p,
            &q,
            &scale_q,
            &pm_l,
            model.freqs(),
            &w,
            &mut s_got,
        );
        assert_eq!(s_ref, s_got);

        let mut rlut = Vec::new();
        codes.build_root_lut(&pm_l, model.freqs(), &mut rlut);
        evaluate::evaluate_tip_inner_sites(
            &dims,
            &rlut,
            codes.tip(0),
            &q,
            &scale_q,
            &w,
            &mut s_ref,
        );
        evaluate_tip_inner_sites(&dims, &rlut, codes.tip(0), &q, &scale_q, &w, &mut s_got);
        assert_eq!(s_ref, s_got);
    }

    #[test]
    fn derivatives_match_scalar_exactly() {
        let (dims, _codes, _pm_l, _pm_r, model, gamma) = setup();
        let eigen = model.eigen();
        let mut rng = StdRng::seed_from_u64(53);
        let p = random_vector(&dims, &mut rng);
        let q = random_vector(&dims, &mut rng);
        let mut sumtable = Vec::new();
        derivatives::build_sumtable(
            &dims,
            derivatives::SumSide::Inner(&p),
            derivatives::SumSide::Inner(&q),
            &eigen,
            model.freqs(),
            &mut sumtable,
        );
        let w = vec![1u32; dims.n_patterns];
        let ss = vec![1u32; dims.n_patterns];
        let n = dims.n_patterns;
        let (mut l_a, mut d1_a, mut d2_a) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let (mut l_b, mut d1_b, mut d2_b) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        derivatives::nr_derivatives_sites(
            &dims,
            &sumtable,
            &w,
            &ss,
            eigen.values(),
            gamma.rates(),
            0.2,
            &mut l_a,
            &mut d1_a,
            &mut d2_a,
        );
        nr_derivatives_sites(
            &dims,
            &sumtable,
            &w,
            &ss,
            eigen.values(),
            gamma.rates(),
            0.2,
            &mut l_b,
            &mut d1_b,
            &mut d2_b,
        );
        assert_eq!(l_a, l_b);
        assert_eq!(d1_a, d1_b);
        assert_eq!(d2_a, d2_b);
    }
}
