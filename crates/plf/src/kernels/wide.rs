//! AVX2+FMA kernels for arbitrary state counts (protein 20, codon 61, …).
//!
//! The stride-16 module ([`super::avx2`]) hard-codes the DNA/Γ4 shape; this
//! module keeps the same broadcast-FMA structure but tiles the destination
//! states in chunks of four: for each chunk the mat-vec
//! `Σ_y P(x,y)·v[y]` runs over the transposed category matrices
//! ([`phylo_models::PMatrices::cat_t`], destination states contiguous), one
//! FMA per source state `y`, with a scalar loop for the `n_states % 4`
//! tail. FMA contracts differ from the scalar backend in the last ulps;
//! the underflow-scaling decision (max against 2⁻²⁵⁶) is ulp-insensitive,
//! so scale counts stay identical — the same contract as the stride-16
//! module.
//!
//! Every `#[target_feature]` function is `unsafe fn`; the only caller is
//! [`super::backend::KernelBackend`], which checks
//! [`super::avx2::available`] before entering and degrades to the generic
//! unrolled kernels otherwise.

#![allow(unsafe_code)]

use super::Dims;
use crate::scaling::{LOG_MINLIKELIHOOD, MINLIKELIHOOD, TWOTOTHE256};
use core::arch::x86_64::*;
use phylo_models::PMatrices;

/// Floor for per-site likelihoods before taking logs (same as the scalar
/// evaluate kernel).
const L_FLOOR: f64 = 1e-300;

/// Horizontal max of the four lanes.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hmax(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let m = _mm_max_pd(lo, hi);
    let h = _mm_unpackhi_pd(m, m);
    _mm_cvtsd_f64(_mm_max_sd(m, h))
}

/// Horizontal sum of the four lanes.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let s = _mm_add_pd(lo, hi);
    let h = _mm_unpackhi_pd(s, s);
    _mm_cvtsd_f64(_mm_add_sd(s, h))
}

/// Lane-wise |x| (clear the sign bit).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn vabs(v: __m256d) -> __m256d {
    _mm256_and_pd(
        v,
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff)),
    )
}

/// Cold path: multiply the `stride` already-stored entries at `p` by 2²⁵⁶.
#[cold]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn rescale_stride(p: *mut f64, stride: usize) {
    let s = _mm256_set1_pd(TWOTOTHE256);
    let chunks = stride / 4 * 4;
    for e in (0..chunks).step_by(4) {
        let v = _mm256_loadu_pd(p.add(e));
        _mm256_storeu_pd(p.add(e), _mm256_mul_pd(v, s));
    }
    for e in chunks..stride {
        *p.add(e) *= TWOTOTHE256;
    }
}

/// One four-destination chunk of the mat-vec: `Σ_y col_y[x0..x0+4]·v[y]`
/// where `pt` is the transposed matrix (`P(x,y)` at `y·ns + x`).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matvec_chunk(pt: *const f64, v: *const f64, ns: usize, x0: usize) -> __m256d {
    let mut acc = _mm256_mul_pd(_mm256_loadu_pd(pt.add(x0)), _mm256_set1_pd(*v));
    for y in 1..ns {
        acc = _mm256_fmadd_pd(
            _mm256_loadu_pd(pt.add(y * ns + x0)),
            _mm256_set1_pd(*v.add(y)),
            acc,
        );
    }
    acc
}

/// The scalar tail of the mat-vec for destination state `x >= chunks`.
#[inline]
unsafe fn matvec_tail(pt: *const f64, v: *const f64, ns: usize, x: usize) -> f64 {
    let mut sum = 0.0;
    for y in 0..ns {
        sum += *pt.add(y * ns + x) * *v.add(y);
    }
    sum
}

/// Wide `newview` for two tip children (elementwise LUT product over the
/// whole site stride).
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see
/// [`super::avx2::available`]) and that the slices satisfy the scalar
/// kernel's length contracts.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn newview_tip_tip(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_l: &[f64],
    codes_l: &[u16],
    lut_r: &[f64],
    codes_r: &[u16],
) {
    let stride = dims.site_stride();
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(scale_p.len(), dims.n_patterns);
    debug_assert_eq!(lut_l.len() % stride, 0);
    debug_assert_eq!(lut_r.len() % stride, 0);
    let chunks = stride / 4 * 4;
    let lutl = lut_l.as_ptr();
    let lutr = lut_r.as_ptr();
    let out0 = parent.as_mut_ptr();
    for i in 0..dims.n_patterns {
        let l = lutl.add(codes_l[i] as usize * stride);
        let r = lutr.add(codes_r[i] as usize * stride);
        let out = out0.add(i * stride);
        let mut vmax = _mm256_setzero_pd();
        for e in (0..chunks).step_by(4) {
            let v = _mm256_mul_pd(_mm256_loadu_pd(l.add(e)), _mm256_loadu_pd(r.add(e)));
            _mm256_storeu_pd(out.add(e), v);
            vmax = _mm256_max_pd(vmax, vabs(v));
        }
        let mut tmax = hmax(vmax);
        for e in chunks..stride {
            let v = *l.add(e) * *r.add(e);
            *out.add(e) = v;
            tmax = tmax.max(v.abs());
        }
        scale_p[i] = if tmax < MINLIKELIHOOD {
            rescale_stride(out, stride);
            1
        } else {
            0
        };
    }
}

/// Wide `newview` for one tip and one inner child.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see
/// [`super::avx2::available`]) and that the slices satisfy the scalar
/// kernel's length contracts.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn newview_tip_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_tip: &[f64],
    codes_tip: &[u16],
    inner: &[f64],
    scale_inner: &[u32],
    pm_inner: &PMatrices,
) {
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(inner.len(), dims.width());
    debug_assert_eq!(lut_tip.len() % stride, 0);
    let xchunks = ns / 4 * 4;
    let lut = lut_tip.as_ptr();
    let child0 = inner.as_ptr();
    let out0 = parent.as_mut_ptr();
    for i in 0..dims.n_patterns {
        let tip = lut.add(codes_tip[i] as usize * stride);
        let child = child0.add(i * stride);
        let out = out0.add(i * stride);
        let mut vmax = _mm256_setzero_pd();
        let mut tmax = 0.0f64;
        for c in 0..nc {
            let pt = pm_inner.cat_t(c).as_ptr();
            let vc = child.add(c * ns);
            let tip_c = tip.add(c * ns);
            let out_c = out.add(c * ns);
            for x0 in (0..xchunks).step_by(4) {
                let sum = matvec_chunk(pt, vc, ns, x0);
                let v = _mm256_mul_pd(_mm256_loadu_pd(tip_c.add(x0)), sum);
                _mm256_storeu_pd(out_c.add(x0), v);
                vmax = _mm256_max_pd(vmax, vabs(v));
            }
            for x in xchunks..ns {
                let v = *tip_c.add(x) * matvec_tail(pt, vc, ns, x);
                *out_c.add(x) = v;
                tmax = tmax.max(v.abs());
            }
        }
        let scaled = if hmax(vmax).max(tmax) < MINLIKELIHOOD {
            rescale_stride(out, stride);
            1
        } else {
            0
        };
        scale_p[i] = scale_inner[i] + scaled;
    }
}

/// Wide `newview` for two inner children.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see
/// [`super::avx2::available`]) and that the slices satisfy the scalar
/// kernel's length contracts.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn newview_inner_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    left: &[f64],
    scale_l: &[u32],
    pm_l: &PMatrices,
    right: &[f64],
    scale_r: &[u32],
    pm_r: &PMatrices,
) {
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(left.len(), dims.width());
    debug_assert_eq!(right.len(), dims.width());
    let xchunks = ns / 4 * 4;
    let l0 = left.as_ptr();
    let r0 = right.as_ptr();
    let out0 = parent.as_mut_ptr();
    for i in 0..dims.n_patterns {
        let lsite = l0.add(i * stride);
        let rsite = r0.add(i * stride);
        let out = out0.add(i * stride);
        let mut vmax = _mm256_setzero_pd();
        let mut tmax = 0.0f64;
        for c in 0..nc {
            let ptl = pm_l.cat_t(c).as_ptr();
            let ptr_r = pm_r.cat_t(c).as_ptr();
            let lc = lsite.add(c * ns);
            let rc = rsite.add(c * ns);
            let out_c = out.add(c * ns);
            for x0 in (0..xchunks).step_by(4) {
                let suml = matvec_chunk(ptl, lc, ns, x0);
                let sumr = matvec_chunk(ptr_r, rc, ns, x0);
                let v = _mm256_mul_pd(suml, sumr);
                _mm256_storeu_pd(out_c.add(x0), v);
                vmax = _mm256_max_pd(vmax, vabs(v));
            }
            for x in xchunks..ns {
                let v = matvec_tail(ptl, lc, ns, x) * matvec_tail(ptr_r, rc, ns, x);
                *out_c.add(x) = v;
                tmax = tmax.max(v.abs());
            }
        }
        let scaled = if hmax(vmax).max(tmax) < MINLIKELIHOOD {
            rescale_stride(out, stride);
            1
        } else {
            0
        };
        scale_p[i] = scale_l[i] + scale_r[i] + scaled;
    }
}

/// Wide root evaluation for two inner vectors.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see
/// [`super::avx2::available`]) and that the slices satisfy the scalar
/// kernel's length contracts.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn evaluate_inner_inner_sites(
    dims: &Dims,
    pvec: &[f64],
    scale_p: &[u32],
    qvec: &[f64],
    scale_q: &[u32],
    pm_root: &PMatrices,
    freqs: &[f64],
    weights: &[u32],
    site_out: &mut [f64],
) {
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    debug_assert_eq!(pvec.len(), dims.width());
    debug_assert_eq!(qvec.len(), dims.width());
    debug_assert_eq!(freqs.len(), ns);
    let xchunks = ns / 4 * 4;
    let cat_w = 1.0 / nc as f64;
    let f0 = freqs.as_ptr();
    let p0 = pvec.as_ptr();
    let q0 = qvec.as_ptr();
    for i in 0..dims.n_patterns {
        let psite = p0.add(i * stride);
        let qsite = q0.add(i * stride);
        let mut site_l = 0.0;
        for c in 0..nc {
            let pt = pm_root.cat_t(c).as_ptr();
            let pc = psite.add(c * ns);
            let qc = qsite.add(c * ns);
            let mut vacc = _mm256_setzero_pd();
            for x0 in (0..xchunks).step_by(4) {
                let dot = matvec_chunk(pt, qc, ns, x0);
                let term = _mm256_mul_pd(
                    _mm256_mul_pd(_mm256_loadu_pd(f0.add(x0)), _mm256_loadu_pd(pc.add(x0))),
                    dot,
                );
                vacc = _mm256_add_pd(vacc, term);
            }
            let mut cat_sum = hsum(vacc);
            for x in xchunks..ns {
                cat_sum += *f0.add(x) * *pc.add(x) * matvec_tail(pt, qc, ns, x);
            }
            site_l += cat_w * cat_sum;
        }
        let scale = (scale_p[i] + scale_q[i]) as f64;
        site_out[i] = weights[i] as f64 * (site_l.max(L_FLOOR).ln() + scale * LOG_MINLIKELIHOOD);
    }
}

/// Wide root evaluation against a tip (flat root-LUT dot over the stride).
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see
/// [`super::avx2::available`]) and that the slices satisfy the scalar
/// kernel's length contracts.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn evaluate_tip_inner_sites(
    dims: &Dims,
    root_lut: &[f64],
    codes_tip: &[u16],
    qvec: &[f64],
    scale_q: &[u32],
    weights: &[u32],
    site_out: &mut [f64],
) {
    let stride = dims.site_stride();
    debug_assert_eq!(qvec.len(), dims.width());
    debug_assert_eq!(root_lut.len() % stride, 0);
    let chunks = stride / 4 * 4;
    let cat_w = 1.0 / dims.n_cats as f64;
    let lut0 = root_lut.as_ptr();
    let q0 = qvec.as_ptr();
    for i in 0..dims.n_patterns {
        let lut = lut0.add(codes_tip[i] as usize * stride);
        let qsite = q0.add(i * stride);
        let mut acc = _mm256_setzero_pd();
        for e in (0..chunks).step_by(4) {
            acc = _mm256_fmadd_pd(
                _mm256_loadu_pd(lut.add(e)),
                _mm256_loadu_pd(qsite.add(e)),
                acc,
            );
        }
        let mut site_l = hsum(acc);
        for e in chunks..stride {
            site_l += *lut.add(e) * *qsite.add(e);
        }
        site_l *= cat_w;
        site_out[i] =
            weights[i] as f64 * (site_l.max(L_FLOOR).ln() + scale_q[i] as f64 * LOG_MINLIKELIHOOD);
    }
}

/// Wide Newton-Raphson derivative site loop over a sumtable.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see
/// [`super::avx2::available`]) and that the slices satisfy the scalar
/// kernel's length contracts.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn nr_derivatives_sites(
    dims: &Dims,
    sumtable: &[f64],
    weights: &[u32],
    scale_sums: &[u32],
    eigenvalues: &[f64],
    rates: &[f64],
    z: f64,
    out_l: &mut [f64],
    out_d1: &mut [f64],
    out_d2: &mut [f64],
) {
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    debug_assert_eq!(sumtable.len(), dims.width());
    let chunks = stride / 4 * 4;
    let cat_w = 1.0 / nc as f64;
    let mut e0 = vec![0.0f64; stride];
    let mut e1 = vec![0.0f64; stride];
    let mut e2 = vec![0.0f64; stride];
    for c in 0..nc {
        for k in 0..ns {
            let lr = eigenvalues[k] * rates[c];
            let ex = (lr * z).exp();
            e0[c * ns + k] = ex;
            e1[c * ns + k] = lr * ex;
            e2[c * ns + k] = lr * lr * ex;
        }
    }
    let (p0, p1, p2) = (e0.as_ptr(), e1.as_ptr(), e2.as_ptr());
    let s0 = sumtable.as_ptr();
    for i in 0..dims.n_patterns {
        let site = s0.add(i * stride);
        let mut al = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        for e in (0..chunks).step_by(4) {
            let sv = _mm256_loadu_pd(site.add(e));
            al = _mm256_fmadd_pd(sv, _mm256_loadu_pd(p0.add(e)), al);
            a1 = _mm256_fmadd_pd(sv, _mm256_loadu_pd(p1.add(e)), a1);
            a2 = _mm256_fmadd_pd(sv, _mm256_loadu_pd(p2.add(e)), a2);
        }
        let mut l = hsum(al);
        let mut lp = hsum(a1);
        let mut lpp = hsum(a2);
        for e in chunks..stride {
            let sv = *site.add(e);
            l += sv * *p0.add(e);
            lp += sv * *p1.add(e);
            lpp += sv * *p2.add(e);
        }
        l *= cat_w;
        lp *= cat_w;
        lpp *= cat_w;
        let l_safe = l.max(L_FLOOR);
        let w = weights[i] as f64;
        out_l[i] = w * (l_safe.ln() + scale_sums[i] as f64 * LOG_MINLIKELIHOOD);
        out_d1[i] = w * (lp / l_safe);
        out_d2[i] = w * ((lpp * l_safe - lp * lp) / (l_safe * l_safe));
    }
}

#[cfg(test)]
mod tests {
    use super::super::avx2::available;
    use super::super::testutil::random_vector;
    use super::super::{derivatives, evaluate, newview};
    use super::*;
    use crate::encode::TipCodes;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_seq::{compress_patterns, Alignment, Alphabet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
    }

    fn model_for(ns: usize) -> ReversibleModel {
        match ns {
            20 => phylo_models::protein::synthetic_protein(13),
            61 => phylo_models::codon::synthetic_codon(13),
            _ => unreachable!(),
        }
    }

    #[test]
    fn newview_matches_scalar_at_protein_and_codon_widths() {
        if !available() {
            eprintln!("skipping: avx2+fma not available");
            return;
        }
        for ns in [20usize, 61] {
            for nc in [1usize, 4] {
                let dims = Dims {
                    n_patterns: 9,
                    n_states: ns,
                    n_cats: nc,
                };
                let model = model_for(ns);
                let gamma = if nc == 1 {
                    DiscreteGamma::none()
                } else {
                    DiscreteGamma::new(0.7, nc)
                };
                let eigen = model.eigen();
                let mut pm_l = phylo_models::PMatrices::new(ns, nc);
                let mut pm_r = phylo_models::PMatrices::new(ns, nc);
                pm_l.update(&eigen, &gamma, 0.13);
                pm_r.update(&eigen, &gamma, 0.37);
                let mut rng = StdRng::seed_from_u64(100 + ns as u64);
                for magnitude in [1.0, 1e-40] {
                    let left: Vec<f64> = random_vector(&dims, &mut rng)
                        .iter()
                        .map(|x| x * magnitude)
                        .collect();
                    let right: Vec<f64> = random_vector(&dims, &mut rng)
                        .iter()
                        .map(|x| x * magnitude)
                        .collect();
                    let sl = vec![1u32; dims.n_patterns];
                    let sr = vec![2u32; dims.n_patterns];
                    let mut p_s = vec![0.0; dims.width()];
                    let mut sc_s = vec![0u32; dims.n_patterns];
                    let mut p_v = vec![0.0; dims.width()];
                    let mut sc_v = vec![0u32; dims.n_patterns];
                    newview::newview_inner_inner(
                        &dims, &mut p_s, &mut sc_s, &left, &sl, &pm_l, &right, &sr, &pm_r,
                    );
                    unsafe {
                        newview_inner_inner(
                            &dims, &mut p_v, &mut sc_v, &left, &sl, &pm_l, &right, &sr, &pm_r,
                        );
                    }
                    assert!(
                        p_s.iter().zip(&p_v).all(|(a, b)| close(*a, *b)),
                        "ns={ns} nc={nc} mag={magnitude}"
                    );
                    assert_eq!(sc_s, sc_v, "scale counts ns={ns} nc={nc}");
                }
            }
        }
    }

    #[test]
    fn tip_kernels_and_evaluate_match_scalar_at_codon_width() {
        if !available() {
            eprintln!("skipping: avx2+fma not available");
            return;
        }
        let dna = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "ATGGCATTCAAAGGGCCTTGG".into()),
                ("b".into(), "ATGGCCTTTAAGGGACCATGG".into()),
            ],
        )
        .unwrap();
        let aln = dna.to_codons().unwrap();
        let comp = compress_patterns(&aln);
        let codes = TipCodes::from_alignment(&comp);
        let model = phylo_models::codon::synthetic_codon(5);
        let gamma = DiscreteGamma::new(0.8, 4);
        let eigen = model.eigen();
        let mut pm = phylo_models::PMatrices::new(61, 4);
        pm.update(&eigen, &gamma, 0.21);
        let dims = Dims {
            n_patterns: comp.n_patterns(),
            n_states: 61,
            n_cats: 4,
        };
        let (mut lut_l, mut lut_r) = (Vec::new(), Vec::new());
        codes.build_lut(&pm, &mut lut_l);
        codes.build_lut(&pm, &mut lut_r);
        let n = dims.n_patterns;
        let mut rng = StdRng::seed_from_u64(23);

        // tip/tip
        let mut p_s = vec![0.0; dims.width()];
        let mut sc_s = vec![0u32; n];
        let mut p_v = vec![0.0; dims.width()];
        let mut sc_v = vec![0u32; n];
        newview::newview_tip_tip(
            &dims,
            &mut p_s,
            &mut sc_s,
            &lut_l,
            codes.tip(0),
            &lut_r,
            codes.tip(1),
        );
        unsafe {
            newview_tip_tip(
                &dims,
                &mut p_v,
                &mut sc_v,
                &lut_l,
                codes.tip(0),
                &lut_r,
                codes.tip(1),
            );
        }
        assert!(p_s.iter().zip(&p_v).all(|(a, b)| close(*a, *b)));
        assert_eq!(sc_s, sc_v);

        // tip/inner
        let inner = random_vector(&dims, &mut rng);
        let sc_in = vec![1u32; n];
        newview::newview_tip_inner(
            &dims,
            &mut p_s,
            &mut sc_s,
            &lut_l,
            codes.tip(0),
            &inner,
            &sc_in,
            &pm,
        );
        unsafe {
            newview_tip_inner(
                &dims,
                &mut p_v,
                &mut sc_v,
                &lut_l,
                codes.tip(0),
                &inner,
                &sc_in,
                &pm,
            );
        }
        assert!(p_s.iter().zip(&p_v).all(|(a, b)| close(*a, *b)));
        assert_eq!(sc_s, sc_v);

        // evaluate inner/inner and tip/inner
        let q = random_vector(&dims, &mut rng);
        let scale_q = vec![0u32; n];
        let w = vec![2u32; n];
        let mut s_ref = vec![0.0; n];
        let mut s_got = vec![0.0; n];
        evaluate::evaluate_inner_inner_sites(
            &dims,
            &p_s,
            &sc_s,
            &q,
            &scale_q,
            &pm,
            model.freqs(),
            &w,
            &mut s_ref,
        );
        unsafe {
            evaluate_inner_inner_sites(
                &dims,
                &p_v,
                &sc_v,
                &q,
                &scale_q,
                &pm,
                model.freqs(),
                &w,
                &mut s_got,
            );
        }
        assert!(s_ref.iter().zip(&s_got).all(|(a, b)| close(*a, *b)));

        let mut rlut = Vec::new();
        codes.build_root_lut(&pm, model.freqs(), &mut rlut);
        evaluate::evaluate_tip_inner_sites(
            &dims,
            &rlut,
            codes.tip(0),
            &q,
            &scale_q,
            &w,
            &mut s_ref,
        );
        unsafe {
            evaluate_tip_inner_sites(&dims, &rlut, codes.tip(0), &q, &scale_q, &w, &mut s_got);
        }
        assert!(s_ref.iter().zip(&s_got).all(|(a, b)| close(*a, *b)));

        // NR derivatives
        let mut sumtable = Vec::new();
        derivatives::build_sumtable(
            &dims,
            derivatives::SumSide::Inner(&p_s),
            derivatives::SumSide::Inner(&q),
            &eigen,
            model.freqs(),
            &mut sumtable,
        );
        let ss = vec![1u32; n];
        let (mut l_a, mut d1_a, mut d2_a) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let (mut l_b, mut d1_b, mut d2_b) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        derivatives::nr_derivatives_sites(
            &dims,
            &sumtable,
            &w,
            &ss,
            eigen.values(),
            gamma.rates(),
            0.19,
            &mut l_a,
            &mut d1_a,
            &mut d2_a,
        );
        unsafe {
            nr_derivatives_sites(
                &dims,
                &sumtable,
                &w,
                &ss,
                eigen.values(),
                gamma.rates(),
                0.19,
                &mut l_b,
                &mut d1_b,
                &mut d2_b,
            );
        }
        for ((a, b), (c, d)) in l_a.iter().zip(&l_b).zip(d1_a.iter().zip(&d1_b)) {
            assert!(close(*a, *b));
            assert!(close(*c, *d));
        }
        assert!(d2_a.iter().zip(&d2_b).all(|(a, b)| close(*a, *b)));
    }
}
