//! Runtime-dispatched kernel backends.
//!
//! A [`KernelBackend`] is chosen **once** at engine construction —
//! [`KernelBackend::choose`] consults the `OOC_PLF_KERNEL` environment
//! variable, then CPU feature detection — and every kernel invocation
//! dispatches through it. Dispatch is a per-call (whole-vector, not
//! per-site) match, so its cost is noise.
//!
//! The selected backend is a *request*, not a guarantee: each dispatch
//! resolves it against the actual dimensions and (for AVX2) the actual CPU
//! via [`KernelBackend::effective`], degrading to the next backend down
//! whenever the specialization does not apply. Forcing `avx2` on a machine
//! without the features, or running a 20-state protein model under
//! `dna4`, is therefore safe — it silently runs the widest applicable
//! kernel rather than faulting or producing garbage. `avx2` covers every
//! shape (the stride-16 module for DNA/Γ4, the wide module for protein and
//! codon widths), and the bit-identical degradation floor for specialized
//! backends is `generic`, never plain `scalar`.

use super::{derivatives, dna4, evaluate, generic, newview, Dims};
use phylo_models::PMatrices;

#[cfg(target_arch = "x86_64")]
use super::{avx2, wide};

/// Environment variable overriding backend auto-detection
/// (`scalar` | `generic` | `dna4` | `avx2`; empty or unset means auto).
pub const KERNEL_ENV_VAR: &str = "OOC_PLF_KERNEL";

/// Which kernel implementation an engine executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Generic triple-loop kernels, any `n_states`/`n_cats`. The reference
    /// implementation every other backend is validated against.
    Scalar,
    /// Width-generic unrolled kernels (column accumulation over transposed
    /// matrices); any `n_states`/`n_cats`, bit-identical to `Scalar` (same
    /// floating-point evaluation order).
    GenericUnrolled,
    /// Fully unrolled DNA/Γ4 (stride-16) kernels; bit-identical to
    /// `Scalar` (same floating-point evaluation order).
    Dna4Unrolled,
    /// AVX2+FMA kernels over transposed transition matrices — the stride-16
    /// module for DNA/Γ4 shapes, the width-generic wide module for
    /// everything else (protein, codon). Last-ulp differences from FMA
    /// contraction, identical scale counts.
    Avx2Fma,
}

impl KernelBackend {
    /// All backends, in increasing specialization order.
    pub const ALL: [KernelBackend; 4] = [
        KernelBackend::Scalar,
        KernelBackend::GenericUnrolled,
        KernelBackend::Dna4Unrolled,
        KernelBackend::Avx2Fma,
    ];

    /// Canonical name, accepted by [`KernelBackend::from_name`] and
    /// `OOC_PLF_KERNEL`.
    pub fn name(&self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::GenericUnrolled => "generic",
            KernelBackend::Dna4Unrolled => "dna4",
            KernelBackend::Avx2Fma => "avx2",
        }
    }

    /// Parse a backend name (case-insensitive; a few aliases accepted).
    pub fn from_name(s: &str) -> Option<KernelBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "generic" | "genericunrolled" | "generic-unrolled" => {
                Some(KernelBackend::GenericUnrolled)
            }
            "dna4" | "dna4unrolled" | "dna4-unrolled" | "unrolled" => {
                Some(KernelBackend::Dna4Unrolled)
            }
            "avx2" | "avx2fma" | "avx2-fma" | "simd" => Some(KernelBackend::Avx2Fma),
            _ => None,
        }
    }

    /// Read the `OOC_PLF_KERNEL` override. Unset or empty means "no
    /// override"; anything unparsable is an error naming the valid values.
    pub fn from_env() -> Result<Option<KernelBackend>, String> {
        match std::env::var(KERNEL_ENV_VAR) {
            Err(_) => Ok(None),
            Ok(s) if s.trim().is_empty() => Ok(None),
            Ok(s) => KernelBackend::from_name(&s).map(Some).ok_or_else(|| {
                format!(
                    "invalid {KERNEL_ENV_VAR}={s:?}: expected one of \
                     scalar | generic | dna4 | avx2"
                )
            }),
        }
    }

    /// The best backend this machine supports: AVX2+FMA when the CPU has
    /// it, otherwise the unrolled kernels (which degrade per-dispatch to
    /// scalar for non-DNA dimensions).
    pub fn detect() -> KernelBackend {
        #[cfg(target_arch = "x86_64")]
        if avx2::available() {
            return KernelBackend::Avx2Fma;
        }
        KernelBackend::Dna4Unrolled
    }

    /// The construction-time selection: the `OOC_PLF_KERNEL` override if
    /// set (panicking on an unparsable value — a misconfiguration worth
    /// failing loudly on), else [`KernelBackend::detect`].
    pub fn choose() -> KernelBackend {
        match KernelBackend::from_env() {
            Ok(Some(b)) => b,
            Ok(None) => KernelBackend::detect(),
            Err(e) => panic!("{e}"),
        }
    }

    /// Can this backend's specialized kernels run these dimensions (on
    /// this machine)? `Scalar` and `GenericUnrolled` always can; `Avx2Fma`
    /// runs *any* dimensions (stride-16 or wide module) when the CPU has
    /// the features.
    pub fn supports(&self, dims: &Dims) -> bool {
        match self {
            KernelBackend::Scalar | KernelBackend::GenericUnrolled => true,
            KernelBackend::Dna4Unrolled => dna4::dims_match(dims),
            KernelBackend::Avx2Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    let _ = dims;
                    avx2::available()
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    let _ = dims;
                    false
                }
            }
        }
    }

    /// Resolve the requested backend against dimensions and CPU: the
    /// backend whose kernels will actually execute. The degradation chain
    /// is `avx2 → dna4 → generic` — never scalar, because the generic
    /// unrolled kernels run any dimensions bit-identically to scalar.
    pub fn effective(&self, dims: &Dims) -> KernelBackend {
        match self {
            KernelBackend::Scalar => KernelBackend::Scalar,
            KernelBackend::GenericUnrolled => KernelBackend::GenericUnrolled,
            KernelBackend::Dna4Unrolled if dna4::dims_match(dims) => KernelBackend::Dna4Unrolled,
            KernelBackend::Dna4Unrolled => KernelBackend::GenericUnrolled,
            KernelBackend::Avx2Fma if self.supports(dims) => KernelBackend::Avx2Fma,
            KernelBackend::Avx2Fma if dna4::dims_match(dims) => KernelBackend::Dna4Unrolled,
            KernelBackend::Avx2Fma => KernelBackend::GenericUnrolled,
        }
    }

    /// Dispatch [`newview::newview_tip_tip`].
    #[allow(clippy::too_many_arguments)]
    pub fn newview_tip_tip(
        &self,
        dims: &Dims,
        parent: &mut [f64],
        scale_p: &mut [u32],
        lut_l: &[f64],
        codes_l: &[u16],
        lut_r: &[f64],
        codes_r: &[u16],
    ) {
        match self.effective(dims) {
            KernelBackend::Scalar => {
                newview::newview_tip_tip(dims, parent, scale_p, lut_l, codes_l, lut_r, codes_r)
            }
            KernelBackend::GenericUnrolled => {
                generic::newview_tip_tip(dims, parent, scale_p, lut_l, codes_l, lut_r, codes_r)
            }
            KernelBackend::Dna4Unrolled => {
                dna4::newview_tip_tip(dims, parent, scale_p, lut_l, codes_l, lut_r, codes_r)
            }
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective` returned Avx2Fma only after
            // `avx2::available()` confirmed the CPU features.
            KernelBackend::Avx2Fma if dna4::dims_match(dims) => unsafe {
                avx2::newview_tip_tip(dims, parent, scale_p, lut_l, codes_l, lut_r, codes_r)
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above; the wide module handles non-DNA/Γ4 dims.
            KernelBackend::Avx2Fma => unsafe {
                wide::newview_tip_tip(dims, parent, scale_p, lut_l, codes_l, lut_r, codes_r)
            },
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Avx2Fma => unreachable!("effective() gates Avx2Fma on x86_64"),
        }
    }

    /// Dispatch [`newview::newview_tip_inner`].
    #[allow(clippy::too_many_arguments)]
    pub fn newview_tip_inner(
        &self,
        dims: &Dims,
        parent: &mut [f64],
        scale_p: &mut [u32],
        lut_tip: &[f64],
        codes_tip: &[u16],
        inner: &[f64],
        scale_inner: &[u32],
        pm_inner: &PMatrices,
    ) {
        match self.effective(dims) {
            KernelBackend::Scalar => newview::newview_tip_inner(
                dims,
                parent,
                scale_p,
                lut_tip,
                codes_tip,
                inner,
                scale_inner,
                pm_inner,
            ),
            KernelBackend::GenericUnrolled => generic::newview_tip_inner(
                dims,
                parent,
                scale_p,
                lut_tip,
                codes_tip,
                inner,
                scale_inner,
                pm_inner,
            ),
            KernelBackend::Dna4Unrolled => dna4::newview_tip_inner(
                dims,
                parent,
                scale_p,
                lut_tip,
                codes_tip,
                inner,
                scale_inner,
                pm_inner,
            ),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective` returned Avx2Fma only after
            // `avx2::available()` confirmed the CPU features.
            KernelBackend::Avx2Fma if dna4::dims_match(dims) => unsafe {
                avx2::newview_tip_inner(
                    dims,
                    parent,
                    scale_p,
                    lut_tip,
                    codes_tip,
                    inner,
                    scale_inner,
                    pm_inner,
                )
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above; the wide module handles non-DNA/Γ4 dims.
            KernelBackend::Avx2Fma => unsafe {
                wide::newview_tip_inner(
                    dims,
                    parent,
                    scale_p,
                    lut_tip,
                    codes_tip,
                    inner,
                    scale_inner,
                    pm_inner,
                )
            },
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Avx2Fma => unreachable!("effective() gates Avx2Fma on x86_64"),
        }
    }

    /// Dispatch [`newview::newview_inner_inner`].
    #[allow(clippy::too_many_arguments)]
    pub fn newview_inner_inner(
        &self,
        dims: &Dims,
        parent: &mut [f64],
        scale_p: &mut [u32],
        left: &[f64],
        scale_l: &[u32],
        pm_l: &PMatrices,
        right: &[f64],
        scale_r: &[u32],
        pm_r: &PMatrices,
    ) {
        match self.effective(dims) {
            KernelBackend::Scalar => newview::newview_inner_inner(
                dims, parent, scale_p, left, scale_l, pm_l, right, scale_r, pm_r,
            ),
            KernelBackend::GenericUnrolled => generic::newview_inner_inner(
                dims, parent, scale_p, left, scale_l, pm_l, right, scale_r, pm_r,
            ),
            KernelBackend::Dna4Unrolled => dna4::newview_inner_inner(
                dims, parent, scale_p, left, scale_l, pm_l, right, scale_r, pm_r,
            ),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective` returned Avx2Fma only after
            // `avx2::available()` confirmed the CPU features.
            KernelBackend::Avx2Fma if dna4::dims_match(dims) => unsafe {
                avx2::newview_inner_inner(
                    dims, parent, scale_p, left, scale_l, pm_l, right, scale_r, pm_r,
                )
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above; the wide module handles non-DNA/Γ4 dims.
            KernelBackend::Avx2Fma => unsafe {
                wide::newview_inner_inner(
                    dims, parent, scale_p, left, scale_l, pm_l, right, scale_r, pm_r,
                )
            },
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Avx2Fma => unreachable!("effective() gates Avx2Fma on x86_64"),
        }
    }

    /// Dispatch [`evaluate::evaluate_inner_inner_sites`].
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_inner_inner_sites(
        &self,
        dims: &Dims,
        pvec: &[f64],
        scale_p: &[u32],
        qvec: &[f64],
        scale_q: &[u32],
        pm_root: &PMatrices,
        freqs: &[f64],
        weights: &[u32],
        site_out: &mut [f64],
    ) {
        match self.effective(dims) {
            KernelBackend::Scalar => evaluate::evaluate_inner_inner_sites(
                dims, pvec, scale_p, qvec, scale_q, pm_root, freqs, weights, site_out,
            ),
            KernelBackend::GenericUnrolled => generic::evaluate_inner_inner_sites(
                dims, pvec, scale_p, qvec, scale_q, pm_root, freqs, weights, site_out,
            ),
            KernelBackend::Dna4Unrolled => dna4::evaluate_inner_inner_sites(
                dims, pvec, scale_p, qvec, scale_q, pm_root, freqs, weights, site_out,
            ),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective` returned Avx2Fma only after
            // `avx2::available()` confirmed the CPU features.
            KernelBackend::Avx2Fma if dna4::dims_match(dims) => unsafe {
                avx2::evaluate_inner_inner_sites(
                    dims, pvec, scale_p, qvec, scale_q, pm_root, freqs, weights, site_out,
                )
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above; the wide module handles non-DNA/Γ4 dims.
            KernelBackend::Avx2Fma => unsafe {
                wide::evaluate_inner_inner_sites(
                    dims, pvec, scale_p, qvec, scale_q, pm_root, freqs, weights, site_out,
                )
            },
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Avx2Fma => unreachable!("effective() gates Avx2Fma on x86_64"),
        }
    }

    /// Dispatch [`evaluate::evaluate_tip_inner_sites`].
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_tip_inner_sites(
        &self,
        dims: &Dims,
        root_lut: &[f64],
        codes_tip: &[u16],
        qvec: &[f64],
        scale_q: &[u32],
        weights: &[u32],
        site_out: &mut [f64],
    ) {
        match self.effective(dims) {
            KernelBackend::Scalar => evaluate::evaluate_tip_inner_sites(
                dims, root_lut, codes_tip, qvec, scale_q, weights, site_out,
            ),
            KernelBackend::GenericUnrolled => generic::evaluate_tip_inner_sites(
                dims, root_lut, codes_tip, qvec, scale_q, weights, site_out,
            ),
            KernelBackend::Dna4Unrolled => dna4::evaluate_tip_inner_sites(
                dims, root_lut, codes_tip, qvec, scale_q, weights, site_out,
            ),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective` returned Avx2Fma only after
            // `avx2::available()` confirmed the CPU features.
            KernelBackend::Avx2Fma if dna4::dims_match(dims) => unsafe {
                avx2::evaluate_tip_inner_sites(
                    dims, root_lut, codes_tip, qvec, scale_q, weights, site_out,
                )
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above; the wide module handles non-DNA/Γ4 dims.
            KernelBackend::Avx2Fma => unsafe {
                wide::evaluate_tip_inner_sites(
                    dims, root_lut, codes_tip, qvec, scale_q, weights, site_out,
                )
            },
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Avx2Fma => unreachable!("effective() gates Avx2Fma on x86_64"),
        }
    }

    /// Dispatch [`derivatives::nr_derivatives_sites`].
    #[allow(clippy::too_many_arguments)]
    pub fn nr_derivatives_sites(
        &self,
        dims: &Dims,
        sumtable: &[f64],
        weights: &[u32],
        scale_sums: &[u32],
        eigenvalues: &[f64],
        rates: &[f64],
        z: f64,
        out_l: &mut [f64],
        out_d1: &mut [f64],
        out_d2: &mut [f64],
    ) {
        match self.effective(dims) {
            KernelBackend::Scalar => derivatives::nr_derivatives_sites(
                dims,
                sumtable,
                weights,
                scale_sums,
                eigenvalues,
                rates,
                z,
                out_l,
                out_d1,
                out_d2,
            ),
            KernelBackend::GenericUnrolled => generic::nr_derivatives_sites(
                dims,
                sumtable,
                weights,
                scale_sums,
                eigenvalues,
                rates,
                z,
                out_l,
                out_d1,
                out_d2,
            ),
            KernelBackend::Dna4Unrolled => dna4::nr_derivatives_sites(
                dims,
                sumtable,
                weights,
                scale_sums,
                eigenvalues,
                rates,
                z,
                out_l,
                out_d1,
                out_d2,
            ),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective` returned Avx2Fma only after
            // `avx2::available()` confirmed the CPU features.
            KernelBackend::Avx2Fma if dna4::dims_match(dims) => unsafe {
                avx2::nr_derivatives_sites(
                    dims,
                    sumtable,
                    weights,
                    scale_sums,
                    eigenvalues,
                    rates,
                    z,
                    out_l,
                    out_d1,
                    out_d2,
                )
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above; the wide module handles non-DNA/Γ4 dims.
            KernelBackend::Avx2Fma => unsafe {
                wide::nr_derivatives_sites(
                    dims,
                    sumtable,
                    weights,
                    scale_sums,
                    eigenvalues,
                    rates,
                    z,
                    out_l,
                    out_d1,
                    out_d2,
                )
            },
            #[cfg(not(target_arch = "x86_64"))]
            KernelBackend::Avx2Fma => unreachable!("effective() gates Avx2Fma on x86_64"),
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for KernelBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        KernelBackend::from_name(s)
            .ok_or_else(|| format!("unknown kernel backend {s:?}: expected scalar | dna4 | avx2"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna_dims() -> Dims {
        Dims {
            n_patterns: 8,
            n_states: 4,
            n_cats: 4,
        }
    }

    fn protein_dims() -> Dims {
        Dims {
            n_patterns: 8,
            n_states: 20,
            n_cats: 4,
        }
    }

    #[test]
    fn names_round_trip() {
        for b in KernelBackend::ALL {
            assert_eq!(KernelBackend::from_name(b.name()), Some(b));
            assert_eq!(b.name().parse::<KernelBackend>().unwrap(), b);
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(
            KernelBackend::from_name("AVX2-FMA"),
            Some(KernelBackend::Avx2Fma)
        );
        assert!(KernelBackend::from_name("sse9").is_none());
        assert!("sse9".parse::<KernelBackend>().is_err());
    }

    #[test]
    fn scalar_supports_everything() {
        assert!(KernelBackend::Scalar.supports(&dna_dims()));
        assert!(KernelBackend::Scalar.supports(&protein_dims()));
    }

    #[test]
    fn specialized_backends_degrade_on_protein_dims() {
        // Protein is no longer scalar-only: dna4 degrades to the generic
        // unrolled kernels, and avx2 runs its wide module when the CPU has
        // the features (degrading to generic otherwise).
        let d = protein_dims();
        assert!(!KernelBackend::Dna4Unrolled.supports(&d));
        assert_eq!(
            KernelBackend::Dna4Unrolled.effective(&d),
            KernelBackend::GenericUnrolled
        );
        assert!(KernelBackend::GenericUnrolled.supports(&d));
        let eff = KernelBackend::Avx2Fma.effective(&d);
        if KernelBackend::Avx2Fma.supports(&d) {
            assert_eq!(eff, KernelBackend::Avx2Fma);
        } else {
            assert_eq!(eff, KernelBackend::GenericUnrolled);
        }
    }

    #[test]
    fn dna_dims_resolve_to_requested_backend() {
        let d = dna_dims();
        assert_eq!(
            KernelBackend::Dna4Unrolled.effective(&d),
            KernelBackend::Dna4Unrolled
        );
        // Avx2Fma resolves to itself iff the CPU has the features,
        // otherwise to the unrolled kernels — never to garbage.
        let eff = KernelBackend::Avx2Fma.effective(&d);
        if KernelBackend::Avx2Fma.supports(&d) {
            assert_eq!(eff, KernelBackend::Avx2Fma);
        } else {
            assert_eq!(eff, KernelBackend::Dna4Unrolled);
        }
    }

    #[test]
    fn detect_returns_a_supported_backend() {
        let b = KernelBackend::detect();
        assert!(b == KernelBackend::Avx2Fma || b == KernelBackend::Dna4Unrolled);
        if b == KernelBackend::Avx2Fma {
            assert!(b.supports(&dna_dims()));
        }
    }

    #[test]
    fn dispatch_runs_for_every_backend_and_dims() {
        // Smoke: dispatch through each backend on both dims; the
        // correctness of each specialized kernel is covered in its module.
        use crate::kernels::testutil::random_vector;
        use phylo_models::{DiscreteGamma, PMatrices, ReversibleModel};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = ReversibleModel::jc69();
        let gamma = DiscreteGamma::new(1.0, 4);
        let mut pm = PMatrices::new(4, 4);
        pm.update(&model.eigen(), &gamma, 0.1);
        let d = dna_dims();
        let mut rng = StdRng::seed_from_u64(3);
        let left = random_vector(&d, &mut rng);
        let right = random_vector(&d, &mut rng);
        let zeros = vec![0u32; d.n_patterns];
        let mut reference: Option<Vec<f64>> = None;
        for b in KernelBackend::ALL {
            let mut parent = vec![0.0; d.width()];
            let mut scale = vec![0u32; d.n_patterns];
            b.newview_inner_inner(
                &d,
                &mut parent,
                &mut scale,
                &left,
                &zeros,
                &pm,
                &right,
                &zeros,
                &pm,
            );
            assert!(scale.iter().all(|&s| s == 0));
            match &reference {
                None => reference = Some(parent),
                Some(r) => {
                    for (a, b) in r.iter().zip(&parent) {
                        assert!((a - b).abs() <= 1e-13 * a.abs().max(1.0));
                    }
                }
            }
        }
    }

    #[test]
    fn dispatch_agrees_across_backends_on_protein_dims() {
        use crate::kernels::testutil::random_vector;
        use phylo_models::{DiscreteGamma, PMatrices};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let model = phylo_models::protein::synthetic_protein(3);
        let gamma = DiscreteGamma::new(0.9, 4);
        let mut pm = PMatrices::new(20, 4);
        pm.update(&model.eigen(), &gamma, 0.2);
        let d = protein_dims();
        let mut rng = StdRng::seed_from_u64(17);
        let left = random_vector(&d, &mut rng);
        let right = random_vector(&d, &mut rng);
        let zeros = vec![0u32; d.n_patterns];
        let mut reference: Option<Vec<f64>> = None;
        for b in KernelBackend::ALL {
            let mut parent = vec![0.0; d.width()];
            let mut scale = vec![0u32; d.n_patterns];
            b.newview_inner_inner(
                &d,
                &mut parent,
                &mut scale,
                &left,
                &zeros,
                &pm,
                &right,
                &zeros,
                &pm,
            );
            assert!(scale.iter().all(|&s| s == 0));
            match &reference {
                None => reference = Some(parent),
                Some(r) => {
                    for (a, b) in r.iter().zip(&parent) {
                        assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
                    }
                }
            }
        }
        // Scalar and generic are exactly equal, not merely close.
        let mut p_s = vec![0.0; d.width()];
        let mut p_g = vec![0.0; d.width()];
        let mut sc = vec![0u32; d.n_patterns];
        KernelBackend::Scalar.newview_inner_inner(
            &d, &mut p_s, &mut sc, &left, &zeros, &pm, &right, &zeros, &pm,
        );
        KernelBackend::GenericUnrolled.newview_inner_inner(
            &d, &mut p_g, &mut sc, &left, &zeros, &pm, &right, &zeros, &pm,
        );
        assert_eq!(p_s, p_g);
    }
}
