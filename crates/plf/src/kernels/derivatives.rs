//! Branch-length derivatives via eigenbasis sumtables.
//!
//! For a branch of length `z` between subtree likelihood vectors `L` and
//! `R`, the per-site likelihood is
//!
//! ```text
//! l(z) = (1/C) Σ_c Σ_x π_x L[c,x] Σ_y P_c(x,y;z) R[c,y]
//!      = (1/C) Σ_c Σ_k exp(λ_k r_c z) · sum[c,k]
//! with   sum[c,k] = (Σ_x π_x L[c,x] V[x,k]) · (Σ_y V⁻¹[k,y] R[c,y]),
//! ```
//!
//! so after building `sum` once, `l`, `dl/dz` and `d²l/dz²` cost only a few
//! exponentials per Newton iteration — the structure of RAxML's
//! `makenewz`. The paper highlights this phase (§4.2): Newton iterations
//! touch only the two vectors at the ends of one branch, accounting for
//! 20–30 % of runtime and a large share of the access locality the
//! out-of-core layer exploits.

use super::Dims;
use crate::scaling::LOG_MINLIKELIHOOD;
use phylo_models::EigenDecomp;

/// One side of a branch for sumtable construction: an ancestral vector or a
/// tip with a pre-projected lookup table (layout `[code][cat][k]`).
pub enum SumSide<'a> {
    /// Inner node: raw ancestral vector `[pattern][cat][state]`.
    Inner(&'a [f64]),
    /// Tip: eigen-projected lookup table and per-pattern code ids.
    Tip {
        /// Pre-projected table (π·V for the left side, V⁻¹ for the right).
        lut: &'a [f64],
        /// Code id per pattern.
        codes: &'a [u16],
    },
}

/// Build the sumtable (layout `[pattern][cat][k]`) for a branch. `left`
/// carries the π·V projection, `right` the V⁻¹ projection.
pub fn build_sumtable(
    dims: &Dims,
    left: SumSide<'_>,
    right: SumSide<'_>,
    eigen: &EigenDecomp,
    freqs: &[f64],
    out: &mut Vec<f64>,
) {
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    out.clear();
    out.resize(dims.width(), 0.0);
    let v = eigen.v();
    let v_inv = eigen.v_inv();

    let mut tl = vec![0.0; stride];
    let mut tr = vec![0.0; stride];
    for i in 0..dims.n_patterns {
        // Left projection: tl[c,k] = Σ_x π_x L[c,x] V[x,k].
        match &left {
            SumSide::Inner(vec) => {
                let site = &vec[i * stride..(i + 1) * stride];
                for c in 0..nc {
                    for k in 0..ns {
                        let mut sum = 0.0;
                        for x in 0..ns {
                            sum += freqs[x] * site[c * ns + x] * v[x * ns + k];
                        }
                        tl[c * ns + k] = sum;
                    }
                }
            }
            SumSide::Tip { lut, codes } => {
                let base = codes[i] as usize * stride;
                tl.copy_from_slice(&lut[base..base + stride]);
            }
        }
        // Right projection: tr[c,k] = Σ_y V⁻¹[k,y] R[c,y].
        match &right {
            SumSide::Inner(vec) => {
                let site = &vec[i * stride..(i + 1) * stride];
                for c in 0..nc {
                    for k in 0..ns {
                        let mut sum = 0.0;
                        for y in 0..ns {
                            sum += v_inv[k * ns + y] * site[c * ns + y];
                        }
                        tr[c * ns + k] = sum;
                    }
                }
            }
            SumSide::Tip { lut, codes } => {
                let base = codes[i] as usize * stride;
                tr.copy_from_slice(&lut[base..base + stride]);
            }
        }
        let site_out = &mut out[i * stride..(i + 1) * stride];
        for e in 0..stride {
            site_out[e] = tl[e] * tr[e];
        }
    }
}

/// Per-pattern variant of [`nr_derivatives`]: write pattern `i`'s weighted
/// contributions to `lnL`, `d lnL/dz` and `d² lnL/dz²` into `out_l[i]`,
/// `out_d1[i]`, `out_d2[i]`. The three accumulators of the scalar version
/// are independent left-to-right sums over patterns, so folding these
/// buffers in pattern order (and, for a sharded run, in shard order)
/// reproduces the scalar results bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn nr_derivatives_sites(
    dims: &Dims,
    sumtable: &[f64],
    weights: &[u32],
    scale_sums: &[u32],
    eigenvalues: &[f64],
    rates: &[f64],
    z: f64,
    out_l: &mut [f64],
    out_d1: &mut [f64],
    out_d2: &mut [f64],
) {
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    let cat_w = 1.0 / nc as f64;

    // Per (cat, k): e = exp(λ_k r_c z), plus λ r and (λ r)² factors.
    let mut e0 = vec![0.0; stride];
    let mut e1 = vec![0.0; stride];
    let mut e2 = vec![0.0; stride];
    for c in 0..nc {
        for k in 0..ns {
            let lr = eigenvalues[k] * rates[c];
            let ex = (lr * z).exp();
            e0[c * ns + k] = ex;
            e1[c * ns + k] = lr * ex;
            e2[c * ns + k] = lr * lr * ex;
        }
    }

    let floor = 1e-300;
    for i in 0..dims.n_patterns {
        let site = &sumtable[i * stride..(i + 1) * stride];
        let (mut l, mut lp, mut lpp) = (0.0, 0.0, 0.0);
        for e in 0..stride {
            l += site[e] * e0[e];
            lp += site[e] * e1[e];
            lpp += site[e] * e2[e];
        }
        l *= cat_w;
        lp *= cat_w;
        lpp *= cat_w;
        let l_safe = l.max(floor);
        let w = weights[i] as f64;
        out_l[i] = w * (l_safe.ln() + scale_sums[i] as f64 * LOG_MINLIKELIHOOD);
        out_d1[i] = w * (lp / l_safe);
        out_d2[i] = w * ((lpp * l_safe - lp * lp) / (l_safe * l_safe));
    }
}

/// Evaluate `(lnL, d lnL/dz, d² lnL/dz²)` at branch length `z` from a
/// sumtable. `scale_sums[i]` is the combined scaling count of both sides
/// for pattern `i` (constant in `z`, so it shifts `lnL` but not the
/// derivatives).
pub fn nr_derivatives(
    dims: &Dims,
    sumtable: &[f64],
    weights: &[u32],
    scale_sums: &[u32],
    eigenvalues: &[f64],
    rates: &[f64],
    z: f64,
) -> (f64, f64, f64) {
    let n = dims.n_patterns;
    let mut out_l = vec![0.0; n];
    let mut out_d1 = vec![0.0; n];
    let mut out_d2 = vec![0.0; n];
    nr_derivatives_sites(
        dims,
        sumtable,
        weights,
        scale_sums,
        eigenvalues,
        rates,
        z,
        &mut out_l,
        &mut out_d1,
        &mut out_d2,
    );
    let fold = |b: &[f64]| b.iter().fold(0.0, |acc, &t| acc + t);
    (fold(&out_l), fold(&out_d1), fold(&out_d2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::evaluate::evaluate_inner_inner;
    use phylo_models::{DiscreteGamma, PMatrices, ReversibleModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Dims, ReversibleModel, DiscreteGamma) {
        (
            Dims {
                n_patterns: 9,
                n_states: 4,
                n_cats: 4,
            },
            ReversibleModel::gtr(&[1.3, 2.8, 0.7, 1.1, 3.5, 1.0], &[0.31, 0.19, 0.23, 0.27]),
            DiscreteGamma::new(0.6, 4),
        )
    }

    #[test]
    fn sumtable_lnl_matches_direct_evaluation() {
        let (dims, model, gamma) = setup();
        let eigen = model.eigen();
        let mut rng = StdRng::seed_from_u64(21);
        let p = super::super::testutil::random_vector(&dims, &mut rng);
        let q = super::super::testutil::random_vector(&dims, &mut rng);
        let scale_p = vec![1u32; dims.n_patterns];
        let scale_q = vec![2u32; dims.n_patterns];
        let weights = vec![3u32; dims.n_patterns];
        let z = 0.23;

        let mut pm = PMatrices::new(4, 4);
        pm.update(&eigen, &gamma, z);
        let direct = evaluate_inner_inner(
            &dims,
            &p,
            &scale_p,
            &q,
            &scale_q,
            &pm,
            model.freqs(),
            &weights,
        );

        let mut sumtable = Vec::new();
        build_sumtable(
            &dims,
            SumSide::Inner(&p),
            SumSide::Inner(&q),
            &eigen,
            model.freqs(),
            &mut sumtable,
        );
        let scale_sums: Vec<u32> = scale_p
            .iter()
            .zip(scale_q.iter())
            .map(|(a, b)| a + b)
            .collect();
        let (lnl, _, _) = nr_derivatives(
            &dims,
            &sumtable,
            &weights,
            &scale_sums,
            eigen.values(),
            gamma.rates(),
            z,
        );
        assert!((lnl - direct).abs() < 1e-8, "{lnl} vs {direct}");
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let (dims, model, gamma) = setup();
        let eigen = model.eigen();
        let mut rng = StdRng::seed_from_u64(22);
        let p = super::super::testutil::random_vector(&dims, &mut rng);
        let q = super::super::testutil::random_vector(&dims, &mut rng);
        let weights = vec![1u32; dims.n_patterns];
        let scale_sums = vec![0u32; dims.n_patterns];
        let mut sumtable = Vec::new();
        build_sumtable(
            &dims,
            SumSide::Inner(&p),
            SumSide::Inner(&q),
            &eigen,
            model.freqs(),
            &mut sumtable,
        );
        let eval = |z: f64| {
            nr_derivatives(
                &dims,
                &sumtable,
                &weights,
                &scale_sums,
                eigen.values(),
                gamma.rates(),
                z,
            )
        };
        let z = 0.4;
        let h = 1e-6;
        let (_, d1, d2) = eval(z);
        let (lp, _, _) = eval(z + h);
        let (lm, _, _) = eval(z - h);
        let (l0, _, _) = eval(z);
        let fd1 = (lp - lm) / (2.0 * h);
        let fd2 = (lp - 2.0 * l0 + lm) / (h * h);
        assert!((d1 - fd1).abs() < 1e-4, "{d1} vs {fd1}");
        assert!((d2 - fd2).abs() < 1e-2, "{d2} vs {fd2}");
    }

    #[test]
    fn tip_sides_match_explicit_indicator_vectors() {
        use crate::encode::TipCodes;
        use phylo_seq::{compress_patterns, Alignment, Alphabet};
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[("a".into(), "ACGTNA".into()), ("b".into(), "CCGTAA".into())],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let codes = TipCodes::from_alignment(&comp);
        let dims = Dims {
            n_patterns: comp.n_patterns(),
            n_states: 4,
            n_cats: 4,
        };
        let (_, model, gamma) = setup();
        let eigen = model.eigen();
        let mut rng = StdRng::seed_from_u64(23);
        let q = super::super::testutil::random_vector(&dims, &mut rng);

        // Tip side via eigen lut.
        let mut lut = Vec::new();
        codes.build_eigen_lut(&eigen, &gamma, model.freqs(), &mut lut);
        let mut st_tip = Vec::new();
        build_sumtable(
            &dims,
            SumSide::Tip {
                lut: &lut,
                codes: codes.tip(0),
            },
            SumSide::Inner(&q),
            &eigen,
            model.freqs(),
            &mut st_tip,
        );

        // Same tip expanded to an explicit 0/1 conditional vector.
        let mut tipvec = vec![0.0; dims.width()];
        for i in 0..dims.n_patterns {
            let mask = codes.mask(codes.tip(0)[i]);
            for c in 0..4 {
                for x in 0..4 {
                    if mask >> x & 1 == 1 {
                        tipvec[(i * 4 + c) * 4 + x] = 1.0;
                    }
                }
            }
        }
        let mut st_explicit = Vec::new();
        build_sumtable(
            &dims,
            SumSide::Inner(&tipvec),
            SumSide::Inner(&q),
            &eigen,
            model.freqs(),
            &mut st_explicit,
        );
        for (a, b) in st_tip.iter().zip(st_explicit.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn right_tip_lut_matches_explicit() {
        use crate::encode::TipCodes;
        use phylo_seq::{compress_patterns, Alignment, Alphabet};
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[("a".into(), "AC".into()), ("b".into(), "GT".into())],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let codes = TipCodes::from_alignment(&comp);
        let dims = Dims {
            n_patterns: comp.n_patterns(),
            n_states: 4,
            n_cats: 2,
        };
        let model = ReversibleModel::jc69();
        let gamma = DiscreteGamma::new(1.0, 2);
        let eigen = model.eigen();
        let mut rng = StdRng::seed_from_u64(29);
        let p = super::super::testutil::random_vector(&dims, &mut rng);

        let mut rlut = Vec::new();
        codes.build_eigen_lut_right(&eigen, &gamma, &mut rlut);
        let mut st_tip = Vec::new();
        build_sumtable(
            &dims,
            SumSide::Inner(&p),
            SumSide::Tip {
                lut: &rlut,
                codes: codes.tip(1),
            },
            &eigen,
            model.freqs(),
            &mut st_tip,
        );

        let mut tipvec = vec![0.0; dims.width()];
        for i in 0..dims.n_patterns {
            let mask = codes.mask(codes.tip(1)[i]);
            for c in 0..2 {
                for y in 0..4 {
                    if mask >> y & 1 == 1 {
                        tipvec[(i * 2 + c) * 4 + y] = 1.0;
                    }
                }
            }
        }
        let mut st_explicit = Vec::new();
        build_sumtable(
            &dims,
            SumSide::Inner(&p),
            SumSide::Inner(&tipvec),
            &eigen,
            model.freqs(),
            &mut st_explicit,
        );
        for (a, b) in st_tip.iter().zip(st_explicit.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
