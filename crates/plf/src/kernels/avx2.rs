//! AVX2+FMA kernels for the DNA/Γ4 case (site stride 16 = four `__m256d`).
//!
//! One `__m256d` holds exactly one rate category's four DNA states, so a
//! site block is four vector registers. The mat-vec `Σ_y P(x,y)·v[y]` for
//! all four `x` at once uses the **transposed** per-category matrices
//! ([`phylo_models::PMatrices::cat_t`]): destination-state columns are
//! contiguous, so the product is four broadcast-FMA steps over contiguous
//! loads instead of four strided row dot products.
//!
//! Every function carrying `#[target_feature]` is `unsafe fn`; the only
//! caller is [`super::backend::KernelBackend`], which re-checks
//! `is_x86_feature_detected!` (cached by std in atomics, a load per call)
//! before entering, and falls back to the scalar/unrolled path otherwise —
//! forcing `Avx2Fma` on a machine without the features degrades safely
//! instead of faulting.
//!
//! FMA contracts `a·b + c` into one rounding, so results differ from the
//! scalar backend in the last ulps (equivalence tests use a 1e-13
//! tolerance). The underflow-scaling *decision* compares a max-reduction
//! against 2⁻²⁵⁶ — a threshold no real dataset straddles within ulps — so
//! scale counts remain identical across backends.
//!
//! All loads/stores are unaligned (`loadu`/`storeu`): APV slot arenas are
//! 64-byte aligned ([`ooc_core::AlignedBuf`]) and on current x86 an
//! unaligned load instruction on an aligned address costs the same as an
//! aligned one, while tip LUTs and test vectors make no alignment promise.

#![allow(unsafe_code)]

use super::Dims;
use crate::scaling::{LOG_MINLIKELIHOOD, MINLIKELIHOOD, TWOTOTHE256};
use core::arch::x86_64::*;
use phylo_models::PMatrices;

/// Site stride this module is specialized for.
pub const STRIDE: usize = 16;

/// Floor for per-site likelihoods before taking logs (same as the scalar
/// evaluate kernel).
const L_FLOOR: f64 = 1e-300;

/// Are the required CPU features present on this machine? std caches the
/// CPUID results, so calling this per kernel invocation is a few atomic
/// loads.
#[inline]
pub fn available() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

/// Horizontal max of the four lanes.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hmax(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let m = _mm_max_pd(lo, hi);
    let h = _mm_unpackhi_pd(m, m);
    _mm_cvtsd_f64(_mm_max_sd(m, h))
}

/// Horizontal sum of the four lanes.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let s = _mm_add_pd(lo, hi);
    let h = _mm_unpackhi_pd(s, s);
    _mm_cvtsd_f64(_mm_add_sd(s, h))
}

/// Lane-wise |x| (clear the sign bit).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn vabs(v: __m256d) -> __m256d {
    _mm256_and_pd(
        v,
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff)),
    )
}

/// Cold path: multiply the 16 already-stored entries at `p` by 2²⁵⁶.
#[cold]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn rescale16(p: *mut f64) {
    let s = _mm256_set1_pd(TWOTOTHE256);
    for c in 0..4 {
        let v = _mm256_loadu_pd(p.add(c * 4));
        _mm256_storeu_pd(p.add(c * 4), _mm256_mul_pd(v, s));
    }
}

/// Load the four transposed category matrices as destination-state
/// columns: `cols[c][y]` is `P_c(·, y)`, one contiguous `__m256d`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn load_cols(pm: &PMatrices) -> [[__m256d; 4]; 4] {
    let mut cols = [[_mm256_setzero_pd(); 4]; 4];
    for (c, cat) in cols.iter_mut().enumerate() {
        let pt = pm.cat_t(c).as_ptr();
        for (y, col) in cat.iter_mut().enumerate() {
            *col = _mm256_loadu_pd(pt.add(y * 4));
        }
    }
    cols
}

/// `Σ_y v[y] · column_y` via broadcast-FMA: the four-row mat-vec in four
/// instructions. `v` points at one category's four child entries.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn matvec(cols: &[__m256d; 4], v: *const f64) -> __m256d {
    let mut acc = _mm256_mul_pd(cols[0], _mm256_set1_pd(*v));
    acc = _mm256_fmadd_pd(cols[1], _mm256_set1_pd(*v.add(1)), acc);
    acc = _mm256_fmadd_pd(cols[2], _mm256_set1_pd(*v.add(2)), acc);
    _mm256_fmadd_pd(cols[3], _mm256_set1_pd(*v.add(3)), acc)
}

/// AVX2 `newview` for two tip children.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see [`available`]) and that
/// the slices satisfy the scalar kernel's length contracts.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn newview_tip_tip(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_l: &[f64],
    codes_l: &[u16],
    lut_r: &[f64],
    codes_r: &[u16],
) {
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(scale_p.len(), dims.n_patterns);
    debug_assert_eq!(lut_l.len() % STRIDE, 0);
    debug_assert_eq!(lut_r.len() % STRIDE, 0);
    let lutl = lut_l.as_ptr();
    let lutr = lut_r.as_ptr();
    let out0 = parent.as_mut_ptr();
    for i in 0..dims.n_patterns {
        let l = lutl.add(codes_l[i] as usize * STRIDE);
        let r = lutr.add(codes_r[i] as usize * STRIDE);
        let out = out0.add(i * STRIDE);
        let mut vmax = _mm256_setzero_pd();
        for c in 0..4 {
            let v = _mm256_mul_pd(_mm256_loadu_pd(l.add(c * 4)), _mm256_loadu_pd(r.add(c * 4)));
            _mm256_storeu_pd(out.add(c * 4), v);
            vmax = _mm256_max_pd(vmax, vabs(v));
        }
        scale_p[i] = if hmax(vmax) < MINLIKELIHOOD {
            rescale16(out);
            1
        } else {
            0
        };
    }
}

/// AVX2 `newview` for one tip and one inner child.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see [`available`]) and that
/// the slices satisfy the scalar kernel's length contracts.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn newview_tip_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_tip: &[f64],
    codes_tip: &[u16],
    inner: &[f64],
    scale_inner: &[u32],
    pm_inner: &PMatrices,
) {
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(inner.len(), dims.width());
    debug_assert_eq!(lut_tip.len() % STRIDE, 0);
    let cols = load_cols(pm_inner);
    let lut = lut_tip.as_ptr();
    let child0 = inner.as_ptr();
    let out0 = parent.as_mut_ptr();
    for i in 0..dims.n_patterns {
        let tip = lut.add(codes_tip[i] as usize * STRIDE);
        let child = child0.add(i * STRIDE);
        let out = out0.add(i * STRIDE);
        let mut vmax = _mm256_setzero_pd();
        for (c, col) in cols.iter().enumerate() {
            let sum = matvec(col, child.add(c * 4));
            let v = _mm256_mul_pd(_mm256_loadu_pd(tip.add(c * 4)), sum);
            _mm256_storeu_pd(out.add(c * 4), v);
            vmax = _mm256_max_pd(vmax, vabs(v));
        }
        let scaled = if hmax(vmax) < MINLIKELIHOOD {
            rescale16(out);
            1
        } else {
            0
        };
        scale_p[i] = scale_inner[i] + scaled;
    }
}

/// AVX2 `newview` for two inner children.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see [`available`]) and that
/// the slices satisfy the scalar kernel's length contracts.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn newview_inner_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    left: &[f64],
    scale_l: &[u32],
    pm_l: &PMatrices,
    right: &[f64],
    scale_r: &[u32],
    pm_r: &PMatrices,
) {
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(left.len(), dims.width());
    debug_assert_eq!(right.len(), dims.width());
    let cols_l = load_cols(pm_l);
    let cols_r = load_cols(pm_r);
    let l0 = left.as_ptr();
    let r0 = right.as_ptr();
    let out0 = parent.as_mut_ptr();
    for i in 0..dims.n_patterns {
        let lsite = l0.add(i * STRIDE);
        let rsite = r0.add(i * STRIDE);
        let out = out0.add(i * STRIDE);
        let mut vmax = _mm256_setzero_pd();
        for c in 0..4 {
            let suml = matvec(&cols_l[c], lsite.add(c * 4));
            let sumr = matvec(&cols_r[c], rsite.add(c * 4));
            let v = _mm256_mul_pd(suml, sumr);
            _mm256_storeu_pd(out.add(c * 4), v);
            vmax = _mm256_max_pd(vmax, vabs(v));
        }
        let scaled = if hmax(vmax) < MINLIKELIHOOD {
            rescale16(out);
            1
        } else {
            0
        };
        scale_p[i] = scale_l[i] + scale_r[i] + scaled;
    }
}

/// AVX2 root evaluation for two inner vectors.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see [`available`]) and that
/// the slices satisfy the scalar kernel's length contracts.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn evaluate_inner_inner_sites(
    dims: &Dims,
    pvec: &[f64],
    scale_p: &[u32],
    qvec: &[f64],
    scale_q: &[u32],
    pm_root: &PMatrices,
    freqs: &[f64],
    weights: &[u32],
    site_out: &mut [f64],
) {
    debug_assert_eq!(pvec.len(), dims.width());
    debug_assert_eq!(qvec.len(), dims.width());
    debug_assert_eq!(freqs.len(), 4);
    let cols = load_cols(pm_root);
    let freqs_v = _mm256_loadu_pd(freqs.as_ptr());
    let cat_w = 0.25;
    let p0 = pvec.as_ptr();
    let q0 = qvec.as_ptr();
    for i in 0..dims.n_patterns {
        let psite = p0.add(i * STRIDE);
        let qsite = q0.add(i * STRIDE);
        let mut site_l = 0.0;
        for (c, col) in cols.iter().enumerate() {
            let dot = matvec(col, qsite.add(c * 4));
            let pc = _mm256_loadu_pd(psite.add(c * 4));
            let term = _mm256_mul_pd(_mm256_mul_pd(freqs_v, pc), dot);
            site_l += cat_w * hsum(term);
        }
        let scale = (scale_p[i] + scale_q[i]) as f64;
        site_out[i] = weights[i] as f64 * (site_l.max(L_FLOOR).ln() + scale * LOG_MINLIKELIHOOD);
    }
}

/// AVX2 root evaluation against a tip (root-LUT dot product).
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see [`available`]) and that
/// the slices satisfy the scalar kernel's length contracts.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn evaluate_tip_inner_sites(
    dims: &Dims,
    root_lut: &[f64],
    codes_tip: &[u16],
    qvec: &[f64],
    scale_q: &[u32],
    weights: &[u32],
    site_out: &mut [f64],
) {
    debug_assert_eq!(qvec.len(), dims.width());
    debug_assert_eq!(root_lut.len() % STRIDE, 0);
    let cat_w = 0.25;
    let lut0 = root_lut.as_ptr();
    let q0 = qvec.as_ptr();
    for i in 0..dims.n_patterns {
        let lut = lut0.add(codes_tip[i] as usize * STRIDE);
        let qsite = q0.add(i * STRIDE);
        let mut acc = _mm256_mul_pd(_mm256_loadu_pd(lut), _mm256_loadu_pd(qsite));
        for c in 1..4 {
            acc = _mm256_fmadd_pd(
                _mm256_loadu_pd(lut.add(c * 4)),
                _mm256_loadu_pd(qsite.add(c * 4)),
                acc,
            );
        }
        let site_l = cat_w * hsum(acc);
        site_out[i] =
            weights[i] as f64 * (site_l.max(L_FLOOR).ln() + scale_q[i] as f64 * LOG_MINLIKELIHOOD);
    }
}

/// AVX2 Newton-Raphson derivative site loop over a sumtable.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available (see [`available`]) and that
/// the slices satisfy the scalar kernel's length contracts.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn nr_derivatives_sites(
    dims: &Dims,
    sumtable: &[f64],
    weights: &[u32],
    scale_sums: &[u32],
    eigenvalues: &[f64],
    rates: &[f64],
    z: f64,
    out_l: &mut [f64],
    out_d1: &mut [f64],
    out_d2: &mut [f64],
) {
    debug_assert_eq!(sumtable.len(), dims.width());
    let cat_w = 0.25;
    let mut e0 = [0.0f64; STRIDE];
    let mut e1 = [0.0f64; STRIDE];
    let mut e2 = [0.0f64; STRIDE];
    for c in 0..4 {
        for k in 0..4 {
            let lr = eigenvalues[k] * rates[c];
            let ex = (lr * z).exp();
            e0[c * 4 + k] = ex;
            e1[c * 4 + k] = lr * ex;
            e2[c * 4 + k] = lr * lr * ex;
        }
    }
    let mut ev0 = [_mm256_setzero_pd(); 4];
    let mut ev1 = [_mm256_setzero_pd(); 4];
    let mut ev2 = [_mm256_setzero_pd(); 4];
    for c in 0..4 {
        ev0[c] = _mm256_loadu_pd(e0.as_ptr().add(c * 4));
        ev1[c] = _mm256_loadu_pd(e1.as_ptr().add(c * 4));
        ev2[c] = _mm256_loadu_pd(e2.as_ptr().add(c * 4));
    }
    let s0 = sumtable.as_ptr();
    for i in 0..dims.n_patterns {
        let site = s0.add(i * STRIDE);
        let mut al = _mm256_setzero_pd();
        let mut a1 = _mm256_setzero_pd();
        let mut a2 = _mm256_setzero_pd();
        for c in 0..4 {
            let sv = _mm256_loadu_pd(site.add(c * 4));
            al = _mm256_fmadd_pd(sv, ev0[c], al);
            a1 = _mm256_fmadd_pd(sv, ev1[c], a1);
            a2 = _mm256_fmadd_pd(sv, ev2[c], a2);
        }
        let l = cat_w * hsum(al);
        let lp = cat_w * hsum(a1);
        let lpp = cat_w * hsum(a2);
        let l_safe = l.max(L_FLOOR);
        let w = weights[i] as f64;
        out_l[i] = w * (l_safe.ln() + scale_sums[i] as f64 * LOG_MINLIKELIHOOD);
        out_d1[i] = w * (lp / l_safe);
        out_d2[i] = w * ((lpp * l_safe - lp * lp) / (l_safe * l_safe));
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::random_vector;
    use super::super::{derivatives, evaluate, newview};
    use super::*;
    use crate::encode::TipCodes;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_seq::{compress_patterns, Alignment, Alphabet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        Dims,
        TipCodes,
        PMatrices,
        PMatrices,
        ReversibleModel,
        DiscreteGamma,
    ) {
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "ACGTNACGTRYAGG".into()),
                ("b".into(), "ACGARGTTACGTCA".into()),
            ],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let codes = TipCodes::from_alignment(&comp);
        let model =
            ReversibleModel::gtr(&[1.3, 2.8, 0.7, 1.1, 3.5, 1.0], &[0.31, 0.19, 0.23, 0.27]);
        let gamma = DiscreteGamma::new(0.6, 4);
        let eigen = model.eigen();
        let mut pm_l = PMatrices::new(4, 4);
        let mut pm_r = PMatrices::new(4, 4);
        pm_l.update(&eigen, &gamma, 0.17);
        pm_r.update(&eigen, &gamma, 0.42);
        let dims = Dims {
            n_patterns: comp.n_patterns(),
            n_states: 4,
            n_cats: 4,
        };
        (dims, codes, pm_l, pm_r, model, gamma)
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-13 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn newview_matches_scalar_within_ulps() {
        if !available() {
            eprintln!("skipping: avx2+fma not available");
            return;
        }
        let (dims, codes, pm_l, pm_r, _m, _g) = setup();
        let (mut lut_l, mut lut_r) = (Vec::new(), Vec::new());
        codes.build_lut(&pm_l, &mut lut_l);
        codes.build_lut(&pm_r, &mut lut_r);
        let mut rng = StdRng::seed_from_u64(61);

        // tip/tip
        let mut p_s = vec![0.0; dims.width()];
        let mut sc_s = vec![0u32; dims.n_patterns];
        let mut p_v = vec![0.0; dims.width()];
        let mut sc_v = vec![0u32; dims.n_patterns];
        newview::newview_tip_tip(
            &dims,
            &mut p_s,
            &mut sc_s,
            &lut_l,
            codes.tip(0),
            &lut_r,
            codes.tip(1),
        );
        unsafe {
            newview_tip_tip(
                &dims,
                &mut p_v,
                &mut sc_v,
                &lut_l,
                codes.tip(0),
                &lut_r,
                codes.tip(1),
            );
        }
        assert!(p_s.iter().zip(&p_v).all(|(a, b)| close(*a, *b)));
        assert_eq!(sc_s, sc_v);

        // tip/inner
        let inner = random_vector(&dims, &mut rng);
        let sc_in = vec![1u32; dims.n_patterns];
        newview::newview_tip_inner(
            &dims,
            &mut p_s,
            &mut sc_s,
            &lut_l,
            codes.tip(0),
            &inner,
            &sc_in,
            &pm_r,
        );
        unsafe {
            newview_tip_inner(
                &dims,
                &mut p_v,
                &mut sc_v,
                &lut_l,
                codes.tip(0),
                &inner,
                &sc_in,
                &pm_r,
            );
        }
        assert!(p_s.iter().zip(&p_v).all(|(a, b)| close(*a, *b)));
        assert_eq!(sc_s, sc_v);

        // inner/inner, normal and underflowing magnitudes
        for magnitude in [1.0, 1e-100] {
            let left: Vec<f64> = random_vector(&dims, &mut rng)
                .iter()
                .map(|x| x * magnitude)
                .collect();
            let right: Vec<f64> = random_vector(&dims, &mut rng)
                .iter()
                .map(|x| x * magnitude)
                .collect();
            let sl = vec![1u32; dims.n_patterns];
            let sr = vec![2u32; dims.n_patterns];
            newview::newview_inner_inner(
                &dims, &mut p_s, &mut sc_s, &left, &sl, &pm_l, &right, &sr, &pm_r,
            );
            unsafe {
                newview_inner_inner(
                    &dims, &mut p_v, &mut sc_v, &left, &sl, &pm_l, &right, &sr, &pm_r,
                );
            }
            assert!(
                p_s.iter().zip(&p_v).all(|(a, b)| close(*a, *b)),
                "magnitude {magnitude}"
            );
            assert_eq!(sc_s, sc_v, "magnitude {magnitude}");
        }
    }

    #[test]
    fn evaluate_and_derivatives_match_scalar_within_ulps() {
        if !available() {
            eprintln!("skipping: avx2+fma not available");
            return;
        }
        let (dims, codes, pm_l, _pm_r, model, gamma) = setup();
        let eigen = model.eigen();
        let mut rng = StdRng::seed_from_u64(67);
        let p = random_vector(&dims, &mut rng);
        let q = random_vector(&dims, &mut rng);
        let scale_p = vec![1u32; dims.n_patterns];
        let scale_q = vec![0u32; dims.n_patterns];
        let w = vec![2u32; dims.n_patterns];
        let n = dims.n_patterns;

        let mut s_ref = vec![0.0; n];
        let mut s_got = vec![0.0; n];
        evaluate::evaluate_inner_inner_sites(
            &dims,
            &p,
            &scale_p,
            &q,
            &scale_q,
            &pm_l,
            model.freqs(),
            &w,
            &mut s_ref,
        );
        unsafe {
            evaluate_inner_inner_sites(
                &dims,
                &p,
                &scale_p,
                &q,
                &scale_q,
                &pm_l,
                model.freqs(),
                &w,
                &mut s_got,
            );
        }
        assert!(s_ref.iter().zip(&s_got).all(|(a, b)| close(*a, *b)));

        let mut rlut = Vec::new();
        codes.build_root_lut(&pm_l, model.freqs(), &mut rlut);
        evaluate::evaluate_tip_inner_sites(
            &dims,
            &rlut,
            codes.tip(0),
            &q,
            &scale_q,
            &w,
            &mut s_ref,
        );
        unsafe {
            evaluate_tip_inner_sites(&dims, &rlut, codes.tip(0), &q, &scale_q, &w, &mut s_got);
        }
        assert!(s_ref.iter().zip(&s_got).all(|(a, b)| close(*a, *b)));

        let mut sumtable = Vec::new();
        derivatives::build_sumtable(
            &dims,
            derivatives::SumSide::Inner(&p),
            derivatives::SumSide::Inner(&q),
            &eigen,
            model.freqs(),
            &mut sumtable,
        );
        let ss = vec![1u32; n];
        let (mut l_a, mut d1_a, mut d2_a) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let (mut l_b, mut d1_b, mut d2_b) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        derivatives::nr_derivatives_sites(
            &dims,
            &sumtable,
            &w,
            &ss,
            eigen.values(),
            gamma.rates(),
            0.23,
            &mut l_a,
            &mut d1_a,
            &mut d2_a,
        );
        unsafe {
            nr_derivatives_sites(
                &dims,
                &sumtable,
                &w,
                &ss,
                eigen.values(),
                gamma.rates(),
                0.23,
                &mut l_b,
                &mut d1_b,
                &mut d2_b,
            );
        }
        for ((a, b), (c, d)) in l_a.iter().zip(&l_b).zip(d1_a.iter().zip(&d1_b)) {
            assert!(close(*a, *b));
            assert!(close(*c, *d));
        }
        assert!(d2_a.iter().zip(&d2_b).all(|(a, b)| close(*a, *b)));
    }
}
