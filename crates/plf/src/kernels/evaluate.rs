//! Log-likelihood evaluation at the virtual root branch.

use super::Dims;
use crate::scaling::LOG_MINLIKELIHOOD;
use phylo_models::PMatrices;

/// Floor for per-site likelihoods before taking logs, guarding against
/// rounding to zero (RAxML clamps the same way).
const L_FLOOR: f64 = 1e-300;

/// Left-to-right sum of per-pattern log-likelihood terms. This is *the*
/// reduction order: the serial engine folds one full-alignment buffer, a
/// sharded engine folds the shards' sub-buffers concatenated in shard
/// order — the identical sequence of additions, hence bit-identical
/// results regardless of how the terms were computed in parallel.
pub fn reduce_site_lnl(site_lnl: &[f64]) -> f64 {
    site_lnl.iter().fold(0.0, |acc, &t| acc + t)
}

/// Evaluate at a branch whose two ends both carry ancestral vectors
/// (`p`, `q`), with transition matrices `pm_root` for the branch length,
/// writing each pattern's weighted log-likelihood term into `site_out`
/// (one slot per pattern). `weights` are pattern multiplicities;
/// `scale_*` per-pattern scaling counts. Category weights are uniform
/// `1/n_cats`. Reduce with [`reduce_site_lnl`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_inner_inner_sites(
    dims: &Dims,
    pvec: &[f64],
    scale_p: &[u32],
    qvec: &[f64],
    scale_q: &[u32],
    pm_root: &PMatrices,
    freqs: &[f64],
    weights: &[u32],
    site_out: &mut [f64],
) {
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    let cat_w = 1.0 / nc as f64;
    for i in 0..dims.n_patterns {
        let psite = &pvec[i * stride..(i + 1) * stride];
        let qsite = &qvec[i * stride..(i + 1) * stride];
        let mut site_l = 0.0;
        for c in 0..nc {
            let p = pm_root.cat(c);
            let pc = &psite[c * ns..(c + 1) * ns];
            let qc = &qsite[c * ns..(c + 1) * ns];
            let mut cat_sum = 0.0;
            for x in 0..ns {
                let row = &p[x * ns..(x + 1) * ns];
                let mut dot = 0.0;
                for y in 0..ns {
                    dot += row[y] * qc[y];
                }
                cat_sum += freqs[x] * pc[x] * dot;
            }
            site_l += cat_w * cat_sum;
        }
        let scale = (scale_p[i] + scale_q[i]) as f64;
        site_out[i] = weights[i] as f64 * (site_l.max(L_FLOOR).ln() + scale * LOG_MINLIKELIHOOD);
    }
}

/// Scalar convenience over [`evaluate_inner_inner_sites`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_inner_inner(
    dims: &Dims,
    pvec: &[f64],
    scale_p: &[u32],
    qvec: &[f64],
    scale_q: &[u32],
    pm_root: &PMatrices,
    freqs: &[f64],
    weights: &[u32],
) -> f64 {
    let mut sites = vec![0.0; dims.n_patterns];
    evaluate_inner_inner_sites(
        dims, pvec, scale_p, qvec, scale_q, pm_root, freqs, weights, &mut sites,
    );
    reduce_site_lnl(&sites)
}

/// Evaluate at a tip branch: the tip side is folded into a root-side lookup
/// table (`root_lut`, see [`crate::TipCodes::build_root_lut`]) so the site
/// likelihood is a plain dot product with the inner vector `qvec`. Writes
/// per-pattern weighted terms into `site_out`; reduce with
/// [`reduce_site_lnl`].
pub fn evaluate_tip_inner_sites(
    dims: &Dims,
    root_lut: &[f64],
    codes_tip: &[u16],
    qvec: &[f64],
    scale_q: &[u32],
    weights: &[u32],
    site_out: &mut [f64],
) {
    let stride = dims.site_stride();
    let cat_w = 1.0 / dims.n_cats as f64;
    for i in 0..dims.n_patterns {
        let qsite = &qvec[i * stride..(i + 1) * stride];
        let lbase = codes_tip[i] as usize * stride;
        let lut = &root_lut[lbase..lbase + stride];
        let mut site_l = 0.0;
        for e in 0..stride {
            site_l += lut[e] * qsite[e];
        }
        site_l *= cat_w;
        site_out[i] =
            weights[i] as f64 * (site_l.max(L_FLOOR).ln() + scale_q[i] as f64 * LOG_MINLIKELIHOOD);
    }
}

/// Scalar convenience over [`evaluate_tip_inner_sites`].
pub fn evaluate_tip_inner(
    dims: &Dims,
    root_lut: &[f64],
    codes_tip: &[u16],
    qvec: &[f64],
    scale_q: &[u32],
    weights: &[u32],
) -> f64 {
    let mut sites = vec![0.0; dims.n_patterns];
    evaluate_tip_inner_sites(
        dims, root_lut, codes_tip, qvec, scale_q, weights, &mut sites,
    );
    reduce_site_lnl(&sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::TipCodes;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_seq::{compress_patterns, Alignment, Alphabet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims() -> Dims {
        Dims {
            n_patterns: 6,
            n_states: 4,
            n_cats: 4,
        }
    }

    fn pm(t: f64) -> (PMatrices, ReversibleModel) {
        let model = ReversibleModel::hky85(2.5, &[0.28, 0.22, 0.24, 0.26]);
        let gamma = DiscreteGamma::new(0.9, 4);
        let mut pm = PMatrices::new(4, 4);
        pm.update(&model.eigen(), &gamma, t);
        (pm, model)
    }

    #[test]
    fn stationary_vectors_give_zero_information() {
        // If p and q are all-ones (the "gap" conditional likelihood) the
        // site likelihood must be exactly 1 (=> lnL 0) for any branch
        // length, because P rows sum to one and frequencies sum to one.
        let d = dims();
        let (pm, model) = pm(0.37);
        let ones = vec![1.0; d.width()];
        let zeros = vec![0u32; d.n_patterns];
        let w = vec![1u32; d.n_patterns];
        let lnl = evaluate_inner_inner(&d, &ones, &zeros, &ones, &zeros, &pm, model.freqs(), &w);
        assert!(lnl.abs() < 1e-10, "lnl = {lnl}");
    }

    #[test]
    fn scaling_counts_shift_lnl_exactly() {
        let d = dims();
        let (pm, model) = pm(0.2);
        let mut rng = StdRng::seed_from_u64(3);
        let p = super::super::testutil::random_vector(&d, &mut rng);
        let q = super::super::testutil::random_vector(&d, &mut rng);
        let zeros = vec![0u32; d.n_patterns];
        let ones_scale = vec![1u32; d.n_patterns];
        let w = vec![2u32; d.n_patterns];
        let base = evaluate_inner_inner(&d, &p, &zeros, &q, &zeros, &pm, model.freqs(), &w);
        let shifted = evaluate_inner_inner(&d, &p, &ones_scale, &q, &zeros, &pm, model.freqs(), &w);
        let expect = base + (d.n_patterns as f64 * 2.0) * LOG_MINLIKELIHOOD;
        assert!((shifted - expect).abs() < 1e-9);
    }

    #[test]
    fn weights_multiply_site_contributions() {
        let d = Dims {
            n_patterns: 1,
            n_states: 4,
            n_cats: 4,
        };
        let (pm, model) = pm(0.15);
        let mut rng = StdRng::seed_from_u64(7);
        let p = super::super::testutil::random_vector(&d, &mut rng);
        let q = super::super::testutil::random_vector(&d, &mut rng);
        let z = vec![0u32; 1];
        let l1 = evaluate_inner_inner(&d, &p, &z, &q, &z, &pm, model.freqs(), &[1]);
        let l5 = evaluate_inner_inner(&d, &p, &z, &q, &z, &pm, model.freqs(), &[5]);
        assert!((l5 - 5.0 * l1).abs() < 1e-10);
    }

    #[test]
    fn tip_inner_consistent_with_inner_inner() {
        // Treating a tip explicitly (root lut) must equal building the
        // tip's indicator vector and calling the inner/inner evaluator
        // with a zero-length virtual branch... instead compare against a
        // direct naive computation.
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[("a".into(), "ACGTNR".into()), ("b".into(), "ACGTAC".into())],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let codes = TipCodes::from_alignment(&comp);
        let d = Dims {
            n_patterns: comp.n_patterns(),
            n_states: 4,
            n_cats: 4,
        };
        let (pm, model) = pm(0.42);
        let mut rng = StdRng::seed_from_u64(11);
        let q = super::super::testutil::random_vector(&d, &mut rng);
        let scale_q = vec![0u32; d.n_patterns];
        let w: Vec<u32> = comp.weights.clone();
        let mut rlut = Vec::new();
        codes.build_root_lut(&pm, model.freqs(), &mut rlut);
        let got = evaluate_tip_inner(&d, &rlut, codes.tip(0), &q, &scale_q, &w);
        // Naive: l = (1/C) Σ_c Σ_x π_x ind(x) Σ_y P_c(x,y) q[y]
        let mut expect = 0.0;
        for i in 0..d.n_patterns {
            let mask = codes.mask(codes.tip(0)[i]);
            let mut site = 0.0;
            for c in 0..4 {
                for x in 0..4 {
                    if mask >> x & 1 == 0 {
                        continue;
                    }
                    let dot: f64 = (0..4)
                        .map(|y| pm.get(c, x, y) * q[(i * 4 + c) * 4 + y])
                        .sum();
                    site += model.freqs()[x] * dot;
                }
            }
            site *= 0.25;
            expect += w[i] as f64 * site.ln();
        }
        assert!((got - expect).abs() < 1e-10, "{got} vs {expect}");
    }
}
