//! Felsenstein combine kernels: compute a parent ancestral probability
//! vector from its two children, in the three arity variants RAxML
//! distinguishes (tip/tip, tip/inner, inner/inner).

use super::Dims;
use crate::scaling::scale_site;
use phylo_models::PMatrices;

/// Parent from two tip children. `lut_*` are per-branch tip lookup tables
/// (`[code][cat][state]`, see [`crate::TipCodes::build_lut`]); `codes_*`
/// give each pattern's code id. Scale counts start at zero for tips.
pub fn newview_tip_tip(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_l: &[f64],
    codes_l: &[u16],
    lut_r: &[f64],
    codes_r: &[u16],
) {
    let stride = dims.site_stride();
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(scale_p.len(), dims.n_patterns);
    debug_assert_eq!(lut_l.len() % stride, 0);
    debug_assert_eq!(lut_r.len() % stride, 0);
    debug_assert!(codes_l.len() >= dims.n_patterns);
    debug_assert!(codes_r.len() >= dims.n_patterns);
    for i in 0..dims.n_patterns {
        let site = &mut parent[i * stride..(i + 1) * stride];
        let lbase = codes_l[i] as usize * stride;
        let rbase = codes_r[i] as usize * stride;
        let l = &lut_l[lbase..lbase + stride];
        let r = &lut_r[rbase..rbase + stride];
        for e in 0..stride {
            site[e] = l[e] * r[e];
        }
        scale_p[i] = scale_site(site);
    }
}

/// Parent from one tip child (via its lookup table) and one inner child
/// (via matrix-vector products with that branch's transition matrices).
#[allow(clippy::too_many_arguments)]
pub fn newview_tip_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_tip: &[f64],
    codes_tip: &[u16],
    inner: &[f64],
    scale_inner: &[u32],
    pm_inner: &PMatrices,
) {
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(inner.len(), dims.width());
    debug_assert_eq!(lut_tip.len() % stride, 0);
    debug_assert!(codes_tip.len() >= dims.n_patterns);
    debug_assert!(scale_inner.len() >= dims.n_patterns);
    for i in 0..dims.n_patterns {
        let site = &mut parent[i * stride..(i + 1) * stride];
        let tbase = codes_tip[i] as usize * stride;
        let tip = &lut_tip[tbase..tbase + stride];
        let child = &inner[i * stride..(i + 1) * stride];
        for c in 0..nc {
            let p = pm_inner.cat(c);
            let child_c = &child[c * ns..(c + 1) * ns];
            let out_c = &mut site[c * ns..(c + 1) * ns];
            let tip_c = &tip[c * ns..(c + 1) * ns];
            for x in 0..ns {
                let row = &p[x * ns..(x + 1) * ns];
                let mut sum = 0.0;
                for y in 0..ns {
                    sum += row[y] * child_c[y];
                }
                out_c[x] = tip_c[x] * sum;
            }
        }
        scale_p[i] = scale_inner[i] + scale_site(site);
    }
}

/// Parent from two inner children.
#[allow(clippy::too_many_arguments)]
pub fn newview_inner_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    left: &[f64],
    scale_l: &[u32],
    pm_l: &PMatrices,
    right: &[f64],
    scale_r: &[u32],
    pm_r: &PMatrices,
) {
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(left.len(), dims.width());
    debug_assert_eq!(right.len(), dims.width());
    debug_assert!(scale_l.len() >= dims.n_patterns);
    debug_assert!(scale_r.len() >= dims.n_patterns);
    for i in 0..dims.n_patterns {
        let site = &mut parent[i * stride..(i + 1) * stride];
        let lsite = &left[i * stride..(i + 1) * stride];
        let rsite = &right[i * stride..(i + 1) * stride];
        for c in 0..nc {
            let pl = pm_l.cat(c);
            let pr = pm_r.cat(c);
            let lc = &lsite[c * ns..(c + 1) * ns];
            let rc = &rsite[c * ns..(c + 1) * ns];
            let out_c = &mut site[c * ns..(c + 1) * ns];
            for x in 0..ns {
                let lrow = &pl[x * ns..(x + 1) * ns];
                let rrow = &pr[x * ns..(x + 1) * ns];
                let mut suml = 0.0;
                let mut sumr = 0.0;
                for y in 0..ns {
                    suml += lrow[y] * lc[y];
                    sumr += rrow[y] * rc[y];
                }
                out_c[x] = suml * sumr;
            }
        }
        scale_p[i] = scale_l[i] + scale_r[i] + scale_site(site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::TipCodes;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_seq::{compress_patterns, Alignment, Alphabet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (
        Dims,
        TipCodes,
        PMatrices,
        PMatrices,
        DiscreteGamma,
        ReversibleModel,
    ) {
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "ACGTNAC".into()),
                ("b".into(), "ACGARGT".into()),
            ],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let codes = TipCodes::from_alignment(&comp);
        let model = ReversibleModel::hky85(2.0, &[0.3, 0.2, 0.2, 0.3]);
        let gamma = DiscreteGamma::new(0.7, 4);
        let eigen = model.eigen();
        let mut pm_l = PMatrices::new(4, 4);
        let mut pm_r = PMatrices::new(4, 4);
        pm_l.update(&eigen, &gamma, 0.12);
        pm_r.update(&eigen, &gamma, 0.31);
        let dims = Dims {
            n_patterns: comp.n_patterns(),
            n_states: 4,
            n_cats: 4,
        };
        (dims, codes, pm_l, pm_r, gamma, model)
    }

    /// Naive per-entry reference for tip/tip combines.
    fn naive_tip_tip(
        dims: &Dims,
        codes: &TipCodes,
        tip_l: usize,
        tip_r: usize,
        pm_l: &PMatrices,
        pm_r: &PMatrices,
    ) -> Vec<f64> {
        let mut out = vec![0.0; dims.width()];
        for i in 0..dims.n_patterns {
            let ml = codes.mask(codes.tip(tip_l)[i]);
            let mr = codes.mask(codes.tip(tip_r)[i]);
            for c in 0..dims.n_cats {
                for x in 0..dims.n_states {
                    let sl: f64 = (0..dims.n_states)
                        .filter(|&y| ml >> y & 1 == 1)
                        .map(|y| pm_l.get(c, x, y))
                        .sum();
                    let sr: f64 = (0..dims.n_states)
                        .filter(|&y| mr >> y & 1 == 1)
                        .map(|y| pm_r.get(c, x, y))
                        .sum();
                    out[(i * dims.n_cats + c) * dims.n_states + x] = sl * sr;
                }
            }
        }
        out
    }

    #[test]
    fn tip_tip_matches_naive() {
        let (dims, codes, pm_l, pm_r, _g, _m) = setup();
        let (mut lut_l, mut lut_r) = (Vec::new(), Vec::new());
        codes.build_lut(&pm_l, &mut lut_l);
        codes.build_lut(&pm_r, &mut lut_r);
        let mut parent = vec![0.0; dims.width()];
        let mut scale = vec![0u32; dims.n_patterns];
        newview_tip_tip(
            &dims,
            &mut parent,
            &mut scale,
            &lut_l,
            codes.tip(0),
            &lut_r,
            codes.tip(1),
        );
        let expect = naive_tip_tip(&dims, &codes, 0, 1, &pm_l, &pm_r);
        for (a, b) in parent.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-14);
        }
        assert!(scale.iter().all(|&s| s == 0), "no underflow expected here");
    }

    #[test]
    fn tip_inner_matches_naive() {
        let (dims, codes, pm_l, pm_r, _g, _m) = setup();
        let mut lut = Vec::new();
        codes.build_lut(&pm_l, &mut lut);
        let mut rng = StdRng::seed_from_u64(5);
        let inner = super::super::testutil::random_vector(&dims, &mut rng);
        let scale_inner = vec![2u32; dims.n_patterns];
        let mut parent = vec![0.0; dims.width()];
        let mut scale = vec![0u32; dims.n_patterns];
        newview_tip_inner(
            &dims,
            &mut parent,
            &mut scale,
            &lut,
            codes.tip(0),
            &inner,
            &scale_inner,
            &pm_r,
        );
        // Naive reference.
        let (ns, nc) = (dims.n_states, dims.n_cats);
        for i in 0..dims.n_patterns {
            let mask = codes.mask(codes.tip(0)[i]);
            for c in 0..nc {
                for x in 0..ns {
                    let tip: f64 = (0..ns)
                        .filter(|&y| mask >> y & 1 == 1)
                        .map(|y| pm_l.get(c, x, y))
                        .sum();
                    let dot: f64 = (0..ns)
                        .map(|y| pm_r.get(c, x, y) * inner[(i * nc + c) * ns + y])
                        .sum();
                    let got = parent[(i * nc + c) * ns + x];
                    assert!((got - tip * dot).abs() < 1e-13);
                }
            }
            assert_eq!(scale[i], 2, "child scales propagate");
        }
    }

    #[test]
    fn inner_inner_matches_naive() {
        let (dims, _codes, pm_l, pm_r, _g, _m) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let left = super::super::testutil::random_vector(&dims, &mut rng);
        let right = super::super::testutil::random_vector(&dims, &mut rng);
        let scale_l = vec![1u32; dims.n_patterns];
        let scale_r = vec![3u32; dims.n_patterns];
        let mut parent = vec![0.0; dims.width()];
        let mut scale = vec![0u32; dims.n_patterns];
        newview_inner_inner(
            &dims,
            &mut parent,
            &mut scale,
            &left,
            &scale_l,
            &pm_l,
            &right,
            &scale_r,
            &pm_r,
        );
        let (ns, nc) = (dims.n_states, dims.n_cats);
        for i in 0..dims.n_patterns {
            for c in 0..nc {
                for x in 0..ns {
                    let sl: f64 = (0..ns)
                        .map(|y| pm_l.get(c, x, y) * left[(i * nc + c) * ns + y])
                        .sum();
                    let sr: f64 = (0..ns)
                        .map(|y| pm_r.get(c, x, y) * right[(i * nc + c) * ns + y])
                        .sum();
                    let got = parent[(i * nc + c) * ns + x];
                    assert!((got - sl * sr).abs() < 1e-13);
                }
            }
            assert_eq!(scale[i], 4);
        }
    }

    #[test]
    fn underflow_triggers_scaling() {
        let (dims, _codes, pm_l, pm_r, _g, _m) = setup();
        let tiny = vec![1e-100; dims.width()];
        let scale_zero = vec![0u32; dims.n_patterns];
        let mut parent = vec![0.0; dims.width()];
        let mut scale = vec![0u32; dims.n_patterns];
        newview_inner_inner(
            &dims,
            &mut parent,
            &mut scale,
            &tiny,
            &scale_zero,
            &pm_l,
            &tiny,
            &scale_zero,
            &pm_r,
        );
        // Products near 1e-200 drop below 2^-256 ≈ 8.6e-78 -> scaled once,
        // leaving well-formed positive entries around 1e-123.
        assert!(scale.iter().all(|&s| s == 1));
        assert!(parent.iter().all(|&x| x > 0.0 && x < 1.0));
    }
}
