//! Numerical kernels of the PLF.
//!
//! All kernels operate on flat ancestral probability vectors laid out
//! `[pattern][rate category][state]` (site-major, exactly one contiguous
//! block per inner node — the out-of-core transfer unit).

#[cfg(target_arch = "x86_64")]
pub mod avx2;
pub mod backend;
pub mod derivatives;
pub mod dna4;
pub mod evaluate;
pub mod newview;

pub use backend::KernelBackend;

/// Vector dimensions shared by every kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Number of site patterns.
    pub n_patterns: usize,
    /// Number of character states (4 DNA, 20 protein).
    pub n_states: usize,
    /// Number of Γ rate categories.
    pub n_cats: usize,
}

impl Dims {
    /// Entries per pattern (`n_cats · n_states`).
    #[inline]
    pub fn site_stride(&self) -> usize {
        self.n_cats * self.n_states
    }

    /// Total vector length in `f64`s (`n_patterns · n_cats · n_states`).
    #[inline]
    pub fn width(&self) -> usize {
        self.n_patterns * self.site_stride()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::Dims;
    use rand::Rng;

    /// A random strictly positive "probability-like" vector.
    pub fn random_vector<R: Rng>(dims: &Dims, rng: &mut R) -> Vec<f64> {
        (0..dims.width())
            .map(|_| rng.gen_range(0.01..1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_arithmetic() {
        let d = Dims {
            n_patterns: 100,
            n_states: 4,
            n_cats: 4,
        };
        assert_eq!(d.site_stride(), 16);
        assert_eq!(d.width(), 1600);
        // The paper's example: s = 10,000 DNA sites under Γ4 gives a
        // 10,000 · 16 · 8 B = 1.28 MB vector.
        let paper = Dims {
            n_patterns: 10_000,
            n_states: 4,
            n_cats: 4,
        };
        assert_eq!(paper.width() * 8, 1_280_000);
    }
}
