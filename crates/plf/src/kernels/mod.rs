//! Numerical kernels of the PLF.
//!
//! All kernels operate on flat ancestral probability vectors laid out
//! `[pattern][rate category][state]` (site-major, exactly one contiguous
//! block per inner node — the out-of-core transfer unit).

#[cfg(target_arch = "x86_64")]
pub mod avx2;
pub mod backend;
pub mod derivatives;
pub mod dna4;
pub mod evaluate;
pub mod generic;
pub mod newview;
#[cfg(target_arch = "x86_64")]
pub mod wide;

pub use backend::KernelBackend;

/// Vector dimensions shared by every kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// Number of site patterns.
    pub n_patterns: usize,
    /// Number of character states (4 DNA, 20 protein).
    pub n_states: usize,
    /// Number of Γ rate categories.
    pub n_cats: usize,
}

impl Dims {
    /// Entries per pattern (`n_cats · n_states`).
    #[inline]
    pub fn site_stride(&self) -> usize {
        self.n_cats * self.n_states
    }

    /// Total vector length in `f64`s (`n_patterns · n_cats · n_states`).
    #[inline]
    pub fn width(&self) -> usize {
        self.n_patterns * self.site_stride()
    }
}

/// The ancestral-probability-vector layout derived from [`Dims`]: the
/// single source of truth for strides and offsets. Kernels and buffer code
/// derive every index from this instead of assuming the DNA/Γ4 stride of
/// 16, so wide-state (protein, codon) vectors index identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApvLayout {
    /// Character states per category block.
    pub n_states: usize,
    /// Rate categories per site block.
    pub n_cats: usize,
}

impl ApvLayout {
    /// The layout for these dimensions.
    #[inline]
    pub fn of(dims: &Dims) -> ApvLayout {
        ApvLayout {
            n_states: dims.n_states,
            n_cats: dims.n_cats,
        }
    }

    /// Entries per site block (`n_cats · n_states`).
    #[inline]
    pub fn site_stride(&self) -> usize {
        self.n_cats * self.n_states
    }

    /// Flat range of pattern `i`'s site block.
    #[inline]
    pub fn site(&self, i: usize) -> core::ops::Range<usize> {
        let s = self.site_stride();
        i * s..(i + 1) * s
    }

    /// Flat range of category `c` within pattern `i`'s site block.
    #[inline]
    pub fn cat(&self, i: usize, c: usize) -> core::ops::Range<usize> {
        debug_assert!(c < self.n_cats);
        let base = i * self.site_stride() + c * self.n_states;
        base..base + self.n_states
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::Dims;
    use rand::Rng;

    /// A random strictly positive "probability-like" vector.
    pub fn random_vector<R: Rng>(dims: &Dims, rng: &mut R) -> Vec<f64> {
        (0..dims.width())
            .map(|_| rng.gen_range(0.01..1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_arithmetic() {
        let d = Dims {
            n_patterns: 100,
            n_states: 4,
            n_cats: 4,
        };
        assert_eq!(d.site_stride(), 16);
        assert_eq!(d.width(), 1600);
        // The paper's example: s = 10,000 DNA sites under Γ4 gives a
        // 10,000 · 16 · 8 B = 1.28 MB vector.
        let paper = Dims {
            n_patterns: 10_000,
            n_states: 4,
            n_cats: 4,
        };
        assert_eq!(paper.width() * 8, 1_280_000);
    }

    #[test]
    fn apv_layout_derives_all_offsets() {
        let d = Dims {
            n_patterns: 3,
            n_states: 61,
            n_cats: 2,
        };
        let l = ApvLayout::of(&d);
        assert_eq!(l.site_stride(), 122);
        assert_eq!(l.site(2), 244..366);
        assert_eq!(l.cat(1, 1), 122 + 61..122 + 122);
        assert_eq!(l.site_stride() * d.n_patterns, d.width());
    }
}
