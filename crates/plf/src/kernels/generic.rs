//! Width-generic unrolled kernels: any `n_states` (protein, codon) and any
//! `n_cats`, restructured for auto-vectorization while staying
//! **bit-identical** to the scalar reference.
//!
//! The scalar kernels compute each destination state `x` as a row dot
//! product `Σ_y P(x,y)·v[y]` with `y` ascending. These kernels instead
//! sweep `y` in the outer loop and accumulate into a per-site column
//! accumulator over the **transposed** matrices
//! ([`phylo_models::PMatrices::cat_t`]): for fixed `y` the destination
//! states are contiguous, so the inner loop is a contiguous
//! multiply-accumulate LLVM vectorizes without reassociation. Each
//! accumulator lane still performs the additions `0 + P(x,0)v₀ + P(x,1)v₁ +
//! …` in exactly the scalar order, so the results (and therefore the
//! underflow-scaling counts) are bit-identical to [`super::newview`] /
//! [`super::evaluate`] — the equivalence tests assert `==`, not a
//! tolerance.
//!
//! The flat per-site loops (tip/tip products, root-LUT dots, NR
//! derivative sums) are already width-generic in the scalar modules and are
//! re-used directly.

use super::{ApvLayout, Dims};
use crate::scaling::scale_site;
use phylo_models::PMatrices;

/// Upper bound on `n_states` (one bit per state in
/// [`phylo_seq::SiteMask`]); bounds the stack accumulators.
pub const MAX_STATES: usize = 64;

/// Column-accumulated mat-vec: `acc[x] = Σ_y P(x,y)·v[y]` with `y`
/// ascending, over the transposed category matrix `pt` (entry `P(x,y)` at
/// `y·ns + x`). Bit-identical to the scalar row dot.
#[inline]
fn matvec_cols(pt: &[f64], v: &[f64], ns: usize, acc: &mut [f64]) {
    debug_assert!(ns <= MAX_STATES && v.len() == ns && pt.len() == ns * ns);
    acc[..ns].fill(0.0);
    for (y, &vy) in v.iter().enumerate() {
        let col = &pt[y * ns..(y + 1) * ns];
        for (a, &p) in acc[..ns].iter_mut().zip(col) {
            *a += p * vy;
        }
    }
}

/// Generic `newview` for two tip children (delegates to the scalar kernel:
/// the elementwise LUT product has no matrix structure to exploit).
pub fn newview_tip_tip(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_l: &[f64],
    codes_l: &[u16],
    lut_r: &[f64],
    codes_r: &[u16],
) {
    super::newview::newview_tip_tip(dims, parent, scale_p, lut_l, codes_l, lut_r, codes_r);
}

/// Generic `newview` for one tip and one inner child.
#[allow(clippy::too_many_arguments)]
pub fn newview_tip_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    lut_tip: &[f64],
    codes_tip: &[u16],
    inner: &[f64],
    scale_inner: &[u32],
    pm_inner: &PMatrices,
) {
    let layout = ApvLayout::of(dims);
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = layout.site_stride();
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(inner.len(), dims.width());
    debug_assert_eq!(lut_tip.len() % stride, 0);
    debug_assert!(codes_tip.len() >= dims.n_patterns);
    debug_assert!(scale_inner.len() >= dims.n_patterns);
    let mut acc = [0.0f64; MAX_STATES];
    for i in 0..dims.n_patterns {
        let site = &mut parent[layout.site(i)];
        let tbase = codes_tip[i] as usize * stride;
        let tip = &lut_tip[tbase..tbase + stride];
        let child = &inner[i * stride..(i + 1) * stride];
        for c in 0..nc {
            matvec_cols(
                pm_inner.cat_t(c),
                &child[c * ns..(c + 1) * ns],
                ns,
                &mut acc,
            );
            let tip_c = &tip[c * ns..(c + 1) * ns];
            let out_c = &mut site[c * ns..(c + 1) * ns];
            for x in 0..ns {
                out_c[x] = tip_c[x] * acc[x];
            }
        }
        scale_p[i] = scale_inner[i] + scale_site(site);
    }
}

/// Generic `newview` for two inner children.
#[allow(clippy::too_many_arguments)]
pub fn newview_inner_inner(
    dims: &Dims,
    parent: &mut [f64],
    scale_p: &mut [u32],
    left: &[f64],
    scale_l: &[u32],
    pm_l: &PMatrices,
    right: &[f64],
    scale_r: &[u32],
    pm_r: &PMatrices,
) {
    let layout = ApvLayout::of(dims);
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = layout.site_stride();
    debug_assert_eq!(parent.len(), dims.width());
    debug_assert_eq!(left.len(), dims.width());
    debug_assert_eq!(right.len(), dims.width());
    debug_assert!(scale_l.len() >= dims.n_patterns);
    debug_assert!(scale_r.len() >= dims.n_patterns);
    let mut accl = [0.0f64; MAX_STATES];
    let mut accr = [0.0f64; MAX_STATES];
    for i in 0..dims.n_patterns {
        let site = &mut parent[layout.site(i)];
        let lsite = &left[i * stride..(i + 1) * stride];
        let rsite = &right[i * stride..(i + 1) * stride];
        for c in 0..nc {
            matvec_cols(pm_l.cat_t(c), &lsite[c * ns..(c + 1) * ns], ns, &mut accl);
            matvec_cols(pm_r.cat_t(c), &rsite[c * ns..(c + 1) * ns], ns, &mut accr);
            let out_c = &mut site[c * ns..(c + 1) * ns];
            for x in 0..ns {
                out_c[x] = accl[x] * accr[x];
            }
        }
        scale_p[i] = scale_l[i] + scale_r[i] + scale_site(site);
    }
}

/// Generic root evaluation for two inner vectors.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_inner_inner_sites(
    dims: &Dims,
    pvec: &[f64],
    scale_p: &[u32],
    qvec: &[f64],
    scale_q: &[u32],
    pm_root: &PMatrices,
    freqs: &[f64],
    weights: &[u32],
    site_out: &mut [f64],
) {
    use crate::scaling::LOG_MINLIKELIHOOD;
    let (ns, nc) = (dims.n_states, dims.n_cats);
    let stride = dims.site_stride();
    let cat_w = 1.0 / nc as f64;
    debug_assert_eq!(freqs.len(), ns);
    let mut dot = [0.0f64; MAX_STATES];
    for i in 0..dims.n_patterns {
        let psite = &pvec[i * stride..(i + 1) * stride];
        let qsite = &qvec[i * stride..(i + 1) * stride];
        let mut site_l = 0.0;
        for c in 0..nc {
            matvec_cols(pm_root.cat_t(c), &qsite[c * ns..(c + 1) * ns], ns, &mut dot);
            let pc = &psite[c * ns..(c + 1) * ns];
            let mut cat_sum = 0.0;
            for x in 0..ns {
                cat_sum += freqs[x] * pc[x] * dot[x];
            }
            site_l += cat_w * cat_sum;
        }
        let scale = (scale_p[i] + scale_q[i]) as f64;
        site_out[i] = weights[i] as f64 * (site_l.max(1e-300).ln() + scale * LOG_MINLIKELIHOOD);
    }
}

/// Generic root evaluation against a tip (flat LUT dot — the scalar kernel
/// is already the right loop).
pub fn evaluate_tip_inner_sites(
    dims: &Dims,
    root_lut: &[f64],
    codes_tip: &[u16],
    qvec: &[f64],
    scale_q: &[u32],
    weights: &[u32],
    site_out: &mut [f64],
) {
    super::evaluate::evaluate_tip_inner_sites(
        dims, root_lut, codes_tip, qvec, scale_q, weights, site_out,
    );
}

/// Generic NR derivative site loop (the scalar kernel is already flat and
/// width-generic).
#[allow(clippy::too_many_arguments)]
pub fn nr_derivatives_sites(
    dims: &Dims,
    sumtable: &[f64],
    weights: &[u32],
    scale_sums: &[u32],
    eigenvalues: &[f64],
    rates: &[f64],
    z: f64,
    out_l: &mut [f64],
    out_d1: &mut [f64],
    out_d2: &mut [f64],
) {
    super::derivatives::nr_derivatives_sites(
        dims,
        sumtable,
        weights,
        scale_sums,
        eigenvalues,
        rates,
        z,
        out_l,
        out_d1,
        out_d2,
    );
}

#[cfg(test)]
mod tests {
    use super::super::testutil::random_vector;
    use super::super::{evaluate, newview};
    use super::*;
    use phylo_models::{DiscreteGamma, PMatrices};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn model_for(ns: usize) -> phylo_models::ReversibleModel {
        match ns {
            4 => phylo_models::ReversibleModel::gtr(
                &[1.3, 2.8, 0.7, 1.1, 3.5, 1.0],
                &[0.31, 0.19, 0.23, 0.27],
            ),
            20 => phylo_models::protein::synthetic_protein(7),
            61 => phylo_models::codon::synthetic_codon(7),
            _ => unreachable!(),
        }
    }

    #[test]
    fn bit_identical_to_scalar_across_widths() {
        for ns in [4usize, 20, 61] {
            for nc in [1usize, 4] {
                let dims = Dims {
                    n_patterns: 11,
                    n_states: ns,
                    n_cats: nc,
                };
                let model = model_for(ns);
                let gamma = if nc == 1 {
                    DiscreteGamma::none()
                } else {
                    DiscreteGamma::new(0.8, nc)
                };
                let eigen = model.eigen();
                let mut pm_l = PMatrices::new(ns, nc);
                let mut pm_r = PMatrices::new(ns, nc);
                pm_l.update(&eigen, &gamma, 0.17);
                pm_r.update(&eigen, &gamma, 0.42);
                let mut rng = StdRng::seed_from_u64(ns as u64);
                // Normal and underflowing magnitudes, exercising scaling.
                for magnitude in [1.0, 1e-40] {
                    let left: Vec<f64> = random_vector(&dims, &mut rng)
                        .iter()
                        .map(|x| x * magnitude)
                        .collect();
                    let right: Vec<f64> = random_vector(&dims, &mut rng)
                        .iter()
                        .map(|x| x * magnitude)
                        .collect();
                    let sl: Vec<u32> = (0..dims.n_patterns).map(|_| rng.gen_range(0..3)).collect();
                    let sr: Vec<u32> = (0..dims.n_patterns).map(|_| rng.gen_range(0..3)).collect();
                    let mut p_s = vec![0.0; dims.width()];
                    let mut sc_s = vec![0u32; dims.n_patterns];
                    let mut p_g = vec![0.0; dims.width()];
                    let mut sc_g = vec![0u32; dims.n_patterns];
                    newview::newview_inner_inner(
                        &dims, &mut p_s, &mut sc_s, &left, &sl, &pm_l, &right, &sr, &pm_r,
                    );
                    newview_inner_inner(
                        &dims, &mut p_g, &mut sc_g, &left, &sl, &pm_l, &right, &sr, &pm_r,
                    );
                    assert_eq!(p_s, p_g, "ns={ns} nc={nc} mag={magnitude}");
                    assert_eq!(sc_s, sc_g);

                    // Root evaluation on the combined vectors.
                    let w: Vec<u32> = (0..dims.n_patterns).map(|_| rng.gen_range(1..4)).collect();
                    let mut e_s = vec![0.0; dims.n_patterns];
                    let mut e_g = vec![0.0; dims.n_patterns];
                    evaluate::evaluate_inner_inner_sites(
                        &dims,
                        &p_s,
                        &sc_s,
                        &left,
                        &sl,
                        &pm_l,
                        model.freqs(),
                        &w,
                        &mut e_s,
                    );
                    evaluate_inner_inner_sites(
                        &dims,
                        &p_g,
                        &sc_g,
                        &left,
                        &sl,
                        &pm_l,
                        model.freqs(),
                        &w,
                        &mut e_g,
                    );
                    assert_eq!(e_s, e_g, "evaluate ns={ns} nc={nc}");
                }
            }
        }
    }

    #[test]
    fn tip_inner_bit_identical_at_codon_width() {
        use crate::encode::TipCodes;
        use phylo_seq::{compress_patterns, Alignment, Alphabet};
        let dna = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "ATGGCATTCAAAGGG".into()),
                ("b".into(), "ATGGCCTTTAAGGGA".into()),
            ],
        )
        .unwrap();
        let aln = dna.to_codons().unwrap();
        let comp = compress_patterns(&aln);
        let codes = TipCodes::from_alignment(&comp);
        let model = phylo_models::codon::synthetic_codon(2);
        let gamma = DiscreteGamma::new(0.9, 2);
        let mut pm = PMatrices::new(61, 2);
        pm.update(&model.eigen(), &gamma, 0.2);
        let dims = Dims {
            n_patterns: comp.n_patterns(),
            n_states: 61,
            n_cats: 2,
        };
        let mut lut = Vec::new();
        codes.build_lut(&pm, &mut lut);
        let mut rng = StdRng::seed_from_u64(9);
        let inner = random_vector(&dims, &mut rng);
        let sc_in = vec![1u32; dims.n_patterns];
        let mut p_s = vec![0.0; dims.width()];
        let mut sc_s = vec![0u32; dims.n_patterns];
        let mut p_g = vec![0.0; dims.width()];
        let mut sc_g = vec![0u32; dims.n_patterns];
        newview::newview_tip_inner(
            &dims,
            &mut p_s,
            &mut sc_s,
            &lut,
            codes.tip(0),
            &inner,
            &sc_in,
            &pm,
        );
        newview_tip_inner(
            &dims,
            &mut p_g,
            &mut sc_g,
            &lut,
            codes.tip(0),
            &inner,
            &sc_in,
            &pm,
        );
        assert_eq!(p_s, p_g);
        assert_eq!(sc_s, sc_g);
    }
}
