//! Bridge between the tree and the out-of-core *Topological* replacement
//! strategy.
//!
//! `ooc-core` deliberately knows nothing about trees; its Topological
//! strategy asks an opaque [`TopologyOracle`] for hop distances between
//! items (= inner nodes). [`TreeOracle`] implements that oracle over a
//! [`SharedTree`] handle so the distances can track the topology as a
//! search rearranges it: callers refresh the handle (typically at round
//! boundaries) with [`SharedTree::update`].

use ooc_core::{ItemId, TopologyOracle};
use parking_lot::RwLock;
use phylo_tree::distance::distances_from;
use phylo_tree::Tree;
use std::sync::Arc;

/// A cheaply clonable shared snapshot of the tree.
#[derive(Clone)]
pub struct SharedTree(Arc<RwLock<Tree>>);

impl SharedTree {
    /// Create a handle holding a snapshot of `tree`.
    pub fn new(tree: &Tree) -> Self {
        SharedTree(Arc::new(RwLock::new(tree.clone())))
    }

    /// Replace the snapshot (e.g. after accepted rearrangements).
    pub fn update(&self, tree: &Tree) {
        *self.0.write() = tree.clone();
    }
}

/// [`TopologyOracle`] over a [`SharedTree`]: one BFS per miss, with the
/// per-item distances extracted from the node distances. The paper notes
/// this "larger computational overhead" as the reason to prefer Random or
/// LRU over Topological despite similar miss rates.
pub struct TreeOracle {
    shared: SharedTree,
    node_dist: Vec<u32>,
    item_dist: Vec<u32>,
}

impl TreeOracle {
    /// Build an oracle reading from `shared`.
    pub fn new(shared: SharedTree) -> Self {
        TreeOracle {
            shared,
            node_dist: Vec::new(),
            item_dist: Vec::new(),
        }
    }
}

impl TopologyOracle for TreeOracle {
    fn distances_from(&mut self, from: ItemId) -> &[u32] {
        let tree = self.shared.0.read();
        let n_inner = tree.n_inner();
        distances_from(&tree, tree.inner_node(from), &mut self.node_dist);
        self.item_dist.clear();
        self.item_dist
            .extend((0..n_inner as u32).map(|i| self.node_dist[tree.inner_node(i) as usize]));
        &self.item_dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_tree::build::random_topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_matches_tree_distances() {
        let tree = random_topology(20, 0.1, &mut StdRng::seed_from_u64(1));
        let shared = SharedTree::new(&tree);
        let mut oracle = TreeOracle::new(shared);
        let d = oracle.distances_from(3);
        assert_eq!(d.len(), tree.n_inner());
        assert_eq!(d[3], 0);
        for i in 0..tree.n_inner() as u32 {
            let expect =
                phylo_tree::distance::node_distance(&tree, tree.inner_node(3), tree.inner_node(i));
            assert_eq!(d[i as usize], expect);
        }
    }

    #[test]
    fn update_tracks_topology_changes() {
        let mut tree = random_topology(15, 0.1, &mut StdRng::seed_from_u64(2));
        let shared = SharedTree::new(&tree);
        let mut oracle = TreeOracle::new(shared.clone());
        let before = oracle.distances_from(0).to_vec();
        // Rearrange and refresh.
        let dir = tree.inner_half_edge(5, 0);
        let cands: Vec<_> = tree
            .branches()
            .filter(|&t| {
                let (a, b) = tree.children_dirs(dir);
                let (qa, qb) = (tree.back(a), tree.back(b));
                let tb = tree.back(t);
                t != a
                    && t != b
                    && t != qa
                    && t != qb
                    && tb != a
                    && tb != b
                    && !phylo_tree::spr::subtree_contains(&tree, dir, tree.node_of(t))
                    && !phylo_tree::spr::subtree_contains(&tree, dir, tree.node_of(tb))
            })
            .collect();
        phylo_tree::spr::spr_prune_regraft(&mut tree, dir, cands[0], None);
        shared.update(&tree);
        let after = oracle.distances_from(0).to_vec();
        assert_ne!(before, after, "distances should reflect the new topology");
    }
}
