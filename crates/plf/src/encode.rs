//! Tip encoding and per-branch tip lookup tables.
//!
//! A tip's "likelihood vector" at a site is the 0/1 indicator of its state
//! mask, so the partial sum `Σ_y P_c(x, y) · ind(y)` depends only on the
//! mask, not the site. Like RAxML's `umpX1`/`umpX2` tables we precompute it
//! once per branch for every *distinct* mask in the alignment — for DNA
//! that is at most 15 codes, for protein at most the distinct observed
//! masks — and index tips by compact code ids.

use phylo_models::{DiscreteGamma, EigenDecomp, PMatrices};
use phylo_seq::{CompressedAlignment, SiteMask};
use std::collections::HashMap;

/// Compactly coded tip states for all tips over the pattern alignment.
#[derive(Debug, Clone)]
pub struct TipCodes {
    n_states: usize,
    /// Distinct masks observed, indexed by code id.
    codes: Vec<SiteMask>,
    /// Per tip, per pattern: code id.
    tip_patterns: Vec<Vec<u16>>,
}

/// Size a reusable lut buffer for `n` entries *without* zero-scrubbing
/// when the length already matches. Callers overwrite every entry, and
/// these tables are rebuilt once per branch-length update — the
/// unconditional `clear` + `resize` memset was pure allocator/memory
/// churn on the branch-update path. Only valid for builders that assign
/// (not accumulate into) every slot.
fn size_for_overwrite(lut: &mut Vec<f64>, n: usize) {
    if lut.len() != n {
        lut.clear();
        lut.resize(n, 0.0);
    }
}

impl TipCodes {
    /// Build the code table from a compressed alignment.
    pub fn from_alignment(comp: &CompressedAlignment) -> Self {
        let aln = &comp.alignment;
        let n_states = aln.alphabet().n_states();
        let mut code_of: HashMap<SiteMask, u16> = HashMap::new();
        let mut codes: Vec<SiteMask> = Vec::new();
        let mut tip_patterns = Vec::with_capacity(aln.n_seqs());
        for t in 0..aln.n_seqs() {
            let row: Vec<u16> = aln
                .seq(t)
                .iter()
                .map(|&mask| {
                    *code_of.entry(mask).or_insert_with(|| {
                        codes.push(mask);
                        u16::try_from(codes.len() - 1).expect("too many distinct masks")
                    })
                })
                .collect();
            tip_patterns.push(row);
        }
        TipCodes {
            n_states,
            codes,
            tip_patterns,
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of distinct codes.
    pub fn n_codes(&self) -> usize {
        self.codes.len()
    }

    /// Number of patterns per tip row.
    pub fn n_patterns(&self) -> usize {
        self.tip_patterns.first().map_or(0, |r| r.len())
    }

    /// Code ids of tip `t` across patterns.
    pub fn tip(&self, t: usize) -> &[u16] {
        &self.tip_patterns[t]
    }

    /// Mask of a code id.
    pub fn mask(&self, code: u16) -> SiteMask {
        self.codes[code as usize]
    }

    /// Restrict to a contiguous pattern range (for site-range sharding):
    /// each tip row is sliced to `range`, while the code table is kept
    /// whole so code ids — and therefore every per-code lookup table —
    /// stay identical across shards and to the unsharded encoding. Codes
    /// that happen not to occur inside `range` merely leave unused lut
    /// rows behind.
    pub fn slice_patterns(&self, range: std::ops::Range<usize>) -> TipCodes {
        TipCodes {
            n_states: self.n_states,
            codes: self.codes.clone(),
            tip_patterns: self
                .tip_patterns
                .iter()
                .map(|row| row[range.clone()].to_vec())
                .collect(),
        }
    }

    /// Fill `lut` (layout `[code][cat][state]`) with
    /// `Σ_y P_c(x, y) · ind_mask(y)` for every distinct code. `lut` is
    /// resized as needed. This is the per-branch table used by the
    /// `newview` kernels for tip children.
    pub fn build_lut(&self, pm: &PMatrices, lut: &mut Vec<f64>) {
        let ns = self.n_states;
        let nc = pm.n_cats();
        size_for_overwrite(lut, self.codes.len() * nc * ns);
        for (ci, &mask) in self.codes.iter().enumerate() {
            for c in 0..nc {
                let p = pm.cat(c);
                let out = &mut lut[(ci * nc + c) * ns..(ci * nc + c) * ns + ns];
                for (x, o) in out.iter_mut().enumerate() {
                    let row = &p[x * ns..(x + 1) * ns];
                    let mut sum = 0.0;
                    for (y, &pxy) in row.iter().enumerate() {
                        if mask >> y & 1 == 1 {
                            sum += pxy;
                        }
                    }
                    *o = sum;
                }
            }
        }
    }

    /// Fill `lut` (layout `[code][cat][state]`) with the *root-side* table
    /// `Σ_x π_x · ind_mask(x) · P_c(x, y)`, used when the virtual root sits
    /// on a tip branch.
    pub fn build_root_lut(&self, pm: &PMatrices, freqs: &[f64], lut: &mut Vec<f64>) {
        let ns = self.n_states;
        let nc = pm.n_cats();
        lut.clear();
        lut.resize(self.codes.len() * nc * ns, 0.0);
        for (ci, &mask) in self.codes.iter().enumerate() {
            for c in 0..nc {
                let p = pm.cat(c);
                let out = &mut lut[(ci * nc + c) * ns..(ci * nc + c) * ns + ns];
                for x in 0..ns {
                    if mask >> x & 1 == 0 {
                        continue;
                    }
                    let row = &p[x * ns..(x + 1) * ns];
                    for (y, o) in out.iter_mut().enumerate() {
                        *o += freqs[x] * row[y];
                    }
                }
            }
        }
    }

    /// Fill `lut` (layout `[code][cat][k]`) with the inverse-eigenvector
    /// projection `Σ_y V⁻¹[k, y] · ind_mask(y)`, the right-hand analogue of
    /// [`TipCodes::build_eigen_lut`] for derivative sumtables whose far
    /// side is a tip.
    pub fn build_eigen_lut_right(
        &self,
        eigen: &EigenDecomp,
        gamma: &DiscreteGamma,
        lut: &mut Vec<f64>,
    ) {
        let ns = self.n_states;
        let nc = gamma.n_cats();
        let v_inv = eigen.v_inv();
        size_for_overwrite(lut, self.codes.len() * nc * ns);
        for (ci, &mask) in self.codes.iter().enumerate() {
            let base = ci * nc * ns;
            for k in 0..ns {
                let mut sum = 0.0;
                for y in 0..ns {
                    if mask >> y & 1 == 1 {
                        sum += v_inv[k * ns + y];
                    }
                }
                for c in 0..nc {
                    lut[base + c * ns + k] = sum;
                }
            }
        }
    }

    /// Fill `lut` (layout `[code][cat][k]`, eigen dimension) with the
    /// π-weighted eigen-projection `Σ_x π_x · ind_mask(x) · V[x, k]`, used
    /// to build branch-length derivative sumtables for tip sides. The table
    /// is category-independent but replicated per category for uniform
    /// indexing with inner-node projections.
    pub fn build_eigen_lut(
        &self,
        eigen: &EigenDecomp,
        gamma: &DiscreteGamma,
        freqs: &[f64],
        lut: &mut Vec<f64>,
    ) {
        let ns = self.n_states;
        let nc = gamma.n_cats();
        let v = eigen.v();
        size_for_overwrite(lut, self.codes.len() * nc * ns);
        for (ci, &mask) in self.codes.iter().enumerate() {
            let base = ci * nc * ns;
            for k in 0..ns {
                let mut sum = 0.0;
                for x in 0..ns {
                    if mask >> x & 1 == 1 {
                        sum += freqs[x] * v[x * ns + k];
                    }
                }
                for c in 0..nc {
                    lut[base + c * ns + k] = sum;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::ReversibleModel;
    use phylo_seq::{compress_patterns, Alignment, Alphabet};

    fn toy_codes() -> TipCodes {
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "ACGTN".into()),
                ("b".into(), "AAGTR".into()),
                ("c".into(), "ACGTC".into()),
            ],
        )
        .unwrap();
        TipCodes::from_alignment(&compress_patterns(&aln))
    }

    #[test]
    fn codes_cover_distinct_masks_only() {
        let tc = toy_codes();
        // Masks present: A, C, G, T, N(0xF), R(0x5) -> 6 codes.
        assert_eq!(tc.n_codes(), 6);
        assert_eq!(tc.n_states(), 4);
        assert_eq!(tc.n_patterns(), 5);
        // Tip rows must decode back to the original masks.
        assert_eq!(tc.mask(tc.tip(0)[0]), 1); // A
        assert_eq!(tc.mask(tc.tip(1)[4]), 0x5); // R
    }

    #[test]
    fn slice_patterns_keeps_code_table_whole() {
        let tc = toy_codes();
        let sub = tc.slice_patterns(1..4);
        assert_eq!(sub.n_codes(), tc.n_codes(), "code ids must be stable");
        assert_eq!(sub.n_patterns(), 3);
        for t in 0..3 {
            assert_eq!(sub.tip(t), &tc.tip(t)[1..4]);
        }
        // Same mask decoding through the sliced view.
        assert_eq!(sub.mask(sub.tip(0)[0]), tc.mask(tc.tip(0)[1]));
    }

    #[test]
    fn lut_matches_direct_sum() {
        let tc = toy_codes();
        let model = ReversibleModel::hky85(2.0, &[0.3, 0.2, 0.2, 0.3]);
        let eigen = model.eigen();
        let gamma = DiscreteGamma::new(0.8, 4);
        let mut pm = PMatrices::new(4, 4);
        pm.update(&eigen, &gamma, 0.17);
        let mut lut = Vec::new();
        tc.build_lut(&pm, &mut lut);
        assert_eq!(lut.len(), tc.n_codes() * 4 * 4);
        for code in 0..tc.n_codes() {
            let mask = tc.mask(code as u16);
            for c in 0..4 {
                for x in 0..4 {
                    let direct: f64 = (0..4)
                        .filter(|&y| mask >> y & 1 == 1)
                        .map(|y| pm.get(c, x, y))
                        .sum();
                    let got = lut[(code * 4 + c) * 4 + x];
                    assert!((got - direct).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn gap_code_lut_is_row_sums_of_one() {
        // For mask 0xF the lut entry is a full row sum of P = 1.
        let tc = toy_codes();
        let gap_code = (0..tc.n_codes() as u16)
            .find(|&c| tc.mask(c) == 0xF)
            .unwrap();
        let model = ReversibleModel::jc69();
        let gamma = DiscreteGamma::new(1.0, 4);
        let mut pm = PMatrices::new(4, 4);
        pm.update(&model.eigen(), &gamma, 0.3);
        let mut lut = Vec::new();
        tc.build_lut(&pm, &mut lut);
        for c in 0..4 {
            for x in 0..4 {
                let got = lut[(gap_code as usize * 4 + c) * 4 + x];
                assert!((got - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn root_lut_sums_to_frequencies() {
        // Root lut for the gap mask: Σ_x π_x P_c(x,y) = π_y (stationarity).
        let tc = toy_codes();
        let gap = (0..tc.n_codes() as u16)
            .find(|&c| tc.mask(c) == 0xF)
            .unwrap();
        let freqs = [0.35, 0.25, 0.22, 0.18];
        let model = ReversibleModel::hky85(3.0, &freqs);
        let gamma = DiscreteGamma::new(1.0, 2);
        let mut pm = PMatrices::new(4, 2);
        pm.update(&model.eigen(), &gamma, 0.4);
        let mut lut = Vec::new();
        tc.build_root_lut(&pm, model.freqs(), &mut lut);
        for c in 0..2 {
            for y in 0..4 {
                let got = lut[(gap as usize * 2 + c) * 4 + y];
                assert!((got - model.freqs()[y]).abs() < 1e-10, "{got}");
            }
        }
    }

    /// Masks survive the mask → code id → mask round trip and the branch
    /// lut matches the direct indicator sum at every supported width.
    fn check_roundtrip_and_lut(comp: &CompressedAlignment, model: &ReversibleModel) {
        let tc = TipCodes::from_alignment(comp);
        let ns = tc.n_states();
        assert_eq!(ns, comp.alignment.alphabet().n_states());
        for t in 0..comp.alignment.n_seqs() {
            for (p, &code) in tc.tip(t).iter().enumerate() {
                assert_eq!(tc.mask(code), comp.alignment.seq(t)[p]);
            }
        }
        let gamma = DiscreteGamma::new(0.7, 2);
        let mut pm = PMatrices::new(ns, 2);
        pm.update(&model.eigen(), &gamma, 0.23);
        let mut lut = Vec::new();
        tc.build_lut(&pm, &mut lut);
        assert_eq!(lut.len(), tc.n_codes() * 2 * ns);
        for code in 0..tc.n_codes() {
            let mask = tc.mask(code as u16);
            for c in 0..2 {
                for x in 0..ns {
                    let direct: f64 = (0..ns)
                        .filter(|&y| mask >> y & 1 == 1)
                        .map(|y| pm.get(c, x, y))
                        .sum();
                    let got = lut[(code * 2 + c) * ns + x];
                    assert!((got - direct).abs() < 1e-13, "ns={ns} {got} vs {direct}");
                }
            }
        }
    }

    #[test]
    fn codes_round_trip_at_dna_protein_codon_widths() {
        // DNA (4 states), including ambiguity codes.
        let dna = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "ACGTRN-".into()),
                ("b".into(), "AYGTAGC".into()),
            ],
        )
        .unwrap();
        check_roundtrip_and_lut(&compress_patterns(&dna), &ReversibleModel::jc69());

        // Protein (20 states), including 'X' and gaps.
        let prot = Alignment::from_chars(
            Alphabet::Protein,
            &[
                ("a".into(), "ARNDCQEGHX-".into()),
                ("b".into(), "ILKMFPSTWYV".into()),
            ],
        )
        .unwrap();
        check_roundtrip_and_lut(
            &compress_patterns(&prot),
            &phylo_models::protein::synthetic_protein(7),
        );

        // Codon (61 states) via triplet re-encoding, including an
        // ambiguous third position and an all-gap codon (all-61 mask,
        // exercising bits up to index 60).
        let codons = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("a".into(), "ATGGCNTAY---".into()),
                ("b".into(), "ATGTTTGGGCCA".into()),
            ],
        )
        .unwrap()
        .to_codons()
        .unwrap();
        assert_eq!(codons.alphabet().n_states(), 61);
        check_roundtrip_and_lut(
            &compress_patterns(&codons),
            &phylo_models::codon::synthetic_codon(7),
        );
    }

    #[test]
    fn eigen_lut_replicates_across_categories() {
        let tc = toy_codes();
        let model = ReversibleModel::jc69();
        let eigen = model.eigen();
        let gamma = DiscreteGamma::new(1.0, 4);
        let mut lut = Vec::new();
        tc.build_eigen_lut(&eigen, &gamma, model.freqs(), &mut lut);
        for code in 0..tc.n_codes() {
            let base = code * 4 * 4;
            for c in 1..4 {
                for k in 0..4 {
                    assert_eq!(lut[base + k], lut[base + c * 4 + k]);
                }
            }
        }
    }
}
