//! Declarative engine construction: one [`EngineSpec`] describing *what*
//! to run, resolved into a boxed [`DynEngine`] that runs it.
//!
//! The paper's experiment matrix is combinatorial — backend (serial,
//! sharded, partitioned) × residency (in-RAM, out-of-core over memory or
//! files, OS-paged) × replacement strategy × I/O pipeline — and the
//! historical one-constructor-per-cell `setup::` API grew a function for
//! every cell actually used. [`EngineSpec`] replaces that with orthogonal
//! axes:
//!
//! * **residency** — [`Residency`]: where ancestral vectors live and how
//!   much RAM they may occupy (fraction `f` or the paper's `-L` byte
//!   budget);
//! * **strategy** — [`StrategyKind`], with tree oracles wired automatically
//!   for the strategies that rank by topology;
//! * **shards** — pattern-parallel shards per partition;
//! * **pipeline** — I/O worker threads and the plan lookahead window;
//! * **kernel** — a forced [`KernelBackend`], or auto-detection;
//! * **partitions** — not an axis of the spec at all: [`EngineSpec::build`]
//!   takes the partition list as data, so the same profile drives a
//!   single-gene and a 100-gene analysis.
//!
//! The resolved engine is a [`Box<dyn DynEngine>`]: serial, sharded and
//! partitioned engines behind one object-safe surface, over type-erased
//! [`BackingStore`]s — which is what lets a *service* hold many engines of
//! heterogeneous shape in one table. Construction-time concerns that used
//! to be ad-hoc (observability recorders, multi-tenant arena grants,
//! cooperative cancellation) enter through [`BuildContext`].
//!
//! A spec round-trips through a flat TOML profile ([`EngineSpec::to_toml`]
//! / [`EngineSpec::from_toml`]) so runs are reproducible from a file and
//! every metrics stream can embed the exact configuration that produced it
//! (the `"profile"` JSONL record).

use crate::likelihood_api::LikelihoodEngine;
use crate::oracle::{SharedTree, TreeOracle};
use crate::partition::{NrBranchEngine, PartitionedPlfEngine};
use crate::sharded::ShardedPlfEngine;
use crate::store_api::{AncestralStore, InRamStore, OocStore, PagedStore};
use crate::{KernelBackend, PlfEngine};
use ooc_core::{
    compressed_capacity_f64s, split_budget, validate_byte_budget, BackingStore, CancelToken,
    CancellingStore, CompressingStore, CompressionMode, FileStore, MemStore, OocConfig, OocResult,
    PrefetchingStore, Recorder, ShardSpec, StrategyKind, TenantGrant, VectorManager,
    DEFAULT_PREFETCH_WINDOW,
};
use phylo_models::ReversibleModel;
use phylo_seq::CompressedAlignment;
use phylo_tree::spr::{NniUndo, SprUndo};
use phylo_tree::{HalfEdgeId, Tree};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------------
// DynEngine: the object-safe engine surface
// ---------------------------------------------------------------------------

/// Everything a job runner needs from an engine, object-safe: the search
/// surface ([`LikelihoodEngine`]), the branch Newton–Raphson hooks
/// ([`NrBranchEngine`]) and the two report shapes jobs ask for beyond
/// them. Implemented by every engine the spec can resolve to, so a
/// service queues heterogeneous jobs against one `Box<dyn DynEngine>`
/// table.
pub trait DynEngine: LikelihoodEngine + NrBranchEngine + Send {
    /// Per-partition log-likelihoods in partition order (a single
    /// unpartitioned engine reports one value).
    fn partition_lnls(&mut self) -> OocResult<Vec<f64>> {
        Ok(vec![self.log_likelihood()?])
    }

    /// `count` full traversals (every vector recomputed each time),
    /// returning the last log-likelihood — the paper's Figure 5 workload.
    fn full_traversals(&mut self, count: usize) -> OocResult<f64> {
        let mut lnl = 0.0;
        for _ in 0..count {
            self.invalidate_all();
            lnl = self.log_likelihood()?;
        }
        Ok(lnl)
    }

    /// Out-of-core statistics per partition, in partition order — so stats
    /// can be reconciled against each partition's own metrics scope
    /// (`None` entries for non-managed members).
    fn partition_ooc_stats(&self) -> Vec<Option<ooc_core::OocStats>> {
        vec![self.ooc_stats()]
    }
}

impl<S: AncestralStore + Send> DynEngine for PlfEngine<S> {
    fn full_traversals(&mut self, count: usize) -> OocResult<f64> {
        PlfEngine::full_traversals(self, count)
    }
}

impl<S: AncestralStore + Send> DynEngine for ShardedPlfEngine<S> {
    fn full_traversals(&mut self, count: usize) -> OocResult<f64> {
        ShardedPlfEngine::full_traversals(self, count)
    }
}

impl<E: LikelihoodEngine + NrBranchEngine + Send> DynEngine for PartitionedPlfEngine<E> {
    fn partition_lnls(&mut self) -> OocResult<Vec<f64>> {
        PartitionedPlfEngine::partition_lnls(self)
    }

    fn partition_ooc_stats(&self) -> Vec<Option<ooc_core::OocStats>> {
        (0..self.n_partitions())
            .map(|i| self.part(i).ooc_stats())
            .collect()
    }
}

// A partitioned engine over *type-erased* members needs the member type
// itself to implement the two member traits; forward through the box.
impl LikelihoodEngine for Box<dyn DynEngine> {
    fn tree(&self) -> &Tree {
        (**self).tree()
    }
    fn alpha(&self) -> f64 {
        (**self).alpha()
    }
    fn set_alpha(&mut self, alpha: f64) {
        (**self).set_alpha(alpha)
    }
    fn invalidate_all(&mut self) {
        (**self).invalidate_all()
    }
    fn log_likelihood(&mut self) -> OocResult<f64> {
        (**self).log_likelihood()
    }
    fn log_likelihood_at(&mut self, root_he: HalfEdgeId, full: bool) -> OocResult<f64> {
        (**self).log_likelihood_at(root_he, full)
    }
    fn set_branch_length(&mut self, h: HalfEdgeId, len: f64) {
        (**self).set_branch_length(h, len)
    }
    fn optimize_branch(&mut self, h: HalfEdgeId, max_iter: u32) -> OocResult<(f64, f64)> {
        (**self).optimize_branch(h, max_iter)
    }
    fn smooth_branches(&mut self, passes: usize, nr_iter: u32) -> OocResult<f64> {
        (**self).smooth_branches(passes, nr_iter)
    }
    fn optimize_alpha(&mut self, tol: f64, max_iter: u32) -> OocResult<(f64, f64)> {
        (**self).optimize_alpha(tol, max_iter)
    }
    fn apply_spr(
        &mut self,
        prune_dir: HalfEdgeId,
        target: HalfEdgeId,
        graft_lens: Option<(f64, f64)>,
    ) -> SprUndo {
        (**self).apply_spr(prune_dir, target, graft_lens)
    }
    fn undo_spr(&mut self, prune_dir: HalfEdgeId, undo: &SprUndo) {
        (**self).undo_spr(prune_dir, undo)
    }
    fn apply_nni(&mut self, h: HalfEdgeId, variant: u8) -> NniUndo {
        (**self).apply_nni(h, variant)
    }
    fn undo_nni(&mut self, undo: &NniUndo) {
        (**self).undo_nni(undo)
    }
    fn ooc_stats(&self) -> Option<ooc_core::OocStats> {
        (**self).ooc_stats()
    }
    fn reset_ooc_stats(&mut self) {
        (**self).reset_ooc_stats()
    }
}

impl NrBranchEngine for Box<dyn DynEngine> {
    fn nr_prepare(&mut self, h: HalfEdgeId) -> OocResult<()> {
        (**self).nr_prepare(h)
    }
    fn nr_derivatives(&mut self, z: f64) -> (f64, f64, f64) {
        (**self).nr_derivatives(z)
    }
}

// ---------------------------------------------------------------------------
// The spec
// ---------------------------------------------------------------------------

/// Where ancestral vectors live, and under which RAM ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Residency {
    /// Everything resident (the standard RAxML baseline).
    InRam,
    /// Out-of-core manager over an in-memory backing store (pure miss-rate
    /// measurements), holding fraction `f` of vectors in slots.
    OocMem {
        /// RAM fraction `f` of vectors kept in slots.
        fraction: f64,
    },
    /// Out-of-core manager over real backing file(s), fraction-sized.
    File {
        /// RAM fraction `f` of vectors kept in slots.
        fraction: f64,
    },
    /// Out-of-core manager over real backing file(s) under the paper's
    /// `-L` byte budget, split across partitions proportionally to their
    /// vector footprints and evenly across shards.
    FileLimit {
        /// Total slot RAM in bytes.
        limit_bytes: u64,
    },
    /// OS-paging baseline: vectors in a demand-paged arena with this much
    /// physical memory (Figure 5's "standard implementation").
    Paged {
        /// Physical bytes of the paged arena.
        phys_bytes: u64,
    },
}

impl Residency {
    /// Stable profile keyword.
    pub fn name(&self) -> &'static str {
        match self {
            Residency::InRam => "inram",
            Residency::OocMem { .. } => "ooc-mem",
            Residency::File { .. } => "file",
            Residency::FileLimit { .. } => "file-limit",
            Residency::Paged { .. } => "paged",
        }
    }

    fn needs_path(&self) -> bool {
        matches!(
            self,
            Residency::File { .. } | Residency::FileLimit { .. } | Residency::Paged { .. }
        )
    }
}

/// A declarative engine configuration. See the module docs for the axes;
/// [`Default`] is a serial in-RAM engine under auto-detected kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// Vector residency and RAM ceiling.
    pub residency: Residency,
    /// Replacement strategy for out-of-core residencies (ignored by
    /// `inram`/`paged`). Tree oracles are wired automatically.
    pub strategy: StrategyKind,
    /// Pattern-parallel shards per partition (1 = serial members).
    pub shards: usize,
    /// Dedicated I/O worker threads per shard (0 = no prefetch pipeline;
    /// requires a file-backed residency).
    pub io_threads: usize,
    /// Plan lookahead window for prefetch hints and the pipeline.
    pub window: usize,
    /// Forced kernel backend; `None` auto-detects per
    /// [`KernelBackend::choose`].
    pub kernel: Option<KernelBackend>,
    /// Γ shape parameter at construction.
    pub alpha: f64,
    /// Discrete Γ categories.
    pub n_cats: usize,
    /// §3.4 read skipping.
    pub read_skipping: bool,
    /// Write every evicted vector back even if clean.
    pub always_write_back: bool,
    /// Scale-exponent-aware APV compression behind the backing store
    /// (`None` = raw `f64`s). Requires a managed residency — slots hold
    /// decoded vectors, so in-RAM and OS-paged runs have nothing to
    /// compress. [`CompressionMode::Exp`] is bit-exact;
    /// [`CompressionMode::ExpF32`] is error-bounded
    /// (see [`ooc_core::exp_f32_lnl_error_bound`]).
    pub compression: Option<CompressionMode>,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            residency: Residency::InRam,
            strategy: StrategyKind::Lru,
            shards: 1,
            io_threads: 0,
            window: DEFAULT_PREFETCH_WINDOW,
            kernel: None,
            alpha: 0.8,
            n_cats: 4,
            read_skipping: true,
            always_write_back: false,
            compression: None,
        }
    }
}

/// Why a spec could not be validated, parsed or built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid engine spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<ooc_core::OocConfigError> for SpecError {
    fn from(e: ooc_core::OocConfigError) -> Self {
        SpecError(e.to_string())
    }
}

impl From<std::io::Error> for SpecError {
    fn from(e: std::io::Error) -> Self {
        SpecError(format!("backing-store I/O failed: {e}"))
    }
}

/// Creating the backing vector file is the build's most likely I/O
/// failure — name the path, not just the errno.
fn vector_file_error(path: &Path, e: std::io::Error) -> SpecError {
    SpecError(format!(
        "cannot create vector file '{}': {e}",
        path.display()
    ))
}

/// One partition's data, borrowed for the duration of a build.
pub struct PartSpec<'a> {
    /// Partition name (labels reports and backing files).
    pub name: String,
    /// Pattern-compressed alignment of this partition's columns.
    pub comp: &'a CompressedAlignment,
    /// The partition's substitution model.
    pub model: &'a ReversibleModel,
}

/// Construction-time context: everything orthogonal to the spec axes that
/// an engine may need wired in — backing-file location, observability,
/// multi-tenant memory grants and cooperative cancellation.
#[derive(Default)]
pub struct BuildContext {
    /// Base path for file-backed residencies (partition `i` appends
    /// `.p<i>` exactly like the historical constructors). Required for
    /// `file`, `file-limit` and `paged`.
    pub vector_path: Option<PathBuf>,
    /// Arena grant every manager charges its slot buffers against
    /// (multi-tenant mode; see [`ooc_core::SlotArena`]).
    pub tenant: Option<TenantGrant>,
    /// Cancellation token enforced at every backing-store transfer.
    pub cancel: Option<CancelToken>,
    /// Recorder per partition name (`""` for an unpartitioned build);
    /// attached to each member engine.
    #[allow(clippy::type_complexity)]
    pub recorders: Option<Box<dyn Fn(&str) -> Recorder + Send + Sync>>,
}

impl BuildContext {
    /// An empty context (in-memory residencies, no instrumentation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the backing-file base path.
    pub fn vector_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.vector_path = Some(path.into());
        self
    }

    /// Attach a tenant grant (multi-tenant slot arena).
    pub fn tenant(mut self, grant: TenantGrant) -> Self {
        self.tenant = Some(grant);
        self
    }

    /// Attach a cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach a per-partition recorder factory.
    pub fn recorders(mut self, f: impl Fn(&str) -> Recorder + Send + Sync + 'static) -> Self {
        self.recorders = Some(Box::new(f));
        self
    }
}

/// A resolved engine plus the shared-tree handles of any topology-aware
/// replacement strategies (refresh them after SPR/NNI rearrangements).
pub struct BuiltEngine {
    /// The engine, type-erased.
    pub engine: Box<dyn DynEngine>,
    /// One handle per oracle-wired manager.
    pub handles: Vec<SharedTree>,
}

/// The manager store type every out-of-core build resolves to.
type DynStore = Box<dyn BackingStore + Send>;

impl EngineSpec {
    /// Validate the axis combination (cheap; [`EngineSpec::build`] and
    /// [`EngineSpec::from_toml`] both call this).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.shards == 0 {
            return Err(SpecError("shards must be at least 1".into()));
        }
        if self.window == 0 {
            return Err(SpecError("window must be at least 1".into()));
        }
        if self.n_cats == 0 {
            return Err(SpecError("n_cats must be at least 1".into()));
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(SpecError(format!(
                "alpha must be positive, got {}",
                self.alpha
            )));
        }
        match self.residency {
            Residency::OocMem { fraction } | Residency::File { fraction } => {
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(SpecError(format!(
                        "fraction must be in (0, 1], got {fraction}"
                    )));
                }
            }
            Residency::FileLimit { limit_bytes } => validate_byte_budget(limit_bytes)?,
            Residency::Paged { phys_bytes } => {
                validate_byte_budget(phys_bytes)?;
                if self.shards > 1 {
                    return Err(SpecError("paged residency cannot be sharded".into()));
                }
            }
            Residency::InRam => {}
        }
        if self.io_threads > 0
            && !matches!(
                self.residency,
                Residency::File { .. } | Residency::FileLimit { .. }
            )
        {
            return Err(SpecError(format!(
                "io_threads requires a file-backed residency, got '{}'",
                self.residency.name()
            )));
        }
        if self.compression.is_some()
            && matches!(self.residency, Residency::InRam | Residency::Paged { .. })
        {
            return Err(SpecError(format!(
                "compression requires a managed residency \
                 (ooc-mem | file | file-limit), got '{}'",
                self.residency.name()
            )));
        }
        Ok(())
    }

    /// Slot-RAM demand of this spec over the given data: `(want, min)`
    /// bytes, where `want` is what the engine would occupy unconstrained
    /// (every manager's full slot allocation; total vector bytes for
    /// `inram`, the arena size for `paged`) and `min` the guaranteed floor
    /// admission control must promise (each manager's 3 pinned slots).
    /// This is what a service hands to [`ooc_core::SlotArena::admit`]
    /// *before* paying for construction.
    pub fn memory_demand(
        &self,
        tree: &Tree,
        parts: &[PartSpec<'_>],
    ) -> Result<(u64, u64), SpecError> {
        self.validate()?;
        if parts.is_empty() {
            return Err(SpecError("need at least one partition".into()));
        }
        let n_items = tree.n_inner() as u64;
        let budgets = self.partition_budgets(tree, parts);
        let mut want = 0u64;
        let mut min = 0u64;
        for (i, part) in parts.iter().enumerate() {
            for width in self.manager_widths(part.comp) {
                let w = width as u64;
                match self.residency {
                    Residency::InRam => {
                        want += n_items * w * 8;
                        min += n_items * w * 8;
                    }
                    Residency::Paged { phys_bytes } => {
                        want += phys_bytes;
                        min += phys_bytes;
                    }
                    _ => {
                        let cfg =
                            self.ooc_config(tree.n_inner(), width, budgets.as_ref().map(|b| b[i]))?;
                        want += cfg.n_slots as u64 * w * 8;
                        min += 3 * w * 8;
                    }
                }
            }
        }
        Ok((want, min))
    }

    /// Backing-store demand of this spec over the given data:
    /// `(logical, reserved)` bytes. `logical` is the raw `f64` footprint
    /// of every managed vector; `reserved` is what the backing store
    /// provisions — equal when uncompressed, the worst-case encoded
    /// capacity under [`EngineSpec::compression`] otherwise (actual
    /// on-disk traffic is reported at run time through the
    /// `compress/bytes-disk` metric and normally sits far below
    /// `logical`). Non-managed residencies (in-RAM, paged) keep no
    /// backing store and report `(0, 0)`.
    pub fn disk_demand(
        &self,
        tree: &Tree,
        parts: &[PartSpec<'_>],
    ) -> Result<(u64, u64), SpecError> {
        self.validate()?;
        if matches!(self.residency, Residency::InRam | Residency::Paged { .. }) {
            return Ok((0, 0));
        }
        let n_items = tree.n_inner() as u64;
        let mut logical = 0u64;
        let mut reserved = 0u64;
        for part in parts {
            let stride = PlfEngine::<InRamStore>::dims_for(part.comp, self.n_cats).site_stride();
            for width in self.manager_widths(part.comp) {
                logical += n_items * width as u64 * 8;
                let cap = match self.compression {
                    Some(mode) => compressed_capacity_f64s(width, stride, mode),
                    None => width,
                };
                reserved += n_items * cap as u64 * 8;
            }
        }
        Ok((logical, reserved))
    }

    /// Per-partition resident slot counts the spec resolves to — the
    /// CLI's "N of M vectors in RAM" report without building anything.
    /// `None` entries for non-managed residencies (in-RAM, paged); for
    /// sharded partitions the count is per shard manager (the smallest,
    /// when the pattern split is uneven).
    pub fn slot_counts(
        &self,
        tree: &Tree,
        parts: &[PartSpec<'_>],
    ) -> Result<Vec<Option<usize>>, SpecError> {
        self.validate()?;
        if matches!(self.residency, Residency::InRam | Residency::Paged { .. }) {
            return Ok(vec![None; parts.len()]);
        }
        let budgets = self.partition_budgets(tree, parts);
        parts
            .iter()
            .enumerate()
            .map(|(i, part)| {
                let budget = budgets.as_ref().map(|b| b[i]);
                self.manager_widths(part.comp)
                    .into_iter()
                    .map(|w| Ok(self.ooc_config(tree.n_inner(), w, budget)?.n_slots))
                    .collect::<Result<Vec<_>, SpecError>>()
                    .map(|slots| slots.into_iter().min())
            })
            .collect()
    }

    /// Resolve the spec over `tree` and `parts` into a boxed engine. A
    /// single partition yields the member engine directly; several yield a
    /// [`PartitionedPlfEngine`] over type-erased members.
    pub fn build(
        &self,
        tree: &Tree,
        parts: &[PartSpec<'_>],
        ctx: &BuildContext,
    ) -> Result<BuiltEngine, SpecError> {
        self.validate()?;
        if parts.is_empty() {
            return Err(SpecError("need at least one partition".into()));
        }
        if self.residency.needs_path() && ctx.vector_path.is_none() {
            return Err(SpecError(format!(
                "residency '{}' needs BuildContext::vector_path",
                self.residency.name()
            )));
        }
        let mut handles = Vec::new();
        let budgets = self.partition_budgets(tree, parts);
        if parts.len() == 1 {
            let budget = budgets.as_ref().map(|b| b[0]);
            let engine = self.build_member(tree, &parts[0], budget, ctx, "", &mut handles)?;
            return Ok(BuiltEngine { engine, handles });
        }
        let members = parts
            .iter()
            .enumerate()
            .map(|(i, part)| {
                self.build_member(
                    tree,
                    part,
                    budgets.as_ref().map(|b| b[i]),
                    ctx,
                    &format!("p{i}"),
                    &mut handles,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let names = parts.iter().map(|p| p.name.clone()).collect();
        let engine: Box<dyn DynEngine> = Box::new(PartitionedPlfEngine::new(members, names));
        Ok(BuiltEngine { engine, handles })
    }

    /// Per-partition `-L` budgets (largest-remainder split over vector
    /// footprints), or `None` for non-budgeted residencies.
    fn partition_budgets(&self, tree: &Tree, parts: &[PartSpec<'_>]) -> Option<Vec<u64>> {
        let Residency::FileLimit { limit_bytes } = self.residency else {
            return None;
        };
        if parts.len() == 1 {
            return Some(vec![limit_bytes]);
        }
        let n_items = tree.n_inner() as u64;
        let weights: Vec<u64> = parts
            .iter()
            .map(|p| {
                let dims = PlfEngine::<InRamStore>::dims_for(p.comp, self.n_cats);
                n_items * dims.width() as u64 * 8
            })
            .collect();
        Some(split_budget(limit_bytes, &weights))
    }

    /// Widths of the managers one partition resolves to (per shard, or the
    /// full partition width when serial / non-managed).
    fn manager_widths(&self, comp: &CompressedAlignment) -> Vec<usize> {
        if self.shards > 1 && !matches!(self.residency, Residency::InRam | Residency::Paged { .. })
        {
            let spec = ShardSpec::even(comp.n_patterns(), self.shards);
            ShardedPlfEngine::<InRamStore>::shard_dims(comp, self.n_cats, &spec)
                .iter()
                .map(|d| d.width())
                .collect()
        } else {
            vec![PlfEngine::<InRamStore>::dims_for(comp, self.n_cats).width()]
        }
    }

    /// The out-of-core config of one manager under this spec.
    fn ooc_config(
        &self,
        n_items: usize,
        width: usize,
        partition_budget: Option<u64>,
    ) -> Result<OocConfig, SpecError> {
        let builder = OocConfig::builder(n_items, width)
            .prefetch_window(self.window)
            .read_skipping(self.read_skipping)
            .always_write_back(self.always_write_back);
        let builder = match self.residency {
            Residency::OocMem { fraction } | Residency::File { fraction } => {
                builder.fraction(fraction)
            }
            Residency::FileLimit { .. } => {
                let budget = partition_budget.expect("file-limit build passes a budget");
                let per_shard = (budget / self.shards as u64).max(1);
                builder.byte_limit(per_shard)
            }
            _ => unreachable!("ooc_config only called for managed residencies"),
        };
        Ok(builder.build()?)
    }

    /// Build the strategy for one manager, wiring a tree oracle for the
    /// topology-aware kinds and collecting its refresh handle.
    fn strategy(
        &self,
        tree: &Tree,
        handles: &mut Vec<SharedTree>,
    ) -> Box<dyn ooc_core::ReplacementStrategy> {
        match self.strategy {
            StrategyKind::Topological | StrategyKind::NextUse => {
                let shared = SharedTree::new(tree);
                let oracle = TreeOracle::new(shared.clone());
                handles.push(shared);
                self.strategy.build(Some(Box::new(oracle)))
            }
            _ => self.strategy.build(None),
        }
    }

    /// Type-erase one manager store, wrapping cancellation around it.
    fn finish_store<S: BackingStore + Send + 'static>(store: S, ctx: &BuildContext) -> DynStore {
        match &ctx.cancel {
            Some(token) => Box::new(CancellingStore::new(store, token.clone())),
            None => Box::new(store),
        }
    }

    /// The width one manager's *inner* backing store is created with: the
    /// logical width raw, or the worst-case encoded capacity under
    /// [`EngineSpec::compression`].
    fn backing_width(&self, width: usize, stride: usize) -> usize {
        match self.compression {
            Some(mode) => compressed_capacity_f64s(width, stride, mode),
            None => width,
        }
    }

    /// An in-memory backing store for one manager, compressed per the
    /// spec and type-erased.
    fn mem_store(
        &self,
        n_items: usize,
        width: usize,
        stride: usize,
        ctx: &BuildContext,
        rec: Option<&Recorder>,
    ) -> DynStore {
        match self.compression {
            Some(mode) => {
                let inner = MemStore::new(n_items, self.backing_width(width, stride));
                let mut cs = CompressingStore::new(inner, n_items, width, stride, mode);
                if let Some(r) = rec {
                    cs.set_recorder(r.clone());
                }
                Self::finish_store(cs, ctx)
            }
            None => Self::finish_store(MemStore::new(n_items, width), ctx),
        }
    }

    /// One manager over a type-erased store.
    fn manager(
        &self,
        cfg: OocConfig,
        tree: &Tree,
        store: DynStore,
        ctx: &BuildContext,
        handles: &mut Vec<SharedTree>,
        rec: Option<&Recorder>,
    ) -> VectorManager<DynStore> {
        let strategy = self.strategy(tree, handles);
        let mut mgr = VectorManager::new(cfg, strategy, store);
        if let Some(grant) = &ctx.tenant {
            mgr.attach_tenant(grant.clone());
        }
        // The manager carries its own recorder (demand-read / write-back
        // spans, per-access histograms); the engine-level recorder set in
        // `assemble` only covers combine batches.
        if let Some(r) = rec {
            mgr.set_recorder(r.clone());
        }
        mgr
    }

    /// Build one partition's member engine.
    fn build_member(
        &self,
        tree: &Tree,
        part: &PartSpec<'_>,
        partition_budget: Option<u64>,
        ctx: &BuildContext,
        file_tag: &str,
        handles: &mut Vec<SharedTree>,
    ) -> Result<Box<dyn DynEngine>, SpecError> {
        let n_items = tree.n_inner();
        let part_path = |base: &Path| -> PathBuf {
            if file_tag.is_empty() {
                base.to_path_buf()
            } else {
                base.with_extension(file_tag)
            }
        };
        let rec = ctx.recorders.as_ref().map(|f| f(&part.name));
        let engine: Box<dyn DynEngine> = match self.residency {
            Residency::InRam => {
                let dims = PlfEngine::<InRamStore>::dims_for(part.comp, self.n_cats);
                let store = InRamStore::new(n_items, dims.width());
                Box::new(self.assemble(tree, part, store, rec))
            }
            Residency::Paged { phys_bytes } => {
                let dims = PlfEngine::<InRamStore>::dims_for(part.comp, self.n_cats);
                let total = n_items * dims.width() * 8;
                let base = ctx.vector_path.as_deref().expect("checked in build");
                let arena =
                    pager_sim::PagedArena::new(total, phys_bytes as usize, part_path(base))?;
                let store = PagedStore::new(arena, n_items, dims.width());
                Box::new(self.assemble(tree, part, store, rec))
            }
            Residency::OocMem { .. } => {
                let stride =
                    PlfEngine::<InRamStore>::dims_for(part.comp, self.n_cats).site_stride();
                if self.shards > 1 {
                    let (spec, widths) = self.shard_layout(part.comp);
                    let stores = widths
                        .iter()
                        .map(|&w| {
                            let cfg = self.ooc_config(n_items, w, partition_budget)?;
                            let store = self.mem_store(n_items, w, stride, ctx, rec.as_ref());
                            Ok(OocStore::new(self.manager(
                                cfg,
                                tree,
                                store,
                                ctx,
                                handles,
                                rec.as_ref(),
                            )))
                        })
                        .collect::<Result<Vec<_>, SpecError>>()?;
                    Box::new(self.assemble_sharded(tree, part, spec, stores, rec))
                } else {
                    let dims = PlfEngine::<InRamStore>::dims_for(part.comp, self.n_cats);
                    let w = dims.width();
                    let cfg = self.ooc_config(n_items, w, partition_budget)?;
                    let store = self.mem_store(n_items, w, stride, ctx, rec.as_ref());
                    let ooc =
                        OocStore::new(self.manager(cfg, tree, store, ctx, handles, rec.as_ref()));
                    Box::new(self.assemble(tree, part, ooc, rec))
                }
            }
            Residency::File { .. } | Residency::FileLimit { .. } => {
                let base = ctx.vector_path.as_deref().expect("checked in build");
                let path = part_path(base);
                let stride =
                    PlfEngine::<InRamStore>::dims_for(part.comp, self.n_cats).site_stride();
                if self.shards > 1 {
                    let (spec, widths) = self.shard_layout(part.comp);
                    // Regions are provisioned at the (worst-case) encoded
                    // capacity; the manager still sees logical widths.
                    let file_widths: Vec<usize> = widths
                        .iter()
                        .map(|&w| self.backing_width(w, stride))
                        .collect();
                    let regions = FileStore::create_regions(&path, n_items, &file_widths)
                        .map_err(|e| vector_file_error(&path, e))?;
                    let stores = regions
                        .into_iter()
                        .zip(&widths)
                        .map(|(region, &w)| {
                            let cfg = self.ooc_config(n_items, w, partition_budget)?;
                            let store =
                                self.pipeline_store(region, n_items, w, stride, ctx, rec.as_ref())?;
                            Ok(OocStore::new(self.manager(
                                cfg,
                                tree,
                                store,
                                ctx,
                                handles,
                                rec.as_ref(),
                            )))
                        })
                        .collect::<Result<Vec<_>, SpecError>>()?;
                    Box::new(self.assemble_sharded(tree, part, spec, stores, rec))
                } else {
                    let dims = PlfEngine::<InRamStore>::dims_for(part.comp, self.n_cats);
                    let w = dims.width();
                    let cfg = self.ooc_config(n_items, w, partition_budget)?;
                    let file = FileStore::create(&path, n_items, self.backing_width(w, stride))
                        .map_err(|e| vector_file_error(&path, e))?;
                    let store = self.pipeline_store(file, n_items, w, stride, ctx, rec.as_ref())?;
                    let ooc =
                        OocStore::new(self.manager(cfg, tree, store, ctx, handles, rec.as_ref()));
                    Box::new(self.assemble(tree, part, ooc, rec))
                }
            }
        };
        Ok(engine)
    }

    /// Shard layout of one partition: the pattern split and the per-shard
    /// vector widths.
    fn shard_layout(&self, comp: &CompressedAlignment) -> (ShardSpec, Vec<usize>) {
        let spec = ShardSpec::even(comp.n_patterns(), self.shards);
        let widths = ShardedPlfEngine::<InRamStore>::shard_dims(comp, self.n_cats, &spec)
            .iter()
            .map(|d| d.width())
            .collect();
        (spec, widths)
    }

    /// Wrap a shard's file store in the spec's compression codec and the
    /// prefetch pipeline (when `io_threads > 0`) and type-erase it. The
    /// codec sits *below* the pipeline: prefetch staging holds decoded
    /// vectors and worker threads decode off the demand path, each through
    /// its own scratch-buffered [`CompressingStore`] clone.
    fn pipeline_store(
        &self,
        store: FileStore,
        n_items: usize,
        width: usize,
        stride: usize,
        ctx: &BuildContext,
        rec: Option<&Recorder>,
    ) -> Result<DynStore, SpecError> {
        match self.compression {
            Some(mode) => {
                let mut cs = CompressingStore::new(store, n_items, width, stride, mode);
                if let Some(r) = rec {
                    cs.set_recorder(r.clone());
                }
                self.pipeline_any(cs, CompressingStore::try_clone, n_items, width, ctx, rec)
            }
            None => self.pipeline_any(store, FileStore::try_clone, n_items, width, ctx, rec),
        }
    }

    /// Pipeline any cloneable store: `io_threads` worker handles from
    /// `clone_fn`, or a bare type-erased store when the pipeline is off.
    fn pipeline_any<S>(
        &self,
        store: S,
        clone_fn: impl Fn(&S) -> std::io::Result<S>,
        n_items: usize,
        width: usize,
        ctx: &BuildContext,
        rec: Option<&Recorder>,
    ) -> Result<DynStore, SpecError>
    where
        S: BackingStore + Send + 'static,
    {
        if self.io_threads == 0 {
            return Ok(Self::finish_store(store, ctx));
        }
        let workers = (0..self.io_threads)
            .map(|_| clone_fn(&store))
            .collect::<std::io::Result<Vec<_>>>()?;
        let mut pipelined = PrefetchingStore::with_pool(store, workers, n_items, width);
        if let Some(r) = rec {
            pipelined.set_recorder(r.clone());
        }
        Ok(Self::finish_store(pipelined, ctx))
    }

    /// Assemble a serial member engine over any ancestral store.
    fn assemble<S: AncestralStore + Send + 'static>(
        &self,
        tree: &Tree,
        part: &PartSpec<'_>,
        store: S,
        rec: Option<Recorder>,
    ) -> PlfEngine<S> {
        let mut e = PlfEngine::new(
            tree.clone(),
            part.comp,
            part.model.clone(),
            self.alpha,
            self.n_cats,
            store,
        );
        if let Some(k) = self.kernel {
            e.set_kernel(k);
        }
        if let Some(rec) = rec {
            e.set_recorder(rec);
        }
        e
    }

    /// Assemble a sharded member engine over per-shard stores.
    fn assemble_sharded<S: AncestralStore + Send + 'static>(
        &self,
        tree: &Tree,
        part: &PartSpec<'_>,
        spec: ShardSpec,
        stores: Vec<S>,
        rec: Option<Recorder>,
    ) -> ShardedPlfEngine<S> {
        let mut e = ShardedPlfEngine::new(
            tree.clone(),
            part.comp,
            part.model.clone(),
            self.alpha,
            self.n_cats,
            spec,
            stores,
        );
        if let Some(k) = self.kernel {
            e.set_kernel(k);
        }
        if let Some(rec) = rec {
            e.set_recorder(rec);
        }
        e
    }
}

// ---------------------------------------------------------------------------
// TOML profile round-trip
// ---------------------------------------------------------------------------

impl EngineSpec {
    /// Serialize to a flat TOML profile (hand-rolled — the workspace adds
    /// no TOML dependency). Stable key order; [`EngineSpec::from_toml`]
    /// round-trips it exactly.
    pub fn to_toml(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("# ooc-plf engine profile\n");
        out.push_str(&format!("residency = \"{}\"\n", self.residency.name()));
        match self.residency {
            Residency::OocMem { fraction } | Residency::File { fraction } => {
                out.push_str(&format!("fraction = {fraction}\n"));
            }
            Residency::FileLimit { limit_bytes } => {
                out.push_str(&format!("limit_bytes = {limit_bytes}\n"));
            }
            Residency::Paged { phys_bytes } => {
                out.push_str(&format!("phys_bytes = {phys_bytes}\n"));
            }
            Residency::InRam => {}
        }
        let (strategy, seed) = match self.strategy {
            StrategyKind::Random { seed } => ("random", Some(seed)),
            StrategyKind::Lru => ("lru", None),
            StrategyKind::Lfu => ("lfu", None),
            StrategyKind::Topological => ("topological", None),
            StrategyKind::NextUse => ("next-use", None),
        };
        out.push_str(&format!("strategy = \"{strategy}\"\n"));
        if let Some(seed) = seed {
            out.push_str(&format!("seed = {seed}\n"));
        }
        out.push_str(&format!("shards = {}\n", self.shards));
        out.push_str(&format!("io_threads = {}\n", self.io_threads));
        out.push_str(&format!("window = {}\n", self.window));
        out.push_str(&format!(
            "kernel = \"{}\"\n",
            self.kernel.map_or("auto", |k| k.name())
        ));
        out.push_str(&format!("alpha = {}\n", self.alpha));
        out.push_str(&format!("n_cats = {}\n", self.n_cats));
        out.push_str(&format!("read_skipping = {}\n", self.read_skipping));
        out.push_str(&format!("always_write_back = {}\n", self.always_write_back));
        out.push_str(&format!(
            "compression = \"{}\"\n",
            self.compression.map_or("none", |m| m.name())
        ));
        out
    }

    /// Parse a flat TOML profile produced by [`EngineSpec::to_toml`] (or
    /// written by hand). Unknown keys and malformed values are errors;
    /// omitted keys keep their [`Default`] values.
    pub fn from_toml(text: &str) -> Result<EngineSpec, SpecError> {
        let mut keys: Vec<(String, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // The spec is the flat key block at the top of the profile;
            // the first `[section]` header ends it. Tuned profiles append
            // a `[tune]` section of provenance the engine ignores.
            if line.starts_with('[') {
                break;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(SpecError(format!(
                    "profile line {}: expected 'key = value', got '{raw}'",
                    lineno + 1
                )));
            };
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .unwrap_or(value);
            keys.push((key.trim().to_string(), value.to_string()));
        }
        let find = |k: &str| {
            keys.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
        };
        let parse_u64 = |k: &str| -> Result<Option<u64>, SpecError> {
            find(k)
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| SpecError(format!("key '{k}': invalid integer '{v}'")))
                })
                .transpose()
        };
        let parse_f64 = |k: &str| -> Result<Option<f64>, SpecError> {
            find(k)
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| SpecError(format!("key '{k}': invalid number '{v}'")))
                })
                .transpose()
        };
        let parse_bool = |k: &str| -> Result<Option<bool>, SpecError> {
            find(k)
                .map(|v| {
                    v.parse::<bool>()
                        .map_err(|_| SpecError(format!("key '{k}': invalid boolean '{v}'")))
                })
                .transpose()
        };

        const KNOWN: [&str; 14] = [
            "residency",
            "fraction",
            "limit_bytes",
            "phys_bytes",
            "strategy",
            "seed",
            "shards",
            "io_threads",
            "window",
            "kernel",
            "alpha",
            "n_cats",
            "read_skipping",
            "compression",
        ];
        for (key, _) in &keys {
            if !KNOWN.contains(&key.as_str()) && key != "always_write_back" {
                return Err(SpecError(format!("unknown profile key '{key}'")));
            }
        }

        let mut spec = EngineSpec::default();
        if let Some(name) = find("residency") {
            spec.residency = match name {
                "inram" => Residency::InRam,
                "ooc-mem" => Residency::OocMem {
                    fraction: parse_f64("fraction")?.ok_or_else(|| {
                        SpecError("residency 'ooc-mem' needs key 'fraction'".into())
                    })?,
                },
                "file" => Residency::File {
                    fraction: parse_f64("fraction")?
                        .ok_or_else(|| SpecError("residency 'file' needs key 'fraction'".into()))?,
                },
                "file-limit" => Residency::FileLimit {
                    limit_bytes: parse_u64("limit_bytes")?.ok_or_else(|| {
                        SpecError("residency 'file-limit' needs key 'limit_bytes'".into())
                    })?,
                },
                "paged" => Residency::Paged {
                    phys_bytes: parse_u64("phys_bytes")?.ok_or_else(|| {
                        SpecError("residency 'paged' needs key 'phys_bytes'".into())
                    })?,
                },
                other => {
                    return Err(SpecError(format!(
                        "unknown residency '{other}': expected \
                         inram | ooc-mem | file | file-limit | paged"
                    )))
                }
            };
        }
        if let Some(name) = find("strategy") {
            let seed = parse_u64("seed")?.unwrap_or(0);
            spec.strategy = StrategyKind::from_name(name, seed).ok_or_else(|| {
                SpecError(format!(
                    "unknown strategy '{name}': expected \
                     random | lru | lfu | topological | next-use"
                ))
            })?;
        }
        if let Some(v) = parse_u64("shards")? {
            spec.shards = v as usize;
        }
        if let Some(v) = parse_u64("io_threads")? {
            spec.io_threads = v as usize;
        }
        if let Some(v) = parse_u64("window")? {
            spec.window = v as usize;
        }
        if let Some(name) = find("kernel") {
            spec.kernel = match name {
                "auto" | "" => None,
                other => Some(KernelBackend::from_name(other).ok_or_else(|| {
                    SpecError(format!(
                        "unknown kernel '{other}': expected \
                         auto | scalar | generic | dna4 | avx2"
                    ))
                })?),
            };
        }
        if let Some(v) = parse_f64("alpha")? {
            spec.alpha = v;
        }
        if let Some(v) = parse_u64("n_cats")? {
            spec.n_cats = v as usize;
        }
        if let Some(v) = parse_bool("read_skipping")? {
            spec.read_skipping = v;
        }
        if let Some(v) = parse_bool("always_write_back")? {
            spec.always_write_back = v;
        }
        if let Some(name) = find("compression") {
            spec.compression = match name {
                "none" | "" => None,
                other => Some(CompressionMode::from_name(other).ok_or_else(|| {
                    SpecError(format!(
                        "unknown compression '{other}': expected none | exp | exp-f32"
                    ))
                })?),
            };
        }
        spec.validate()?;
        Ok(spec)
    }
}

// ---------------------------------------------------------------------------
// SpecSpace: the autotuner's candidate grid
// ---------------------------------------------------------------------------

/// A declarative grid over the [`EngineSpec`] axes — the autotuner's
/// search space. Every axis is a list of values to try; the cartesian
/// product over all axes, stamped onto `base` (which supplies the axes a
/// space does not sweep, like `alpha`/`n_cats`/`kernel`), is the
/// candidate set. Axes the caller leaves as singletons contribute no
/// combinations, so a space is exactly as wide as its interesting axes.
#[derive(Debug, Clone)]
pub struct SpecSpace {
    /// Values for the non-swept axes.
    pub base: EngineSpec,
    /// Residency candidates.
    pub residencies: Vec<Residency>,
    /// Replacement-strategy candidates.
    pub strategies: Vec<StrategyKind>,
    /// Shard-count candidates.
    pub shards: Vec<usize>,
    /// I/O-thread candidates.
    pub io_threads: Vec<usize>,
    /// Lookahead-window candidates.
    pub windows: Vec<usize>,
    /// Read-skipping candidates.
    pub read_skipping: Vec<bool>,
    /// Always-write-back candidates.
    pub always_write_back: Vec<bool>,
    /// Compression candidates.
    pub compressions: Vec<Option<CompressionMode>>,
}

impl SpecSpace {
    /// The degenerate space containing exactly `base`: every axis a
    /// singleton of the base's value. Widen the axes of interest from
    /// here.
    pub fn around(base: EngineSpec) -> Self {
        SpecSpace {
            residencies: vec![base.residency],
            strategies: vec![base.strategy],
            shards: vec![base.shards],
            io_threads: vec![base.io_threads],
            windows: vec![base.window],
            read_skipping: vec![base.read_skipping],
            always_write_back: vec![base.always_write_back],
            compressions: vec![base.compression],
            base,
        }
    }

    /// Size of the full cartesian product (before validity filtering).
    pub fn len(&self) -> usize {
        self.residencies.len()
            * self.strategies.len()
            * self.shards.len()
            * self.io_threads.len()
            * self.windows.len()
            * self.read_skipping.len()
            * self.always_write_back.len()
            * self.compressions.len()
    }

    /// Whether any axis is empty (the product is then empty too).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every spec in the product, valid or not, in a deterministic order
    /// (residency-major, matching the field order of this struct).
    pub fn enumerate(&self) -> Vec<EngineSpec> {
        let mut out = Vec::with_capacity(self.len());
        for &residency in &self.residencies {
            for &strategy in &self.strategies {
                for &shards in &self.shards {
                    for &io_threads in &self.io_threads {
                        for &window in &self.windows {
                            for &read_skipping in &self.read_skipping {
                                for &always_write_back in &self.always_write_back {
                                    for &compression in &self.compressions {
                                        out.push(EngineSpec {
                                            residency,
                                            strategy,
                                            shards,
                                            io_threads,
                                            window,
                                            read_skipping,
                                            always_write_back,
                                            compression,
                                            ..self.base.clone()
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The product filtered through [`EngineSpec::validate`]: the
    /// buildable candidates plus the count of combinations the validator
    /// rejected (incoherent axis products — paged+sharded, pipelined
    /// in-memory stores, compressed unmanaged residencies — are expected
    /// in a wide grid and reported, not errored).
    pub fn enumerate_valid(&self) -> (Vec<EngineSpec>, usize) {
        let mut valid = Vec::new();
        let mut invalid = 0usize;
        for spec in self.enumerate() {
            if spec.validate().is_ok() {
                valid.push(spec);
            } else {
                invalid += 1;
            }
        }
        (valid, invalid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<EngineSpec> {
        vec![
            EngineSpec::default(),
            EngineSpec {
                residency: Residency::OocMem { fraction: 0.25 },
                strategy: StrategyKind::Random { seed: 11 },
                ..Default::default()
            },
            EngineSpec {
                residency: Residency::File { fraction: 0.5 },
                strategy: StrategyKind::NextUse,
                shards: 4,
                io_threads: 2,
                window: 8,
                kernel: Some(KernelBackend::Scalar),
                ..Default::default()
            },
            EngineSpec {
                residency: Residency::FileLimit {
                    limit_bytes: 1 << 20,
                },
                strategy: StrategyKind::Topological,
                shards: 2,
                alpha: 1.2,
                n_cats: 8,
                read_skipping: false,
                always_write_back: true,
                ..Default::default()
            },
            EngineSpec {
                residency: Residency::Paged {
                    phys_bytes: 1 << 16,
                },
                ..Default::default()
            },
            EngineSpec {
                residency: Residency::File { fraction: 0.3 },
                compression: Some(CompressionMode::Exp),
                io_threads: 1,
                ..Default::default()
            },
            EngineSpec {
                residency: Residency::OocMem { fraction: 0.5 },
                compression: Some(CompressionMode::ExpF32),
                ..Default::default()
            },
        ]
    }

    #[test]
    fn toml_round_trips_every_axis_combination() {
        for spec in all_specs() {
            let text = spec.to_toml();
            let back =
                EngineSpec::from_toml(&text).unwrap_or_else(|e| panic!("{e} in profile:\n{text}"));
            assert_eq!(back, spec, "round-trip drifted for:\n{text}");
        }
    }

    #[test]
    fn from_toml_applies_defaults_for_omitted_keys() {
        let spec = EngineSpec::from_toml("strategy = \"lfu\"\n").unwrap();
        assert_eq!(spec.strategy, StrategyKind::Lfu);
        assert_eq!(spec.residency, Residency::InRam);
        assert_eq!(spec.shards, 1);
        assert_eq!(spec.window, DEFAULT_PREFETCH_WINDOW);
        assert!(spec.read_skipping);
    }

    #[test]
    fn from_toml_rejects_malformed_profiles() {
        assert!(EngineSpec::from_toml("residency = \"floppy\"").is_err());
        assert!(EngineSpec::from_toml("residency = \"ooc-mem\"").is_err()); // no fraction
        assert!(EngineSpec::from_toml("nonsense_key = 3").is_err());
        assert!(EngineSpec::from_toml("shards = banana").is_err());
        assert!(EngineSpec::from_toml("just a line").is_err());
        // Validation runs on parse: zero byte budgets error like the
        // builder does (shared validate_byte_budget).
        let err =
            EngineSpec::from_toml("residency = \"file-limit\"\nlimit_bytes = 0\n").unwrap_err();
        assert!(err.to_string().contains("byte budget must be positive"));
    }

    #[test]
    fn validate_rejects_incoherent_axes() {
        let bad = EngineSpec {
            shards: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = EngineSpec {
            io_threads: 2, // pipeline over an in-memory store
            residency: Residency::OocMem { fraction: 0.5 },
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = EngineSpec {
            residency: Residency::Paged { phys_bytes: 4096 },
            shards: 2,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = EngineSpec {
            residency: Residency::OocMem { fraction: 1.5 },
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        // Compression has no managed store to live behind for in-RAM or
        // OS-paged residencies.
        let bad = EngineSpec {
            compression: Some(CompressionMode::Exp),
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = EngineSpec {
            residency: Residency::Paged { phys_bytes: 4096 },
            compression: Some(CompressionMode::ExpF32),
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn from_toml_stops_at_first_section_header() {
        // A tuned profile: the flat spec block plus a `[tune]` provenance
        // section whose keys are NOT spec keys and must be ignored.
        let text = "residency = \"file-limit\"\nlimit_bytes = 1048576\n\
                    strategy = \"next-use\"\n\n\
                    [tune]\nschema = \"bench-tune-v1\"\npruned = 12\n\
                    measured_secs = 0.25\n";
        let spec = EngineSpec::from_toml(text).unwrap();
        assert_eq!(
            spec.residency,
            Residency::FileLimit {
                limit_bytes: 1 << 20
            }
        );
        assert_eq!(spec.strategy, StrategyKind::NextUse);
        // Everything after the header is invisible — including keys that
        // would otherwise be rejected as unknown.
        assert!(EngineSpec::from_toml("[tune]\nnonsense_key = 3\n").is_ok());
    }

    #[test]
    fn spec_space_product_and_validity_filter() {
        let base = EngineSpec::default();
        let singleton = SpecSpace::around(base.clone());
        assert_eq!(singleton.len(), 1);
        assert!(!singleton.is_empty());
        assert_eq!(singleton.enumerate(), vec![base.clone()]);

        let mut space = SpecSpace::around(base);
        space.residencies = vec![
            Residency::FileLimit {
                limit_bytes: 1 << 20,
            },
            Residency::Paged {
                phys_bytes: 1 << 16,
            },
        ];
        space.strategies = vec![StrategyKind::Lru, StrategyKind::NextUse];
        space.shards = vec![1, 2];
        space.io_threads = vec![0, 1];
        assert_eq!(space.len(), 16);
        assert_eq!(space.enumerate().len(), 16);
        let (valid, invalid) = space.enumerate_valid();
        assert_eq!(valid.len() + invalid, 16);
        // Paged residency is incompatible with shards > 1 and with
        // io_threads > 0: of its 8 combinations only (1 shard, 0 threads)
        // per strategy survives.
        assert_eq!(
            valid
                .iter()
                .filter(|s| matches!(s.residency, Residency::Paged { .. }))
                .count(),
            2
        );
        assert_eq!(invalid, 6);
        for spec in &valid {
            spec.validate().unwrap();
        }
        // Deterministic order: residency-major.
        assert!(matches!(valid[0].residency, Residency::FileLimit { .. }));
    }

    #[test]
    fn from_toml_rejects_unknown_compression() {
        let err =
            EngineSpec::from_toml("residency = \"file\"\nfraction = 0.5\ncompression = \"zip\"\n")
                .unwrap_err();
        assert!(err.to_string().contains("unknown compression"));
    }
}
