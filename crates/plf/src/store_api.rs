//! Pluggable residency backends for ancestral probability vectors.
//!
//! The engine only ever touches vectors through the [`AncestralStore`]
//! access-pattern API (acquire parent-for-write plus children-for-read,
//! pinned together). Three backends implement it:
//!
//! * [`InRamStore`] — everything resident, the standard RAxML baseline,
//! * [`OocStore`] — the paper's out-of-core manager
//!   ([`ooc_core::VectorManager`]),
//! * [`PagedStore`] — vectors in a [`pager_sim::PagedArena`], reproducing
//!   the "standard implementation using OS paging" baseline of Figure 5.
//!
//! Because the numerical kernels are identical, the paper's correctness
//! check applies verbatim: all three must produce bit-identical
//! log-likelihoods.

use ooc_core::{AccessPlan, BackingStore, Intent, OocError, OocOp, OocResult, VectorManager};
use pager_sim::PagedArena;

/// Access-pattern API over ancestral vectors, mirroring the pinning
/// semantics of the paper's `getxvector()`.
pub trait AncestralStore {
    /// Vector width in `f64`s.
    fn width(&self) -> usize;

    /// Submit the access plan of an upcoming traversal: the exact ordered
    /// `{item, intent}` sequence the engine is about to issue. Residency
    /// backends derive read skipping (write-first items), lookahead
    /// prefetch hints and plan-aware replacement from it; backends with no
    /// residency management ignore it.
    fn submit_plan(&mut self, _plan: AccessPlan) {}

    /// Acquire `parent` for writing and the inner children for reading,
    /// all simultaneously live (pinned) for the duration of `f`. Fails
    /// with a contextual [`OocError`] if the backend could not materialise
    /// a vector; `f` is not called in that case.
    fn with_triple<T>(
        &mut self,
        parent: u32,
        left: Option<u32>,
        right: Option<u32>,
        f: impl FnOnce(&mut [f64], Option<&[f64]>, Option<&[f64]>) -> T,
    ) -> OocResult<T>;

    /// Acquire two distinct vectors for reading.
    fn with_pair<T>(&mut self, a: u32, b: u32, f: impl FnOnce(&[f64], &[f64]) -> T)
        -> OocResult<T>;

    /// Acquire one vector; `write == true` promises a full overwrite.
    fn with_one<T>(
        &mut self,
        item: u32,
        write: bool,
        f: impl FnOnce(&mut [f64]) -> T,
    ) -> OocResult<T>;
}

/// All vectors permanently resident (standard implementation).
pub struct InRamStore {
    width: usize,
    vectors: Vec<Box<[f64]>>,
}

impl InRamStore {
    /// Allocate `n_items` zeroed vectors of `width` doubles.
    pub fn new(n_items: usize, width: usize) -> Self {
        InRamStore {
            width,
            vectors: (0..n_items)
                .map(|_| vec![0.0; width].into_boxed_slice())
                .collect(),
        }
    }

    /// Total heap bytes held by vectors.
    pub fn bytes(&self) -> u64 {
        (self.vectors.len() * self.width * 8) as u64
    }
}

impl AncestralStore for InRamStore {
    fn width(&self) -> usize {
        self.width
    }

    fn with_triple<T>(
        &mut self,
        parent: u32,
        left: Option<u32>,
        right: Option<u32>,
        f: impl FnOnce(&mut [f64], Option<&[f64]>, Option<&[f64]>) -> T,
    ) -> OocResult<T> {
        let n = self.vectors.len();
        assert!((parent as usize) < n, "parent {parent} out of range {n}");
        if let Some(l) = left {
            assert!((l as usize) < n, "left child {l} out of range {n}");
            assert_ne!(l, parent, "left child aliases parent");
        }
        if let Some(r) = right {
            assert!((r as usize) < n, "right child {r} out of range {n}");
            assert_ne!(r, parent, "right child aliases parent");
        }
        if let (Some(l), Some(r)) = (left, right) {
            assert_ne!(l, r, "children alias each other");
        }
        // SAFETY: all three indices were bounds-checked above and are
        // pairwise distinct indices into separately boxed buffers, so the
        // mutable and shared borrows cannot alias.
        let base = self.vectors.as_mut_ptr();
        let pv: &mut [f64] = unsafe { &mut *base.add(parent as usize) };
        let lv: Option<&[f64]> = left.map(|i| unsafe { &(**base.add(i as usize)) });
        let rv: Option<&[f64]> = right.map(|i| unsafe { &(**base.add(i as usize)) });
        Ok(f(pv, lv, rv))
    }

    fn with_pair<T>(
        &mut self,
        a: u32,
        b: u32,
        f: impl FnOnce(&[f64], &[f64]) -> T,
    ) -> OocResult<T> {
        assert_ne!(a, b);
        Ok(f(&self.vectors[a as usize], &self.vectors[b as usize]))
    }

    fn with_one<T>(
        &mut self,
        item: u32,
        _write: bool,
        f: impl FnOnce(&mut [f64]) -> T,
    ) -> OocResult<T> {
        Ok(f(&mut self.vectors[item as usize]))
    }
}

/// Vectors managed out-of-core by [`ooc_core::VectorManager`].
pub struct OocStore<S: BackingStore> {
    manager: VectorManager<S>,
}

impl<S: BackingStore> OocStore<S> {
    /// Wrap a configured manager.
    pub fn new(manager: VectorManager<S>) -> Self {
        OocStore { manager }
    }

    /// Access the manager (statistics, store clock, ...).
    pub fn manager(&self) -> &VectorManager<S> {
        &self.manager
    }

    /// Mutable access (e.g. to reset statistics between phases).
    pub fn manager_mut(&mut self) -> &mut VectorManager<S> {
        &mut self.manager
    }
}

impl<S: BackingStore> AncestralStore for OocStore<S> {
    fn width(&self) -> usize {
        self.manager.config().width
    }

    fn submit_plan(&mut self, plan: AccessPlan) {
        self.manager.begin_plan(plan);
    }

    fn with_triple<T>(
        &mut self,
        parent: u32,
        left: Option<u32>,
        right: Option<u32>,
        f: impl FnOnce(&mut [f64], Option<&[f64]>, Option<&[f64]>) -> T,
    ) -> OocResult<T> {
        self.manager.with_triple(parent, left, right, f)
    }

    fn with_pair<T>(
        &mut self,
        a: u32,
        b: u32,
        f: impl FnOnce(&[f64], &[f64]) -> T,
    ) -> OocResult<T> {
        self.manager.with_pair(a, b, f)
    }

    fn with_one<T>(
        &mut self,
        item: u32,
        write: bool,
        f: impl FnOnce(&mut [f64]) -> T,
    ) -> OocResult<T> {
        let intent = if write { Intent::Write } else { Intent::Read };
        self.manager.with_one(item, intent, f)
    }
}

/// Vectors living in a demand-paged arena (the OS-paging baseline). Every
/// access copies whole vectors between the arena (touching its pages) and
/// three scratch buffers; when the arena's physical memory is exhausted,
/// each copy triggers page-granularity swap I/O with no application
/// knowledge — the behaviour the paper's Figure 5 measures for "Standard".
pub struct PagedStore {
    arena: PagedArena,
    width: usize,
    scratch: [Box<[f64]>; 3],
}

impl PagedStore {
    /// Place `n_items` vectors of `width` doubles in `arena`, which must
    /// have at least `n_items · width · 8` bytes of virtual space.
    pub fn new(arena: PagedArena, n_items: usize, width: usize) -> Self {
        assert!(arena.total_bytes() >= n_items * width * 8);
        PagedStore {
            arena,
            width,
            scratch: [
                vec![0.0; width].into_boxed_slice(),
                vec![0.0; width].into_boxed_slice(),
                vec![0.0; width].into_boxed_slice(),
            ],
        }
    }

    /// The underlying arena (fault statistics).
    pub fn arena(&self) -> &PagedArena {
        &self.arena
    }

    /// Mutable arena access.
    pub fn arena_mut(&mut self) -> &mut PagedArena {
        &mut self.arena
    }

    fn index(&self, item: u32) -> usize {
        item as usize * self.width
    }
}

impl AncestralStore for PagedStore {
    fn width(&self) -> usize {
        self.width
    }

    fn with_triple<T>(
        &mut self,
        parent: u32,
        left: Option<u32>,
        right: Option<u32>,
        f: impl FnOnce(&mut [f64], Option<&[f64]>, Option<&[f64]>) -> T,
    ) -> OocResult<T> {
        let [pbuf, lbuf, rbuf] = &mut self.scratch;
        if let Some(l) = left {
            self.arena
                .read_f64s(l as usize * self.width, lbuf)
                .map_err(|e| OocError::item_op(OocOp::Read, l, "arena read", e))?;
        }
        if let Some(r) = right {
            self.arena
                .read_f64s(r as usize * self.width, rbuf)
                .map_err(|e| OocError::item_op(OocOp::Read, r, "arena read", e))?;
        }
        let result = f(pbuf, left.map(|_| &**lbuf), right.map(|_| &**rbuf));
        self.arena
            .write_f64s(parent as usize * self.width, &self.scratch[0])
            .map_err(|e| OocError::item_op(OocOp::Write, parent, "arena write", e))?;
        Ok(result)
    }

    fn with_pair<T>(
        &mut self,
        a: u32,
        b: u32,
        f: impl FnOnce(&[f64], &[f64]) -> T,
    ) -> OocResult<T> {
        assert_ne!(a, b);
        let ia = self.index(a);
        let ib = self.index(b);
        let [abuf, bbuf, _] = &mut self.scratch;
        self.arena
            .read_f64s(ia, abuf)
            .map_err(|e| OocError::item_op(OocOp::Read, a, "arena read", e))?;
        self.arena
            .read_f64s(ib, bbuf)
            .map_err(|e| OocError::item_op(OocOp::Read, b, "arena read", e))?;
        Ok(f(abuf, bbuf))
    }

    fn with_one<T>(
        &mut self,
        item: u32,
        write: bool,
        f: impl FnOnce(&mut [f64]) -> T,
    ) -> OocResult<T> {
        let idx = self.index(item);
        let buf = &mut self.scratch[0];
        if !write {
            self.arena
                .read_f64s(idx, buf)
                .map_err(|e| OocError::item_op(OocOp::Read, item, "arena read", e))?;
        }
        let result = f(buf);
        if write {
            self.arena
                .write_f64s(idx, buf)
                .map_err(|e| OocError::item_op(OocOp::Write, item, "arena write", e))?;
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_core::{MemStore, OocConfig, StrategyKind};

    fn check_store<S: AncestralStore>(store: &mut S, n: usize) {
        let w = store.width();
        // Write every vector through with_one / with_triple paths.
        for item in 0..n as u32 {
            store
                .with_one(item, true, |buf| {
                    for (i, x) in buf.iter_mut().enumerate() {
                        *x = item as f64 + i as f64 * 0.5;
                    }
                })
                .unwrap();
        }
        // Combine 0 and 1 into 2.
        store
            .with_triple(2, Some(0), Some(1), |p, l, r| {
                let (l, r) = (l.unwrap(), r.unwrap());
                for i in 0..w {
                    p[i] = l[i] * r[i];
                }
            })
            .unwrap();
        let expect: Vec<f64> = (0..w)
            .map(|i| (0.0 + i as f64 * 0.5) * (1.0 + i as f64 * 0.5))
            .collect();
        store
            .with_one(2, false, |buf| {
                assert_eq!(&buf[..], &expect[..]);
            })
            .unwrap();
        // Pair access sees consistent data.
        let sum = store.with_pair(0, 1, |a, b| a[3] + b[3]).unwrap();
        assert_eq!(sum, (0.0 + 1.5) + (1.0 + 1.5));
    }

    #[test]
    fn in_ram_store_contract() {
        let mut s = InRamStore::new(6, 32);
        check_store(&mut s, 6);
        assert_eq!(s.bytes(), 6 * 32 * 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn in_ram_triple_rejects_out_of_range_parent() {
        let mut s = InRamStore::new(4, 8);
        let _ = s.with_triple(4, None, None, |_, _, _| ());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn in_ram_triple_rejects_out_of_range_child() {
        let mut s = InRamStore::new(4, 8);
        let _ = s.with_triple(0, Some(9), None, |_, _, _| ());
    }

    #[test]
    #[should_panic(expected = "aliases parent")]
    fn in_ram_triple_rejects_parent_aliasing() {
        let mut s = InRamStore::new(4, 8);
        let _ = s.with_triple(1, Some(0), Some(1), |_, _, _| ());
    }

    #[test]
    #[should_panic(expected = "children alias")]
    fn in_ram_triple_rejects_duplicate_children() {
        let mut s = InRamStore::new(4, 8);
        let _ = s.with_triple(0, Some(2), Some(2), |_, _, _| ());
    }

    #[test]
    fn ooc_store_contract() {
        let mgr = VectorManager::new(
            OocConfig::new(6, 32, 3),
            StrategyKind::Lru.build(None),
            MemStore::new(6, 32),
        );
        let mut s = OocStore::new(mgr);
        check_store(&mut s, 6);
        assert!(s.manager().stats().requests > 0);
    }

    #[test]
    fn paged_store_contract() {
        let dir = tempfile::tempdir().unwrap();
        // Tiny physical memory to force paging during the contract check.
        let arena = PagedArena::new(
            6 * 32 * 8,
            2 * pager_sim::PAGE_SIZE,
            dir.path().join("swap"),
        )
        .unwrap();
        let mut s = PagedStore::new(arena, 6, 32);
        check_store(&mut s, 6);
        assert!(s.arena().stats().faults > 0);
    }
}
