//! Pluggable residency backends for ancestral probability vectors.
//!
//! The engine only ever touches vectors through the [`AncestralStore`]
//! session API: it leases the vectors of one kernel invocation (pins with
//! intents, in access order), works on the borrowed buffers, and finishes
//! the lease. Three backends implement it:
//!
//! * [`InRamStore`] — everything resident, the standard RAxML baseline,
//! * [`OocStore`] — the paper's out-of-core manager
//!   ([`ooc_core::VectorManager`]), whose [`ooc_core::PinnedSession`] is
//!   the lease,
//! * [`PagedStore`] — vectors in a [`pager_sim::PagedArena`], reproducing
//!   the "standard implementation using OS paging" baseline of Figure 5.
//!
//! Because the numerical kernels are identical, the paper's correctness
//! check applies verbatim: all three must produce bit-identical
//! log-likelihoods.

use ooc_core::{
    AccessPlan, AccessRecord, AlignedBuf, BackingStore, Intent, OocError, OocOp, OocResult,
    OocStats, VectorManager,
};
use pager_sim::PagedArena;

/// A live lease over the pinned vectors of one kernel invocation. Vectors
/// are addressed by item id; every id must be among the session's pins.
pub trait VectorSession {
    /// Shared view of a pinned vector.
    fn read(&self, item: u32) -> &[f64];

    /// The combine shape: one mutable target plus up to two shared source
    /// views, simultaneously borrowed (tips have no ancestral vector,
    /// hence the `Option`s). Sources must not alias the target.
    fn rw(
        &mut self,
        target: u32,
        src1: Option<u32>,
        src2: Option<u32>,
    ) -> (&mut [f64], Option<&[f64]>, Option<&[f64]>);

    /// End the lease, propagating any deferred write-back I/O. Dropping a
    /// session without calling this still releases the pins but loses the
    /// error (and, for scratch-based backends, the written data), so the
    /// engine always finishes explicitly after mutating.
    fn finish(self) -> OocResult<()>;
}

/// Access-pattern API over ancestral vectors, mirroring the pinning
/// semantics of the paper's `getxvector()`.
pub trait AncestralStore {
    /// The lease type handed out by [`AncestralStore::session`].
    type Session<'a>: VectorSession
    where
        Self: 'a;

    /// Vector width in `f64`s.
    fn width(&self) -> usize;

    /// Submit the access plan of an upcoming traversal: the exact ordered
    /// `{item, intent}` sequence the engine is about to issue. Residency
    /// backends derive read skipping (write-first items), lookahead
    /// prefetch hints and plan-aware replacement from it; backends with no
    /// residency management ignore it.
    fn submit_plan(&mut self, _plan: AccessPlan) {}

    /// Lease the given vectors, pinned with their intents in access order,
    /// for one kernel invocation. Fails with a contextual [`OocError`] if
    /// the backend could not materialise a vector; nothing stays pinned in
    /// that case.
    fn session(&mut self, pins: &[AccessRecord]) -> OocResult<Self::Session<'_>>;

    /// Residency statistics, if this backend keeps them ([`OocStore`]
    /// does; the baselines return `None`).
    fn ooc_stats(&self) -> Option<OocStats> {
        None
    }

    /// Zero the residency counters (e.g. after a warm-up phase); a no-op
    /// for backends that keep none.
    fn reset_ooc_stats(&mut self) {}
}

/// All vectors permanently resident (standard implementation).
pub struct InRamStore {
    width: usize,
    vectors: Vec<AlignedBuf>,
}

impl InRamStore {
    /// Allocate `n_items` zeroed vectors of `width` doubles, each
    /// 64-byte-aligned ([`ooc_core::APV_ALIGN`]) like the manager's slot
    /// arena, so SIMD kernels see the same alignment in every backend.
    pub fn new(n_items: usize, width: usize) -> Self {
        InRamStore {
            width,
            vectors: (0..n_items).map(|_| AlignedBuf::zeroed(width)).collect(),
        }
    }

    /// Total heap bytes held by vectors.
    pub fn bytes(&self) -> u64 {
        (self.vectors.len() * self.width * 8) as u64
    }
}

/// Lease over an [`InRamStore`]: no residency to manage, but the same
/// pin-set discipline (bounds, duplicates, aliasing) is enforced so
/// contract violations surface in the cheapest backend too.
pub struct InRamSession<'a> {
    vectors: &'a mut [AlignedBuf],
    pins: Vec<u32>,
}

impl InRamSession<'_> {
    fn check_pinned(&self, item: u32) {
        assert!(
            self.pins.contains(&item),
            "item {item} is not pinned in this session"
        );
    }
}

impl VectorSession for InRamSession<'_> {
    fn read(&self, item: u32) -> &[f64] {
        self.check_pinned(item);
        &self.vectors[item as usize]
    }

    fn rw(
        &mut self,
        target: u32,
        src1: Option<u32>,
        src2: Option<u32>,
    ) -> (&mut [f64], Option<&[f64]>, Option<&[f64]>) {
        self.check_pinned(target);
        if let Some(s) = src1 {
            self.check_pinned(s);
            assert_ne!(s, target, "source {s} aliases target");
        }
        if let Some(s) = src2 {
            self.check_pinned(s);
            assert_ne!(s, target, "source {s} aliases target");
        }
        // SAFETY: target, src1, src2 were bounds-checked at session
        // creation and are pairwise distinct indices into separately
        // allocated buffers, so the mutable and shared borrows cannot
        // alias.
        let base = self.vectors.as_mut_ptr();
        let tv: &mut [f64] = unsafe { &mut *base.add(target as usize) };
        let s1: Option<&[f64]> = src1.map(|i| unsafe { &(**base.add(i as usize)) });
        let s2: Option<&[f64]> = src2.map(|i| unsafe { &(**base.add(i as usize)) });
        (tv, s1, s2)
    }

    fn finish(self) -> OocResult<()> {
        Ok(())
    }
}

impl AncestralStore for InRamStore {
    type Session<'a> = InRamSession<'a>;

    fn width(&self) -> usize {
        self.width
    }

    fn session(&mut self, pins: &[AccessRecord]) -> OocResult<InRamSession<'_>> {
        let n = self.vectors.len();
        let mut items = Vec::with_capacity(pins.len());
        for rec in pins {
            assert!(
                (rec.item as usize) < n,
                "item {} out of range {n}",
                rec.item
            );
            assert!(
                !items.contains(&rec.item),
                "item {} pinned twice in one session",
                rec.item
            );
            items.push(rec.item);
        }
        Ok(InRamSession {
            vectors: &mut self.vectors,
            pins: items,
        })
    }
}

/// Vectors managed out-of-core by [`ooc_core::VectorManager`].
pub struct OocStore<S: BackingStore> {
    manager: VectorManager<S>,
}

impl<S: BackingStore> OocStore<S> {
    /// Wrap a configured manager.
    pub fn new(manager: VectorManager<S>) -> Self {
        OocStore { manager }
    }

    /// Access the manager (statistics, store clock, ...).
    pub fn manager(&self) -> &VectorManager<S> {
        &self.manager
    }

    /// Mutable access (e.g. to reset statistics between phases).
    pub fn manager_mut(&mut self) -> &mut VectorManager<S> {
        &mut self.manager
    }
}

/// Lease over an [`OocStore`]: a thin veneer over the manager's own
/// [`ooc_core::PinnedSession`], which holds the slot pins.
pub struct OocSession<'a, S: BackingStore>(ooc_core::PinnedSession<'a, S>);

impl<S: BackingStore> VectorSession for OocSession<'_, S> {
    fn read(&self, item: u32) -> &[f64] {
        self.0.read(item)
    }

    fn rw(
        &mut self,
        target: u32,
        src1: Option<u32>,
        src2: Option<u32>,
    ) -> (&mut [f64], Option<&[f64]>, Option<&[f64]>) {
        self.0.rw(target, src1, src2)
    }

    fn finish(self) -> OocResult<()> {
        // Slots are written back on eviction / flush; releasing the pins
        // (on drop) is all that is needed here.
        Ok(())
    }
}

impl<S: BackingStore> AncestralStore for OocStore<S> {
    type Session<'a>
        = OocSession<'a, S>
    where
        S: 'a;

    fn width(&self) -> usize {
        self.manager.config().width
    }

    fn submit_plan(&mut self, plan: AccessPlan) {
        self.manager.begin_plan(plan);
    }

    fn session(&mut self, pins: &[AccessRecord]) -> OocResult<OocSession<'_, S>> {
        Ok(OocSession(self.manager.session(pins)?))
    }

    fn ooc_stats(&self) -> Option<OocStats> {
        Some(*self.manager.stats())
    }

    fn reset_ooc_stats(&mut self) {
        self.manager.reset_stats();
    }
}

/// Vectors living in a demand-paged arena (the OS-paging baseline). Every
/// session copies whole vectors between the arena (touching its pages) and
/// per-pin scratch buffers; when the arena's physical memory is exhausted,
/// each copy triggers page-granularity swap I/O with no application
/// knowledge — the behaviour the paper's Figure 5 measures for "Standard".
pub struct PagedStore {
    arena: PagedArena,
    width: usize,
    scratch: [AlignedBuf; 3],
}

impl PagedStore {
    /// Place `n_items` vectors of `width` doubles in `arena`, which must
    /// have at least `n_items · width · 8` bytes of virtual space.
    pub fn new(arena: PagedArena, n_items: usize, width: usize) -> Self {
        assert!(arena.total_bytes() >= n_items * width * 8);
        PagedStore {
            arena,
            width,
            scratch: [
                AlignedBuf::zeroed(width),
                AlignedBuf::zeroed(width),
                AlignedBuf::zeroed(width),
            ],
        }
    }

    /// The underlying arena (fault statistics).
    pub fn arena(&self) -> &PagedArena {
        &self.arena
    }

    /// Mutable arena access.
    pub fn arena_mut(&mut self) -> &mut PagedArena {
        &mut self.arena
    }
}

/// Lease over a [`PagedStore`]: read pins were staged into scratch
/// buffers at creation (faulting arena pages in), write pins are copied
/// back to the arena by [`VectorSession::finish`].
pub struct PagedSession<'a> {
    arena: &'a mut PagedArena,
    width: usize,
    scratch: &'a mut [AlignedBuf; 3],
    pins: Vec<AccessRecord>,
}

impl PagedSession<'_> {
    fn pos_of(&self, item: u32) -> usize {
        self.pins
            .iter()
            .position(|rec| rec.item == item)
            .unwrap_or_else(|| panic!("item {item} is not pinned in this session"))
    }
}

impl VectorSession for PagedSession<'_> {
    fn read(&self, item: u32) -> &[f64] {
        &self.scratch[self.pos_of(item)]
    }

    fn rw(
        &mut self,
        target: u32,
        src1: Option<u32>,
        src2: Option<u32>,
    ) -> (&mut [f64], Option<&[f64]>, Option<&[f64]>) {
        let tp = self.pos_of(target);
        let p1 = src1.map(|i| self.pos_of(i));
        let p2 = src2.map(|i| self.pos_of(i));
        assert!(
            Some(tp) != p1 && Some(tp) != p2,
            "target {target} aliases a source"
        );
        // SAFETY: tp, p1, p2 are pairwise distinct indices (pins are
        // duplicate-free) into separately allocated scratch buffers, so
        // the mutable and shared borrows cannot alias.
        let base = self.scratch.as_mut_ptr();
        let tv: &mut [f64] = unsafe { &mut *base.add(tp) };
        let s1: Option<&[f64]> = p1.map(|p| unsafe { &(**base.add(p)) });
        let s2: Option<&[f64]> = p2.map(|p| unsafe { &(**base.add(p)) });
        (tv, s1, s2)
    }

    fn finish(self) -> OocResult<()> {
        for (pos, rec) in self.pins.iter().enumerate() {
            if rec.intent == Intent::Write {
                self.arena
                    .write_f64s(rec.item as usize * self.width, &self.scratch[pos])
                    .map_err(|e| OocError::item_op(OocOp::Write, rec.item, "arena write", e))?;
            }
        }
        Ok(())
    }
}

impl AncestralStore for PagedStore {
    type Session<'a> = PagedSession<'a>;

    fn width(&self) -> usize {
        self.width
    }

    fn session(&mut self, pins: &[AccessRecord]) -> OocResult<PagedSession<'_>> {
        assert!(
            pins.len() <= self.scratch.len(),
            "{} pins exceed the paged store's {} scratch buffers",
            pins.len(),
            self.scratch.len()
        );
        for (pos, rec) in pins.iter().enumerate() {
            assert!(
                pins[..pos].iter().all(|p| p.item != rec.item),
                "item {} pinned twice in one session",
                rec.item
            );
            if rec.intent == Intent::Read {
                self.arena
                    .read_f64s(rec.item as usize * self.width, &mut self.scratch[pos])
                    .map_err(|e| OocError::item_op(OocOp::Read, rec.item, "arena read", e))?;
            }
        }
        Ok(PagedSession {
            arena: &mut self.arena,
            width: self.width,
            scratch: &mut self.scratch,
            pins: pins.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_core::{MemStore, OocConfig, StrategyKind};

    /// One write access via a single-pin session.
    fn write_one<S: AncestralStore>(store: &mut S, item: u32, f: impl FnOnce(&mut [f64])) {
        let mut sess = store.session(&[AccessRecord::write(item)]).unwrap();
        let (buf, _, _) = sess.rw(item, None, None);
        f(buf);
        sess.finish().unwrap();
    }

    fn check_store<S: AncestralStore>(store: &mut S, n: usize) {
        let w = store.width();
        // Write every vector through single-pin sessions.
        for item in 0..n as u32 {
            write_one(store, item, |buf| {
                for (i, x) in buf.iter_mut().enumerate() {
                    *x = item as f64 + i as f64 * 0.5;
                }
            });
        }
        // Combine 0 and 1 into 2 through a three-pin session.
        let mut sess = store
            .session(&[
                AccessRecord::read(0),
                AccessRecord::read(1),
                AccessRecord::write(2),
            ])
            .unwrap();
        let (p, l, r) = sess.rw(2, Some(0), Some(1));
        let (l, r) = (l.unwrap(), r.unwrap());
        for i in 0..w {
            p[i] = l[i] * r[i];
        }
        sess.finish().unwrap();
        let expect: Vec<f64> = (0..w)
            .map(|i| (0.0 + i as f64 * 0.5) * (1.0 + i as f64 * 0.5))
            .collect();
        let sess = store.session(&[AccessRecord::read(2)]).unwrap();
        assert_eq!(sess.read(2), &expect[..]);
        sess.finish().unwrap();
        // Pair access sees consistent data.
        let sess = store
            .session(&[AccessRecord::read(0), AccessRecord::read(1)])
            .unwrap();
        let sum = sess.read(0)[3] + sess.read(1)[3];
        sess.finish().unwrap();
        assert_eq!(sum, (0.0 + 1.5) + (1.0 + 1.5));
    }

    #[test]
    fn in_ram_store_contract() {
        let mut s = InRamStore::new(6, 32);
        check_store(&mut s, 6);
        assert_eq!(s.bytes(), 6 * 32 * 8);
        assert!(s.ooc_stats().is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn in_ram_session_rejects_out_of_range_item() {
        let mut s = InRamStore::new(4, 8);
        let _ = s.session(&[AccessRecord::write(4)]);
    }

    #[test]
    #[should_panic(expected = "pinned twice")]
    fn in_ram_session_rejects_duplicate_pins() {
        let mut s = InRamStore::new(4, 8);
        let _ = s.session(&[AccessRecord::read(2), AccessRecord::write(2)]);
    }

    #[test]
    #[should_panic(expected = "aliases target")]
    fn in_ram_rw_rejects_source_aliasing_target() {
        let mut s = InRamStore::new(4, 8);
        let mut sess = s
            .session(&[AccessRecord::read(0), AccessRecord::write(1)])
            .unwrap();
        let _ = sess.rw(1, Some(0), Some(1));
    }

    #[test]
    #[should_panic(expected = "not pinned")]
    fn in_ram_read_requires_pin() {
        let mut s = InRamStore::new(4, 8);
        let sess = s.session(&[AccessRecord::read(0)]).unwrap();
        let _ = sess.read(3);
    }

    #[test]
    fn ooc_store_contract() {
        let mgr = VectorManager::new(
            OocConfig::builder(6, 32).slots(3).build().unwrap(),
            StrategyKind::Lru.build(None),
            MemStore::new(6, 32),
        );
        let mut s = OocStore::new(mgr);
        check_store(&mut s, 6);
        assert!(s.manager().stats().requests > 0);
        assert_eq!(s.ooc_stats().unwrap(), *s.manager().stats());
    }

    #[test]
    fn paged_store_contract() {
        let dir = tempfile::tempdir().unwrap();
        // Tiny physical memory to force paging during the contract check.
        let arena = PagedArena::new(
            6 * 32 * 8,
            2 * pager_sim::PAGE_SIZE,
            dir.path().join("swap"),
        )
        .unwrap();
        let mut s = PagedStore::new(arena, 6, 32);
        check_store(&mut s, 6);
        assert!(s.arena().stats().faults > 0);
    }
}
