//! The likelihood engine: traversal execution, root evaluation, topology
//! operations.

use crate::encode::TipCodes;
use crate::kernels::evaluate::reduce_site_lnl;
use crate::kernels::{Dims, KernelBackend};
use crate::store_api::{AncestralStore, VectorSession};
use ooc_core::{AccessRecord, OocResult, Recorder, StallKind};
use phylo_models::{DiscreteGamma, EigenDecomp, PMatrices, ReversibleModel};
use phylo_seq::CompressedAlignment;
use phylo_tree::spr::{spr_prune_regraft, spr_undo, SprUndo};
use phylo_tree::traverse::{invalidate_between, plan_traversal, Orientation, TraversalPlan};
use phylo_tree::{ChildRef, HalfEdgeId, Tree};

/// A substitution model bundled with its eigendecomposition and Γ rates —
/// everything needed to evaluate transition probabilities.
#[derive(Debug, Clone)]
pub struct PlfModel {
    /// The reversible substitution model.
    pub model: ReversibleModel,
    /// Cached eigendecomposition of the generator.
    pub eigen: EigenDecomp,
    /// Discrete Γ rate heterogeneity.
    pub gamma: DiscreteGamma,
}

impl PlfModel {
    /// Bundle a model with a `k`-category Γ distribution of shape `alpha`.
    pub fn new(model: ReversibleModel, alpha: f64, n_cats: usize) -> Self {
        let eigen = model.eigen();
        PlfModel {
            model,
            eigen,
            gamma: DiscreteGamma::new(alpha, n_cats),
        }
    }

    /// Replace the Γ shape (the eigendecomposition is unaffected).
    pub fn set_alpha(&mut self, alpha: f64) {
        self.gamma = DiscreteGamma::new(alpha, self.gamma.n_cats());
    }
}

/// The PLF engine over a tree, an encoded alignment and a residency backend.
pub struct PlfEngine<S: AncestralStore> {
    pub(crate) tree: Tree,
    pub(crate) plf_model: PlfModel,
    pub(crate) dims: Dims,
    pub(crate) tips: TipCodes,
    pub(crate) weights: Vec<u32>,
    pub(crate) store: S,
    pub(crate) orient: Orientation,
    /// Kernel backend selected once at construction (env override, then
    /// CPU detection); every kernel invocation dispatches through it.
    pub(crate) kernel: KernelBackend,
    /// Per inner node, per pattern scaling counts (always in RAM — the
    /// paper swaps only the probability vectors; these are 32× smaller).
    pub(crate) scale: Vec<Vec<u32>>,
    // Reusable scratch (no allocation in the traversal hot path).
    pub(crate) pm_l: PMatrices,
    pub(crate) pm_r: PMatrices,
    pub(crate) lut_l: Vec<f64>,
    pub(crate) lut_r: Vec<f64>,
    pub(crate) sumtable: Vec<f64>,
    pub(crate) scale_sums: Vec<u32>,
    // Newton-Raphson per-pattern term buffers, reused across every
    // `branch_derivatives` call (each Newton iteration used to allocate
    // three fresh Vecs — measurable churn during smoothing passes).
    pub(crate) nr_l: Vec<f64>,
    pub(crate) nr_d1: Vec<f64>,
    pub(crate) nr_d2: Vec<f64>,
    /// Per-pattern weighted log-likelihood terms of the most recent root
    /// evaluation (what [`reduce_site_lnl`] folds). A sharded engine
    /// concatenates these across shards in shard order before reducing.
    pub(crate) site_lnl: Vec<f64>,
    /// Root branch of the most recent traversal plan. Invariant: every
    /// valid orientation points towards this branch, which makes the stale
    /// set after a content change exactly the path from the changed region
    /// to this root (see `content_changed_at`).
    pub(crate) last_root: Option<HalfEdgeId>,
    /// Observability recorder: each combine batch becomes one span.
    pub(crate) obs: Option<Recorder>,
}

impl<S: AncestralStore> PlfEngine<S> {
    /// Vector dimensions an engine over `comp` with `n_cats` Γ categories
    /// will use — needed to size backing stores before construction.
    pub fn dims_for(comp: &CompressedAlignment, n_cats: usize) -> Dims {
        Dims {
            n_patterns: comp.n_patterns(),
            n_states: comp.alignment.alphabet().n_states(),
            n_cats,
        }
    }

    /// Build an engine. `store` must be sized for `tree.n_inner()` vectors
    /// of `dims_for(comp, n_cats).width()` doubles. Tip `i` of the tree
    /// reads sequence `i` of the alignment.
    pub fn new(
        tree: Tree,
        comp: &CompressedAlignment,
        model: ReversibleModel,
        alpha: f64,
        n_cats: usize,
        store: S,
    ) -> Self {
        assert_eq!(
            tree.n_tips(),
            comp.alignment.n_seqs(),
            "tree tips and alignment sequences must match"
        );
        let dims = Self::dims_for(comp, n_cats);
        let tips = TipCodes::from_alignment(comp);
        Self::from_parts(tree, model, alpha, dims, tips, comp.weights.clone(), store)
    }

    /// Build an engine from pre-sliced parts: a sharded engine constructs
    /// one per shard with `dims.n_patterns`, `tips` and `weights` restricted
    /// to the shard's pattern range, all over the same tree topology.
    pub(crate) fn from_parts(
        tree: Tree,
        model: ReversibleModel,
        alpha: f64,
        dims: Dims,
        tips: TipCodes,
        weights: Vec<u32>,
        store: S,
    ) -> Self {
        assert_eq!(store.width(), dims.width(), "store width mismatch");
        assert_eq!(weights.len(), dims.n_patterns, "weights length mismatch");
        let plf_model = PlfModel::new(model, alpha, dims.n_cats);
        let n_inner = tree.n_inner();
        PlfEngine {
            orient: Orientation::new(n_inner),
            kernel: KernelBackend::choose(),
            scale: vec![vec![0u32; dims.n_patterns]; n_inner],
            pm_l: PMatrices::new(dims.n_states, dims.n_cats),
            pm_r: PMatrices::new(dims.n_states, dims.n_cats),
            lut_l: Vec::new(),
            lut_r: Vec::new(),
            sumtable: Vec::new(),
            scale_sums: vec![0u32; dims.n_patterns],
            nr_l: vec![0.0; dims.n_patterns],
            nr_d1: vec![0.0; dims.n_patterns],
            nr_d2: vec![0.0; dims.n_patterns],
            site_lnl: vec![0.0; dims.n_patterns],
            weights,
            last_root: None,
            obs: None,
            tree,
            plf_model,
            dims,
            tips,
            store,
        }
    }

    /// Plan a traversal and record its root (see the `last_root` invariant).
    pub(crate) fn make_plan(&mut self, root_he: HalfEdgeId, full: bool) -> TraversalPlan {
        let plan = plan_traversal(&self.tree, root_he, &mut self.orient, full);
        self.last_root = Some(root_he);
        plan
    }

    /// Invalidate the vectors staled by a content change touching the given
    /// nodes. Because every valid orientation points towards `last_root`, a
    /// vector is stale iff its node lies on the path from a changed node to
    /// the last root — a short, local set during searches and smoothing.
    pub(crate) fn content_changed_at(&mut self, nodes: &[phylo_tree::NodeId]) {
        let Some(root_he) = self.last_root else {
            return; // nothing has ever been computed, nothing can be stale
        };
        let root_node = self.tree.node_of(root_he);
        for &nd in nodes {
            invalidate_between(&self.tree, &mut self.orient, nd, root_node);
        }
    }

    /// Vector dimensions in use.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// The kernel backend this engine dispatches through (the *requested*
    /// one; see [`KernelBackend::effective`] for what actually runs).
    pub fn kernel(&self) -> KernelBackend {
        self.kernel
    }

    /// Replace the kernel backend. All cached ancestral vectors are
    /// invalidated: backends may differ in the last ulps (FMA
    /// contraction), and mixing vectors computed under different backends
    /// would break the engine's reproducibility guarantees.
    pub fn set_kernel(&mut self, kernel: KernelBackend) {
        if kernel != self.kernel {
            self.kernel = kernel;
            self.orient.invalidate_all();
        }
    }

    /// The tree (read-only; use the engine's topology operations to mutate).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Current Γ shape parameter.
    pub fn alpha(&self) -> f64 {
        self.plf_model.gamma.alpha()
    }

    /// The residency backend.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable backend access (statistics resets between phases).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Attach an observability recorder: every executed combine batch is
    /// recorded as one `("plf", "combine-batch")` span from now on. The
    /// residency layers below carve their own demand-read / write-back
    /// time out of it, so the span itself stays unattributed.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.obs = Some(rec);
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.obs.as_ref()
    }

    /// Replace the Γ shape parameter; all ancestral vectors become stale.
    pub fn set_alpha(&mut self, alpha: f64) {
        self.plf_model.set_alpha(alpha);
        self.orient.invalidate_all();
    }

    /// Set a branch length, invalidating exactly the vectors the change
    /// stales (the path from the branch to the last traversal root).
    pub fn set_branch_length(&mut self, h: HalfEdgeId, len: f64) {
        self.tree.set_branch_length(h, len);
        let (u, v) = (self.tree.node_of(h), self.tree.neighbor(h));
        self.content_changed_at(&[u, v]);
    }

    /// Execute one Felsenstein combine. On an I/O error the parent's
    /// scaling counts are restored untouched, so the engine stays usable
    /// for a retry after the caller handles the error.
    pub(crate) fn newview_step(&mut self, step: &phylo_tree::TraversalStep) -> OocResult<()> {
        let dims = self.dims;
        let eigen = &self.plf_model.eigen;
        let gamma = &self.plf_model.gamma;
        self.pm_l.update(eigen, gamma, step.left_len);
        self.pm_r.update(eigen, gamma, step.right_len);

        // Normalise so a lone tip child is always "left": kernels then only
        // need tip/tip, tip/inner and inner/inner shapes.
        let (left, right, pm_l, pm_r) = match (step.left, step.right) {
            (ChildRef::Inner(_), ChildRef::Tip(_)) => {
                (step.right, step.left, &self.pm_r, &self.pm_l)
            }
            _ => (step.left, step.right, &self.pm_l, &self.pm_r),
        };

        let parent = step.parent;
        let kernel = self.kernel;
        let mut scale_p = std::mem::take(&mut self.scale[parent as usize]);
        // Pins are listed in access order (reads, then the written parent),
        // matching the per-step record order of `TraversalPlan::lower`.
        let result = (|| match (left, right) {
            (ChildRef::Tip(a), ChildRef::Tip(b)) => {
                self.tips.build_lut(pm_l, &mut self.lut_l);
                self.tips.build_lut(pm_r, &mut self.lut_r);
                let mut sess = self.store.session(&[AccessRecord::write(parent)])?;
                let (pv, _, _) = sess.rw(parent, None, None);
                kernel.newview_tip_tip(
                    &dims,
                    pv,
                    &mut scale_p,
                    &self.lut_l,
                    self.tips.tip(a as usize),
                    &self.lut_r,
                    self.tips.tip(b as usize),
                );
                sess.finish()
            }
            (ChildRef::Tip(a), ChildRef::Inner(r)) => {
                self.tips.build_lut(pm_l, &mut self.lut_l);
                let mut sess = self
                    .store
                    .session(&[AccessRecord::read(r), AccessRecord::write(parent)])?;
                let (pv, rv, _) = sess.rw(parent, Some(r), None);
                kernel.newview_tip_inner(
                    &dims,
                    pv,
                    &mut scale_p,
                    &self.lut_l,
                    self.tips.tip(a as usize),
                    rv.unwrap(),
                    &self.scale[r as usize],
                    pm_r,
                );
                sess.finish()
            }
            (ChildRef::Inner(l), ChildRef::Inner(r)) => {
                let mut sess = self.store.session(&[
                    AccessRecord::read(l),
                    AccessRecord::read(r),
                    AccessRecord::write(parent),
                ])?;
                let (pv, lv, rv) = sess.rw(parent, Some(l), Some(r));
                kernel.newview_inner_inner(
                    &dims,
                    pv,
                    &mut scale_p,
                    lv.unwrap(),
                    &self.scale[l as usize],
                    pm_l,
                    rv.unwrap(),
                    &self.scale[r as usize],
                    pm_r,
                );
                sess.finish()
            }
            (ChildRef::Inner(_), ChildRef::Tip(_)) => unreachable!("normalised above"),
        })();
        // Put the scale buffer back even on failure: a failed combine must
        // not leave the parent with an empty scaling vector.
        self.scale[parent as usize] = scale_p;
        result
    }

    /// Execute all combines of a plan, submitting its lowered access plan
    /// first (§3.4: the residency information is established "when the
    /// global or local tree traversal order is determined ... prior to the
    /// actual likelihood computations"). Read skipping, prefetch lookahead
    /// and plan-aware replacement all derive from the one submitted
    /// [`ooc_core::AccessPlan`] — there is no separate written/reads scan.
    /// When the backing store runs a plan-driven I/O pipeline
    /// (`ooc_core::PrefetchingStore`), this same submission installs the
    /// plan on the pipeline's worker threads, which then stream the next
    /// window of first-reads while the combine loop below is chewing the
    /// current one. The pipeline affects only *when* vectors are read,
    /// never their contents, so likelihoods are bit-identical with or
    /// without it — per shard and in serial.
    pub(crate) fn execute_plan(&mut self, plan: &TraversalPlan) -> OocResult<()> {
        let t0 = self.obs.as_ref().map(|r| r.now());
        // Even a step-free plan (fully oriented tree) is submitted: its
        // trailing root-read records let the residency layer prefetch the
        // two vectors the root evaluation is about to touch.
        self.store.submit_plan(plan.lower(self.tree.n_inner()));
        for step in &plan.steps {
            self.newview_step(step)?;
        }
        if let (Some(rec), Some(t0)) = (&self.obs, t0) {
            rec.span_at("plf", "combine-batch", StallKind::Compute, t0)
                .count(plan.steps.len() as u64)
                .unattributed()
                .finish();
        }
        Ok(())
    }

    /// Evaluate the log-likelihood at the plan's root branch (vectors must
    /// already be up to date, i.e. call after [`PlfEngine::execute_plan`]).
    /// Fills `self.site_lnl` with per-pattern terms as a side effect.
    pub(crate) fn evaluate_plan(&mut self, plan: &TraversalPlan) -> OocResult<f64> {
        let dims = self.dims;
        let kernel = self.kernel;
        self.pm_l
            .update(&self.plf_model.eigen, &self.plf_model.gamma, plan.root_len);
        let freqs = self.plf_model.model.freqs();
        match (plan.root_left, plan.root_right) {
            (ChildRef::Inner(p), ChildRef::Inner(q)) => {
                let sess = self
                    .store
                    .session(&[AccessRecord::read(p), AccessRecord::read(q)])?;
                kernel.evaluate_inner_inner_sites(
                    &dims,
                    sess.read(p),
                    &self.scale[p as usize],
                    sess.read(q),
                    &self.scale[q as usize],
                    &self.pm_l,
                    freqs,
                    &self.weights,
                    &mut self.site_lnl,
                );
                sess.finish()?;
            }
            (ChildRef::Tip(t), ChildRef::Inner(q)) | (ChildRef::Inner(q), ChildRef::Tip(t)) => {
                self.tips.build_root_lut(&self.pm_l, freqs, &mut self.lut_l);
                let sess = self.store.session(&[AccessRecord::read(q)])?;
                kernel.evaluate_tip_inner_sites(
                    &dims,
                    &self.lut_l,
                    self.tips.tip(t as usize),
                    sess.read(q),
                    &self.scale[q as usize],
                    &self.weights,
                    &mut self.site_lnl,
                );
                sess.finish()?;
            }
            (ChildRef::Tip(_), ChildRef::Tip(_)) => {
                unreachable!("no tip-tip branches exist for n >= 3")
            }
        }
        Ok(reduce_site_lnl(&self.site_lnl))
    }

    /// Per-pattern weighted log-likelihood terms of the most recent root
    /// evaluation. A sharded engine folds these across shards in shard
    /// order, reproducing the serial reduction bit-for-bit.
    pub fn site_lnl(&self) -> &[f64] {
        &self.site_lnl
    }

    /// Log-likelihood evaluated at the branch of `root_he`. With
    /// `full == true` every ancestral vector is recomputed (the worst case
    /// of the paper's §4.3); otherwise only stale vectors are.
    pub fn log_likelihood_at(&mut self, root_he: HalfEdgeId, full: bool) -> OocResult<f64> {
        let plan = self.make_plan(root_he, full);
        self.execute_plan(&plan)?;
        self.evaluate_plan(&plan)
    }

    /// Log-likelihood at the default root branch, reusing valid vectors.
    pub fn log_likelihood(&mut self) -> OocResult<f64> {
        self.log_likelihood_at(self.tree.default_root_edge(), false)
    }

    /// The paper's `-f z` experiment: `count` successive *full* tree
    /// traversals (recomputing every ancestral vector each time), returning
    /// the final log-likelihood. "This represents a worst-case analysis,
    /// since full tree traversals exhibit the smallest degree of vector
    /// locality."
    pub fn full_traversals(&mut self, count: usize) -> OocResult<f64> {
        let root = self.tree.default_root_edge();
        let mut lnl = 0.0;
        for _ in 0..count {
            lnl = self.log_likelihood_at(root, true)?;
        }
        Ok(lnl)
    }

    /// Apply an SPR move and invalidate exactly the vectors whose subtree
    /// contents changed (the path between old and new attachment points,
    /// plus the pruned node itself).
    pub fn apply_spr(
        &mut self,
        prune_dir: HalfEdgeId,
        target: HalfEdgeId,
        graft_lens: Option<(f64, f64)>,
    ) -> SprUndo {
        let undo = spr_prune_regraft(&mut self.tree, prune_dir, target, graft_lens);
        self.invalidate_after_spr(prune_dir, &undo);
        undo
    }

    /// Revert an SPR move, restoring vector validity conservatively.
    pub fn undo_spr(&mut self, prune_dir: HalfEdgeId, undo: &SprUndo) {
        spr_undo(&mut self.tree, undo);
        self.invalidate_after_spr(prune_dir, undo);
    }

    fn invalidate_after_spr(&mut self, prune_dir: HalfEdgeId, undo: &SprUndo) {
        let old_pos = undo.old_position(&self.tree);
        let new_pos = undo.new_position(&self.tree);
        let p = self.tree.node_of(prune_dir);
        // Everything whose subtree content changed: the path between the
        // junctions is covered by the two paths to the last root.
        self.content_changed_at(&[old_pos, new_pos, p]);
        invalidate_between(&self.tree, &mut self.orient, old_pos, new_pos);
        self.orient.invalidate(self.tree.inner_index(p));
    }

    /// Apply a nearest-neighbour interchange across the internal branch of
    /// `h`, with the same staleness bookkeeping as SPR.
    pub fn apply_nni(&mut self, h: HalfEdgeId, variant: u8) -> phylo_tree::spr::NniUndo {
        let undo = phylo_tree::spr::nni(&mut self.tree, h, variant);
        self.invalidate_after_nni(h);
        undo
    }

    /// Revert an NNI move.
    pub fn undo_nni(&mut self, undo: &phylo_tree::spr::NniUndo) {
        phylo_tree::spr::nni_undo(&mut self.tree, undo);
        self.invalidate_after_nni(undo.branch);
    }

    fn invalidate_after_nni(&mut self, h: HalfEdgeId) {
        let (p, q) = (self.tree.node_of(h), self.tree.neighbor(h));
        self.content_changed_at(&[p, q]);
        self.orient.invalidate(self.tree.inner_index(p));
        self.orient.invalidate(self.tree.inner_index(q));
    }

    /// Invalidate all cached vectors (used by tests and after bulk edits).
    pub fn invalidate_all(&mut self) {
        self.orient.invalidate_all();
    }

    /// Direct read-only access to a computed ancestral vector (test hook).
    pub fn debug_vector(&mut self, inner: u32) -> OocResult<Vec<f64>> {
        let sess = self.store.session(&[AccessRecord::read(inner)])?;
        let out = sess.read(inner).to_vec();
        sess.finish()?;
        Ok(out)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::store_api::InRamStore;
    use phylo_seq::{compress_patterns, simulate_alignment, Alignment, Alphabet};
    use phylo_tree::build::{random_topology, yule_like_lengths};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn build_engine(n_tips: usize, n_sites: usize, seed: u64) -> PlfEngine<InRamStore> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = random_topology(n_tips, 0.1, &mut rng);
        yule_like_lengths(&mut tree, 0.12, 1e-4, &mut rng);
        let model = ReversibleModel::hky85(2.2, &[0.3, 0.2, 0.2, 0.3]);
        let gamma = DiscreteGamma::new(0.8, 4);
        let aln = simulate_alignment(&tree, &model, &gamma, n_sites, &mut rng);
        let comp = compress_patterns(&aln);
        let dims = PlfEngine::<InRamStore>::dims_for(&comp, 4);
        let store = InRamStore::new(tree.n_inner(), dims.width());
        PlfEngine::new(tree, &comp, model, 0.8, 4, store)
    }

    #[test]
    fn three_taxa_analytic_likelihood() {
        // For 3 taxa the tree is a star; the likelihood has a closed form:
        // l(site) = Σ_c (1/C) Σ_x π_x Π_t P_c(x, s_t; b_t).
        let (tree, model) = {
            let mut tree = Tree::with_capacity(3);
            tree.join(tree.tip_half_edge(0), tree.inner_half_edge(0, 0), 0.2);
            tree.join(tree.tip_half_edge(1), tree.inner_half_edge(0, 1), 0.3);
            tree.join(tree.tip_half_edge(2), tree.inner_half_edge(0, 2), 0.4);
            (tree, ReversibleModel::hky85(2.0, &[0.3, 0.2, 0.2, 0.3]))
        };
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("t0".into(), "ACGT".into()),
                ("t1".into(), "AAGT".into()),
                ("t2".into(), "ACGC".into()),
            ],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let dims = PlfEngine::<InRamStore>::dims_for(&comp, 4);
        let store = InRamStore::new(1, dims.width());
        let mut engine = PlfEngine::new(tree.clone(), &comp, model.clone(), 1.0, 4, store);
        let got = engine.log_likelihood().unwrap();

        // Direct computation.
        let eigen = model.eigen();
        let gamma = DiscreteGamma::new(1.0, 4);
        let mut pms = Vec::new();
        for t in [0.2, 0.3, 0.4] {
            let mut pm = PMatrices::new(4, 4);
            pm.update(&eigen, &gamma, t);
            pms.push(pm);
        }
        let enc = |ch: u8| Alphabet::Dna.encode(ch).unwrap().trailing_zeros() as usize;
        let seqs = ["ACGT", "AAGT", "ACGC"];
        let mut expect = 0.0;
        for site in 0..4 {
            let states: Vec<usize> = seqs.iter().map(|s| enc(s.as_bytes()[site])).collect();
            let mut l = 0.0;
            for c in 0..4 {
                for x in 0..4 {
                    let mut term = model.freqs()[x];
                    for (t, &s) in states.iter().enumerate() {
                        term *= pms[t].get(c, x, s);
                    }
                    l += 0.25 * term;
                }
            }
            expect += l.ln();
        }
        assert!(
            (got - expect).abs() < 1e-9,
            "engine {got} vs analytic {expect}"
        );
    }

    #[test]
    fn likelihood_invariant_under_rerooting() {
        let mut engine = build_engine(14, 120, 42);
        let base = engine.log_likelihood().unwrap();
        assert!(base.is_finite() && base < 0.0);
        let roots: Vec<HalfEdgeId> = engine.tree().branches().take(10).collect();
        for h in roots {
            let l = engine.log_likelihood_at(h, false).unwrap();
            assert!(
                (l - base).abs() < 1e-7 * base.abs(),
                "root {h}: {l} vs {base}"
            );
        }
    }

    #[test]
    fn partial_equals_full_traversal() {
        let mut engine = build_engine(20, 150, 7);
        let full = engine
            .log_likelihood_at(engine.tree().default_root_edge(), true)
            .unwrap();
        let partial = engine.log_likelihood().unwrap();
        assert_eq!(full, partial, "partial traversal must be bit-identical");
        // After moving the root around, a fresh full traversal still agrees.
        let tip_root = engine.tree().tip_half_edge(5);
        let p2 = engine.log_likelihood_at(tip_root, false).unwrap();
        let f2 = engine.log_likelihood_at(tip_root, true).unwrap();
        assert!((p2 - f2).abs() < 1e-8);
    }

    #[test]
    fn full_traversals_are_stable() {
        let mut engine = build_engine(10, 80, 3);
        let a = engine.full_traversals(1).unwrap();
        let b = engine.full_traversals(5).unwrap();
        assert_eq!(a, b, "repeated full traversals must not drift");
    }

    #[test]
    fn spr_apply_then_undo_restores_likelihood() {
        let mut engine = build_engine(16, 100, 11);
        let before = engine.log_likelihood().unwrap();
        // Find a legal SPR move.
        let tree = engine.tree();
        let prune_dir = tree.inner_half_edge(4, 0);
        let (a, b) = tree.children_dirs(prune_dir);
        let (qa, qb) = (tree.back(a), tree.back(b));
        let target = tree
            .branches()
            .find(|&t| {
                let tb = tree.back(t);
                t != a
                    && t != b
                    && t != qa
                    && t != qb
                    && tb != a
                    && tb != b
                    && !phylo_tree::spr::subtree_contains(tree, prune_dir, tree.node_of(t))
                    && !phylo_tree::spr::subtree_contains(tree, prune_dir, tree.node_of(tb))
            })
            .expect("no SPR target found");
        let undo = engine.apply_spr(prune_dir, target, None);
        let moved = engine.log_likelihood().unwrap();
        engine.undo_spr(prune_dir, &undo);
        let after = engine.log_likelihood().unwrap();
        assert!(
            (before - after).abs() < 1e-8 * before.abs(),
            "undo must restore the likelihood: {before} vs {after}"
        );
        // The moved topology generally has a different likelihood.
        assert!((moved - before).abs() > 1e-9 || moved == before);
    }

    #[test]
    fn spr_partial_matches_full_recompute() {
        let mut engine = build_engine(18, 90, 13);
        let _ = engine.log_likelihood().unwrap();
        let tree = engine.tree();
        // Search prune directions until one offers a third-choice target
        // (some directions move almost the whole tree and have none).
        let (prune_dir, target) = (0..tree.n_inner() as u32)
            .flat_map(|i| (0..3).map(move |k| (i, k)))
            .find_map(|(i, k)| {
                let prune_dir = tree.inner_half_edge(i, k);
                let (a, b) = tree.children_dirs(prune_dir);
                let (qa, qb) = (tree.back(a), tree.back(b));
                tree.branches()
                    .filter(|&t| {
                        let tb = tree.back(t);
                        t != a
                            && t != b
                            && t != qa
                            && t != qb
                            && tb != a
                            && tb != b
                            && !phylo_tree::spr::subtree_contains(tree, prune_dir, tree.node_of(t))
                            && !phylo_tree::spr::subtree_contains(tree, prune_dir, tree.node_of(tb))
                    })
                    .nth(2)
                    .map(|t| (prune_dir, t))
            })
            .expect("no SPR target");
        engine.apply_spr(prune_dir, target, None);
        let partial = engine.log_likelihood().unwrap();
        engine.invalidate_all();
        let full = engine.log_likelihood().unwrap();
        assert!(
            (partial - full).abs() < 1e-8 * full.abs(),
            "partial {partial} vs full {full}"
        );
    }

    #[test]
    fn alpha_changes_move_the_likelihood() {
        let mut engine = build_engine(12, 100, 21);
        let l1 = engine.log_likelihood().unwrap();
        engine.set_alpha(0.1);
        let l2 = engine.log_likelihood().unwrap();
        assert_ne!(l1, l2);
        engine.set_alpha(0.8);
        let l3 = engine.log_likelihood().unwrap();
        assert!((l1 - l3).abs() < 1e-8 * l1.abs(), "alpha roundtrip");
    }

    #[test]
    fn branch_length_change_with_discipline_is_consistent() {
        let mut engine = build_engine(15, 70, 31);
        let h = engine.tree().default_root_edge();
        let _ = engine.log_likelihood_at(h, false).unwrap();
        engine.set_branch_length(h, 0.5);
        let at_branch = engine.log_likelihood_at(h, false).unwrap();
        engine.invalidate_all();
        let full = engine.log_likelihood_at(h, true).unwrap();
        assert!((at_branch - full).abs() < 1e-8 * full.abs());
    }

    /// Randomised differential test: after arbitrary interleavings of root
    /// moves, SPR apply/undo, NNI, branch-length changes and branch
    /// optimisations, a partial traversal must agree with a full recompute
    /// at a random root. This is the safety net for the lazy staleness
    /// tracking that the whole out-of-core access pattern relies on.
    #[test]
    fn randomized_operations_keep_partial_consistent() {
        use rand::Rng;
        for trial in 0..5u64 {
            let mut engine = build_engine(13, 60, 100 + trial);
            let mut rng = StdRng::seed_from_u64(200 + trial);
            let _ = engine.log_likelihood().unwrap();
            for step in 0..40 {
                let n_he = engine.tree().n_half_edges() as u32;
                match rng.gen_range(0..5) {
                    0 => {
                        // Move the root to a random branch.
                        let h = loop {
                            let h = rng.gen_range(0..n_he);
                            if engine.tree().is_connected(h) {
                                break h;
                            }
                        };
                        let _ = engine.log_likelihood_at(h, false).unwrap();
                    }
                    1 => {
                        // Random branch length change.
                        let h = rng.gen_range(0..n_he);
                        engine.set_branch_length(h, rng.gen_range(0.01..0.5));
                    }
                    2 => {
                        // Random SPR, kept or undone at random.
                        let tree = engine.tree();
                        let candidates: Vec<(HalfEdgeId, HalfEdgeId)> = (0..tree.n_inner() as u32)
                            .flat_map(|i| (0..3).map(move |k| (i, k)))
                            .flat_map(|(i, k)| {
                                let dir = tree.inner_half_edge(i, k);
                                let (a, b) = tree.children_dirs(dir);
                                let (qa, qb) = (tree.back(a), tree.back(b));
                                tree.branches()
                                    .filter(move |&t| {
                                        let tb = tree.back(t);
                                        t != a
                                            && t != b
                                            && t != qa
                                            && t != qb
                                            && tb != a
                                            && tb != b
                                            && !phylo_tree::spr::subtree_contains(
                                                tree,
                                                dir,
                                                tree.node_of(t),
                                            )
                                            && !phylo_tree::spr::subtree_contains(
                                                tree,
                                                dir,
                                                tree.node_of(tb),
                                            )
                                    })
                                    .map(move |t| (dir, t))
                            })
                            .collect();
                        let found = if candidates.is_empty() {
                            None
                        } else {
                            Some(candidates[rng.gen_range(0..candidates.len())])
                        };
                        if let Some((dir, target)) = found {
                            let undo = engine.apply_spr(dir, target, None);
                            if rng.gen_bool(0.5) {
                                engine.undo_spr(dir, &undo);
                            }
                        }
                    }
                    3 => {
                        // NNI on a random internal branch, sometimes undone.
                        let tree = engine.tree();
                        let internal: Vec<HalfEdgeId> = tree
                            .branches()
                            .filter(|&h| {
                                !tree.is_tip(tree.node_of(h)) && !tree.is_tip(tree.neighbor(h))
                            })
                            .collect();
                        let h = internal[rng.gen_range(0..internal.len())];
                        let undo = engine.apply_nni(h, rng.gen_range(0..2));
                        if rng.gen_bool(0.5) {
                            engine.undo_nni(&undo);
                        }
                    }
                    _ => {
                        // Optimise a random branch.
                        let h = rng.gen_range(0..n_he);
                        let _ = engine.optimize_branch(h, 8).unwrap();
                    }
                }
                // Differential check at a random root.
                let root = loop {
                    let h = rng.gen_range(0..n_he);
                    if engine.tree().is_connected(h) {
                        break h;
                    }
                };
                let partial = engine.log_likelihood_at(root, false).unwrap();
                let mut orient_reset = engine.orient.clone();
                orient_reset.invalidate_all();
                engine.orient = orient_reset;
                let full = engine.log_likelihood_at(root, true).unwrap();
                assert!(
                    (partial - full).abs() <= 1e-7 * full.abs(),
                    "trial {trial} step {step}: partial {partial} != full {full}"
                );
            }
        }
    }

    #[test]
    fn gaps_do_not_break_likelihood() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut tree = random_topology(6, 0.1, &mut rng);
        yule_like_lengths(&mut tree, 0.1, 1e-4, &mut rng);
        let aln = Alignment::from_chars(
            Alphabet::Dna,
            &[
                ("t0".into(), "ACGT-N".into()),
                ("t1".into(), "ACGTAN".into()),
                ("t2".into(), "AC--AN".into()),
                ("t3".into(), "ACGTAN".into()),
                ("t4".into(), "NNNNNN".into()),
                ("t5".into(), "ACRTAY".into()),
            ],
        )
        .unwrap();
        let comp = compress_patterns(&aln);
        let dims = PlfEngine::<InRamStore>::dims_for(&comp, 4);
        let store = InRamStore::new(tree.n_inner(), dims.width());
        let mut engine = PlfEngine::new(tree, &comp, ReversibleModel::jc69(), 1.0, 4, store);
        let l = engine.log_likelihood().unwrap();
        assert!(l.is_finite() && l < 0.0);
    }
}
