//! The engine surface the tree searches drive.
//!
//! [`LikelihoodEngine`] abstracts over the serial [`crate::PlfEngine`] and
//! the sharded [`crate::ShardedPlfEngine`], so hill climbing, SPR/NNI
//! rounds and MCMC run unchanged over either. Both implementations are
//! bit-identical for the same inputs (see `crate::sharded` for why), so a
//! search driven through this trait produces the same tree regardless of
//! which engine — or how many shards — computed it.

use ooc_core::{OocResult, OocStats};
use phylo_tree::spr::{NniUndo, SprUndo};
use phylo_tree::{HalfEdgeId, Tree};

/// Everything a likelihood-based tree search needs from an engine.
pub trait LikelihoodEngine {
    /// The current tree (read-only; mutate through the engine's ops).
    fn tree(&self) -> &Tree;

    /// Current Γ shape parameter.
    fn alpha(&self) -> f64;

    /// Replace the Γ shape; all ancestral vectors become stale.
    fn set_alpha(&mut self, alpha: f64);

    /// Invalidate all cached ancestral vectors.
    fn invalidate_all(&mut self);

    /// Log-likelihood at the default root branch, reusing valid vectors.
    fn log_likelihood(&mut self) -> OocResult<f64>;

    /// Log-likelihood evaluated at the branch of `root_he` (`full` forces
    /// recomputation of every ancestral vector).
    fn log_likelihood_at(&mut self, root_he: HalfEdgeId, full: bool) -> OocResult<f64>;

    /// Set a branch length with staleness tracking.
    fn set_branch_length(&mut self, h: HalfEdgeId, len: f64);

    /// Newton–Raphson on one branch; returns `(new_length, lnl)`.
    fn optimize_branch(&mut self, h: HalfEdgeId, max_iter: u32) -> OocResult<(f64, f64)>;

    /// Branch smoothing passes; returns the final log-likelihood.
    fn smooth_branches(&mut self, passes: usize, nr_iter: u32) -> OocResult<f64>;

    /// Optimise the Γ shape; returns `(alpha, lnl)`.
    fn optimize_alpha(&mut self, tol: f64, max_iter: u32) -> OocResult<(f64, f64)>;

    /// Apply an SPR move with staleness tracking.
    fn apply_spr(
        &mut self,
        prune_dir: HalfEdgeId,
        target: HalfEdgeId,
        graft_lens: Option<(f64, f64)>,
    ) -> SprUndo;

    /// Revert an SPR move.
    fn undo_spr(&mut self, prune_dir: HalfEdgeId, undo: &SprUndo);

    /// Apply an NNI move with staleness tracking.
    fn apply_nni(&mut self, h: HalfEdgeId, variant: u8) -> NniUndo;

    /// Revert an NNI move.
    fn undo_nni(&mut self, undo: &NniUndo);

    /// Residency statistics aggregated over the engine's backend(s), if it
    /// keeps any.
    fn ooc_stats(&self) -> Option<OocStats>;

    /// Zero the residency counters across the engine's backend(s) (e.g.
    /// after a warm-up traversal); a no-op when none are kept.
    fn reset_ooc_stats(&mut self) {}
}

impl<S: crate::AncestralStore> LikelihoodEngine for crate::PlfEngine<S> {
    fn tree(&self) -> &Tree {
        crate::PlfEngine::tree(self)
    }

    fn alpha(&self) -> f64 {
        crate::PlfEngine::alpha(self)
    }

    fn set_alpha(&mut self, alpha: f64) {
        crate::PlfEngine::set_alpha(self, alpha)
    }

    fn invalidate_all(&mut self) {
        crate::PlfEngine::invalidate_all(self)
    }

    fn log_likelihood(&mut self) -> OocResult<f64> {
        crate::PlfEngine::log_likelihood(self)
    }

    fn log_likelihood_at(&mut self, root_he: HalfEdgeId, full: bool) -> OocResult<f64> {
        crate::PlfEngine::log_likelihood_at(self, root_he, full)
    }

    fn set_branch_length(&mut self, h: HalfEdgeId, len: f64) {
        crate::PlfEngine::set_branch_length(self, h, len)
    }

    fn optimize_branch(&mut self, h: HalfEdgeId, max_iter: u32) -> OocResult<(f64, f64)> {
        crate::PlfEngine::optimize_branch(self, h, max_iter)
    }

    fn smooth_branches(&mut self, passes: usize, nr_iter: u32) -> OocResult<f64> {
        crate::PlfEngine::smooth_branches(self, passes, nr_iter)
    }

    fn optimize_alpha(&mut self, tol: f64, max_iter: u32) -> OocResult<(f64, f64)> {
        crate::PlfEngine::optimize_alpha(self, tol, max_iter)
    }

    fn apply_spr(
        &mut self,
        prune_dir: HalfEdgeId,
        target: HalfEdgeId,
        graft_lens: Option<(f64, f64)>,
    ) -> SprUndo {
        crate::PlfEngine::apply_spr(self, prune_dir, target, graft_lens)
    }

    fn undo_spr(&mut self, prune_dir: HalfEdgeId, undo: &SprUndo) {
        crate::PlfEngine::undo_spr(self, prune_dir, undo)
    }

    fn apply_nni(&mut self, h: HalfEdgeId, variant: u8) -> NniUndo {
        crate::PlfEngine::apply_nni(self, h, variant)
    }

    fn undo_nni(&mut self, undo: &NniUndo) {
        crate::PlfEngine::undo_nni(self, undo)
    }

    fn ooc_stats(&self) -> Option<OocStats> {
        self.store().ooc_stats()
    }

    fn reset_ooc_stats(&mut self) {
        self.store_mut().reset_ooc_stats()
    }
}
