//! Partitioned likelihood evaluation: several data blocks ("genes"), each
//! with its own alphabet, substitution model and residency backend, joined
//! on one shared tree topology.
//!
//! [`PartitionedPlfEngine`] owns one member engine per partition — a
//! serial [`crate::PlfEngine`] or a sharded
//! [`crate::ShardedPlfEngine`], any residency backend — and implements
//! [`LikelihoodEngine`] over the *joint* model:
//!
//! * the joint log-likelihood is the sum of the per-partition
//!   log-likelihoods, folded in partition order (a fixed, serial
//!   reduction — deterministic regardless of how members compute);
//! * branch lengths are shared: one Newton–Raphson per branch over the
//!   per-partition `(lnL, d1, d2)` sums, through the same guarded
//!   [`newton_optimize`] the serial and sharded engines use, so every
//!   partition sees the same optimised length;
//! * the Γ shape is shared across partitions (joint Brent over the summed
//!   log-likelihood); per-partition substitution models stay fixed at
//!   construction;
//! * topology operations (SPR, NNI, branch edits) are forwarded to every
//!   member, keeping the partition trees in lockstep — the same
//!   discipline the sharded engine applies to its shard trees.
//!
//! **Correctness invariant.** Partition members never exchange data;
//! each evaluates exactly the likelihood its standalone engine would.
//! [`PartitionedPlfEngine::partition_lnls`] therefore returns values
//! bit-identical to running each partition's engine independently — over
//! any member backend, including pipelined sharded out-of-core members
//! (each partition lowers its own per-partition `ooc_core::AccessPlan`
//! from the shared traversal, sized to its own vector width).

use crate::brlen::newton_optimize;
use crate::likelihood_api::LikelihoodEngine;
use crate::modelopt::{ALPHA_MAX, ALPHA_MIN};
use crate::sharded::ShardedPlfEngine;
use crate::store_api::AncestralStore;
use crate::PlfEngine;
use ooc_core::{OocError, OocResult, OocStats};
use phylo_models::brent_minimize;
use phylo_tree::spr::{NniUndo, SprUndo};
use phylo_tree::{HalfEdgeId, Tree};

/// The branch-length Newton–Raphson hooks a partition member must expose:
/// prepare a branch's sumtable(s), then evaluate `(lnL, d1, d2)` at a
/// proposed length. The partitioned engine folds these across members so
/// one shared proposal sequence drives every partition.
pub trait NrBranchEngine {
    /// Build the branch's sumtable(s); vectors at both ends are refreshed.
    fn nr_prepare(&mut self, h: HalfEdgeId) -> OocResult<()>;

    /// `(lnL, d1, d2)` of the prepared branch at length `z`.
    fn nr_derivatives(&mut self, z: f64) -> (f64, f64, f64);
}

impl<S: AncestralStore> NrBranchEngine for PlfEngine<S> {
    fn nr_prepare(&mut self, h: HalfEdgeId) -> OocResult<()> {
        self.prepare_branch(h)
    }

    fn nr_derivatives(&mut self, z: f64) -> (f64, f64, f64) {
        self.branch_derivatives(z)
    }
}

impl<S: AncestralStore + Send> NrBranchEngine for ShardedPlfEngine<S> {
    fn nr_prepare(&mut self, h: HalfEdgeId) -> OocResult<()> {
        self.par_prepare_branch(h)
    }

    fn nr_derivatives(&mut self, z: f64) -> (f64, f64, f64) {
        self.shard_branch_derivatives(z)
    }
}

impl<E: LikelihoodEngine + NrBranchEngine> NrBranchEngine for PartitionedPlfEngine<E> {
    fn nr_prepare(&mut self, h: HalfEdgeId) -> OocResult<()> {
        for e in &mut self.parts {
            e.nr_prepare(h)?;
        }
        Ok(())
    }

    fn nr_derivatives(&mut self, z: f64) -> (f64, f64, f64) {
        // The joint branch objective folds member derivatives in partition
        // order — the same reduction `optimize_branch` drives internally.
        let mut sum = (0.0, 0.0, 0.0);
        for e in &mut self.parts {
            let (l, d1, d2) = e.nr_derivatives(z);
            sum = (sum.0 + l, sum.1 + d1, sum.2 + d2);
        }
        sum
    }
}

/// One engine per partition, joined on a shared tree (see module docs).
pub struct PartitionedPlfEngine<E> {
    parts: Vec<E>,
    names: Vec<String>,
}

impl<E: LikelihoodEngine + NrBranchEngine> PartitionedPlfEngine<E> {
    /// Assemble from per-partition member engines. All members must have
    /// been built over clones of the same tree (same tips, same topology);
    /// names label partitions in reports.
    pub fn new(parts: Vec<E>, names: Vec<String>) -> Self {
        assert!(!parts.is_empty(), "need at least one partition");
        assert_eq!(parts.len(), names.len(), "one name per partition");
        let t0 = parts[0].tree();
        for p in &parts[1..] {
            assert_eq!(
                (p.tree().n_tips(), p.tree().n_half_edges()),
                (t0.n_tips(), t0.n_half_edges()),
                "partition members must share one tree"
            );
        }
        PartitionedPlfEngine { parts, names }
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Partition names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// A partition's member engine.
    pub fn part(&self, i: usize) -> &E {
        &self.parts[i]
    }

    /// Mutable member access (statistics resets, recorders).
    pub fn part_mut(&mut self, i: usize) -> &mut E {
        &mut self.parts[i]
    }

    /// Per-partition log-likelihoods at the default root branch, in
    /// partition order — each bit-identical to the member engine run
    /// standalone on its partition's data.
    pub fn partition_lnls(&mut self) -> OocResult<Vec<f64>> {
        self.parts.iter_mut().map(|e| e.log_likelihood()).collect()
    }
}

impl<E: LikelihoodEngine + NrBranchEngine> LikelihoodEngine for PartitionedPlfEngine<E> {
    fn tree(&self) -> &Tree {
        self.parts[0].tree()
    }

    fn alpha(&self) -> f64 {
        self.parts[0].alpha()
    }

    fn set_alpha(&mut self, alpha: f64) {
        for e in &mut self.parts {
            e.set_alpha(alpha);
        }
    }

    fn invalidate_all(&mut self) {
        for e in &mut self.parts {
            e.invalidate_all();
        }
    }

    fn log_likelihood(&mut self) -> OocResult<f64> {
        self.log_likelihood_at(self.tree().default_root_edge(), false)
    }

    fn log_likelihood_at(&mut self, root_he: HalfEdgeId, full: bool) -> OocResult<f64> {
        // Joint lnL: per-partition values summed in partition order (a
        // fixed serial fold — the partitioned analogue of the sharded
        // engine's cross-shard reduction).
        let mut sum = 0.0;
        for e in &mut self.parts {
            sum += e.log_likelihood_at(root_he, full)?;
        }
        Ok(sum)
    }

    fn set_branch_length(&mut self, h: HalfEdgeId, len: f64) {
        for e in &mut self.parts {
            e.set_branch_length(h, len);
        }
    }

    fn optimize_branch(&mut self, h: HalfEdgeId, max_iter: u32) -> OocResult<(f64, f64)> {
        // One Newton iteration over the joint derivatives: each member
        // prepares its own sumtable, then every proposal folds the
        // members' (lnL, d1, d2) in partition order. All partitions see
        // the identical proposal sequence and final length.
        for e in &mut self.parts {
            e.nr_prepare(h)?;
        }
        let z0 = self.tree().branch_length(h);
        let parts = &mut self.parts;
        let (z, best_lnl) = newton_optimize(z0, max_iter, |z| {
            let mut acc = (0.0, 0.0, 0.0);
            for e in parts.iter_mut() {
                let (l, d1, d2) = e.nr_derivatives(z);
                acc = (acc.0 + l, acc.1 + d1, acc.2 + d2);
            }
            acc
        });
        self.set_branch_length(h, z);
        Ok((z, best_lnl))
    }

    fn smooth_branches(&mut self, passes: usize, nr_iter: u32) -> OocResult<f64> {
        let mut lnl = f64::NEG_INFINITY;
        for _ in 0..passes {
            for h in crate::brlen::smoothing_order(self.tree()) {
                let (_, l) = self.optimize_branch(h, nr_iter)?;
                lnl = l;
            }
        }
        Ok(lnl)
    }

    fn optimize_alpha(&mut self, tol: f64, max_iter: u32) -> OocResult<(f64, f64)> {
        // Shared Γ shape: Brent on ln(α) over the joint log-likelihood.
        let mut io_error: Option<OocError> = None;
        let result = brent_minimize(
            |ln_a| {
                if io_error.is_some() {
                    return f64::INFINITY;
                }
                self.set_alpha(ln_a.exp());
                match self.log_likelihood() {
                    Ok(lnl) => -lnl,
                    Err(e) => {
                        io_error = Some(e);
                        f64::INFINITY
                    }
                }
            },
            ALPHA_MIN.ln(),
            ALPHA_MAX.ln(),
            tol,
            max_iter,
        );
        if let Some(e) = io_error {
            return Err(e);
        }
        let alpha = result.x.exp();
        self.set_alpha(alpha);
        let lnl = self.log_likelihood()?;
        Ok((alpha, lnl))
    }

    fn apply_spr(
        &mut self,
        prune_dir: HalfEdgeId,
        target: HalfEdgeId,
        graft_lens: Option<(f64, f64)>,
    ) -> SprUndo {
        let mut undo = None;
        for e in &mut self.parts {
            let u = e.apply_spr(prune_dir, target, graft_lens);
            undo.get_or_insert(u);
        }
        undo.expect("partitioned engine has at least one partition")
    }

    fn undo_spr(&mut self, prune_dir: HalfEdgeId, undo: &SprUndo) {
        for e in &mut self.parts {
            e.undo_spr(prune_dir, undo);
        }
    }

    fn apply_nni(&mut self, h: HalfEdgeId, variant: u8) -> NniUndo {
        let mut undo = None;
        for e in &mut self.parts {
            let u = e.apply_nni(h, variant);
            undo.get_or_insert(u);
        }
        undo.expect("partitioned engine has at least one partition")
    }

    fn undo_nni(&mut self, undo: &NniUndo) {
        for e in &mut self.parts {
            e.undo_nni(undo);
        }
    }

    fn ooc_stats(&self) -> Option<OocStats> {
        self.parts
            .iter()
            .map(|e| e.ooc_stats())
            .sum::<Option<OocStats>>()
    }

    fn reset_ooc_stats(&mut self) {
        for e in &mut self.parts {
            e.reset_ooc_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store_api::InRamStore;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_seq::{compress_patterns, simulate_alignment, CompressedAlignment};
    use phylo_tree::build::{random_topology, yule_like_lengths};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn member(
        tree: &Tree,
        comp: &CompressedAlignment,
        model: ReversibleModel,
    ) -> PlfEngine<InRamStore> {
        let dims = PlfEngine::<InRamStore>::dims_for(comp, 4);
        let store = InRamStore::new(tree.n_inner(), dims.width());
        PlfEngine::new(tree.clone(), comp, model, 0.8, 4, store)
    }

    /// One tree, a DNA partition and a protein partition simulated on it.
    fn mixed_fixture(
        seed: u64,
    ) -> (
        Tree,
        CompressedAlignment,
        ReversibleModel,
        CompressedAlignment,
        ReversibleModel,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = random_topology(10, 0.1, &mut rng);
        yule_like_lengths(&mut tree, 0.12, 1e-4, &mut rng);
        let gamma = DiscreteGamma::new(0.8, 4);
        let dna_model = ReversibleModel::hky85(2.2, &[0.3, 0.2, 0.2, 0.3]);
        let dna = compress_patterns(&simulate_alignment(
            &tree, &dna_model, &gamma, 120, &mut rng,
        ));
        let prot_model = phylo_models::protein::synthetic_protein(seed);
        let prot = compress_patterns(&simulate_alignment(
            &tree,
            &prot_model,
            &gamma,
            40,
            &mut rng,
        ));
        (tree, dna, dna_model, prot, prot_model)
    }

    #[test]
    fn partition_lnls_match_standalone_engines_bitwise() {
        let (tree, dna, dna_m, prot, prot_m) = mixed_fixture(5);
        let mut solo_dna = member(&tree, &dna, dna_m.clone());
        let mut solo_prot = member(&tree, &prot, prot_m.clone());
        let want = [
            solo_dna.log_likelihood().unwrap(),
            solo_prot.log_likelihood().unwrap(),
        ];

        let mut joint = PartitionedPlfEngine::new(
            vec![member(&tree, &dna, dna_m), member(&tree, &prot, prot_m)],
            vec!["dna".into(), "prot".into()],
        );
        let got = joint.partition_lnls().unwrap();
        assert_eq!(got, want, "per-partition lnls must be bit-identical");
        assert_eq!(joint.log_likelihood().unwrap(), want[0] + want[1]);
    }

    #[test]
    fn joint_branch_optimisation_improves_and_stays_in_lockstep() {
        let (tree, dna, dna_m, prot, prot_m) = mixed_fixture(9);
        let mut joint = PartitionedPlfEngine::new(
            vec![member(&tree, &dna, dna_m), member(&tree, &prot, prot_m)],
            vec!["dna".into(), "prot".into()],
        );
        let before = joint.log_likelihood().unwrap();
        let h = joint.tree().default_root_edge();
        let (z, lnl) = joint.optimize_branch(h, 32).unwrap();
        assert!(
            lnl >= before - 1e-7,
            "joint NR worsened lnl: {before} -> {lnl}"
        );
        // Every member sees the same optimised length.
        for i in 0..joint.n_partitions() {
            assert_eq!(joint.part(i).tree().branch_length(h), z);
        }
        // And the NR lnl matches a fresh joint evaluation at that branch.
        let check = joint.log_likelihood_at(h, false).unwrap();
        assert!((check - lnl).abs() < 1e-6 * lnl.abs(), "{check} vs {lnl}");
    }

    #[test]
    fn joint_smoothing_and_alpha_improve_the_joint_likelihood() {
        let (tree, dna, dna_m, prot, prot_m) = mixed_fixture(13);
        let mut joint = PartitionedPlfEngine::new(
            vec![member(&tree, &dna, dna_m), member(&tree, &prot, prot_m)],
            vec!["dna".into(), "prot".into()],
        );
        let before = joint.log_likelihood().unwrap();
        let smoothed = joint.smooth_branches(1, 8).unwrap();
        assert!(smoothed >= before - 1e-7);
        let (alpha, lnl) = joint.optimize_alpha(1e-3, 32).unwrap();
        assert!(alpha.is_finite() && lnl >= smoothed - 1e-6);
        // Consistency after all the shared-parameter churn: partial vs
        // full recompute agree.
        let partial = joint.log_likelihood().unwrap();
        joint.invalidate_all();
        let full = joint.log_likelihood().unwrap();
        assert_eq!(partial, full);
    }

    #[test]
    fn topology_ops_forward_to_every_partition() {
        let (tree, dna, dna_m, prot, prot_m) = mixed_fixture(17);
        let mut joint = PartitionedPlfEngine::new(
            vec![member(&tree, &dna, dna_m), member(&tree, &prot, prot_m)],
            vec!["dna".into(), "prot".into()],
        );
        let before = joint.log_likelihood().unwrap();
        let internal = joint
            .tree()
            .branches()
            .find(|&h| {
                let t = joint.tree();
                !t.is_tip(t.node_of(h)) && !t.is_tip(t.neighbor(h))
            })
            .unwrap();
        let undo = joint.apply_nni(internal, 0);
        let moved = joint.log_likelihood().unwrap();
        joint.undo_nni(&undo);
        let after = joint.log_likelihood().unwrap();
        assert!(
            (before - after).abs() < 1e-8 * before.abs(),
            "{before} vs {after}"
        );
        let _ = moved;
    }
}
