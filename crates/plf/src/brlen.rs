//! Branch-length optimisation (Newton–Raphson over eigenbasis sumtables).
//!
//! The paper singles this phase out as a major source of access locality:
//! "Branch length optimization is typically implemented via a
//! Newton-Raphson procedure, that iterates over a single branch of the
//! tree. Thus, only memory accesses to the same two vectors (located at
//! either end of the branch) are required in this phase which accounts for
//! approximately 20-30% of overall execution time."

use crate::kernels::derivatives::{build_sumtable, SumSide};
use crate::store_api::{AncestralStore, VectorSession};
use crate::PlfEngine;
use ooc_core::{AccessRecord, OocResult};
use phylo_tree::{ChildRef, HalfEdgeId, Tree};

/// Minimum branch length (matches RAxML's `zmin`-equivalent scale).
pub const BL_MIN: f64 = 1e-6;
/// Maximum branch length.
pub const BL_MAX: f64 = 20.0;
/// Convergence tolerance on the derivative of the log-likelihood.
pub const BL_TOL: f64 = 1e-8;

/// The guarded Newton–Raphson iteration over a prepared branch, abstracted
/// over how `(lnL, d1, d2)` are computed so the serial engine and the
/// sharded engine run the *identical* sequence of proposals (bit-identical
/// derivatives in → bit-identical branch length out). Returns
/// `(z, best_lnl)`.
pub(crate) fn newton_optimize(
    z0: f64,
    max_iter: u32,
    mut derivs: impl FnMut(f64) -> (f64, f64, f64),
) -> (f64, f64) {
    let mut z = z0.clamp(BL_MIN, BL_MAX);
    let mut best_lnl = f64::NEG_INFINITY;
    for _ in 0..max_iter {
        let (lnl, d1, d2) = derivs(z);
        best_lnl = lnl;
        if d1.abs() < BL_TOL {
            break;
        }
        let step = if d2 < 0.0 {
            d1 / d2
        } else {
            d1.signum() * -0.1 * z
        };
        let mut next = z - step;
        if !next.is_finite() {
            break;
        }
        next = next.clamp(BL_MIN, BL_MAX);
        // Backtrack if the proposal does not improve.
        let (lnl_next, _, _) = derivs(next);
        if lnl_next + 1e-12 < lnl {
            next = 0.5 * (z + next);
        }
        if (next - z).abs() < 1e-12 {
            z = next;
            break;
        }
        z = next;
    }
    let (lnl, _, _) = derivs(z);
    best_lnl = best_lnl.max(lnl);
    (z, best_lnl)
}

/// The branch visit order of one smoothing pass: a DFS over directed
/// half-edges from the default root, so consecutive optimised branches
/// share a node (the access pattern the out-of-core layer likes). The
/// sharded engine derives the same order from its (identical) shard trees.
pub(crate) fn smoothing_order(tree: &Tree) -> Vec<HalfEdgeId> {
    let root = tree.default_root_edge();
    let mut order: Vec<HalfEdgeId> = Vec::with_capacity(tree.n_branches());
    let mut stack = vec![root, tree.back(root)];
    let mut seen = vec![false; tree.n_half_edges()];
    seen[root as usize] = true;
    seen[tree.back(root) as usize] = true;
    order.push(root);
    while let Some(h) = stack.pop() {
        let node = tree.node_of(h);
        if tree.is_tip(node) {
            continue;
        }
        let (l, r) = tree.children_dirs(h);
        for c in [l, r] {
            let cb = tree.back(c);
            if !seen[c as usize] && !seen[cb as usize] {
                seen[c as usize] = true;
                seen[cb as usize] = true;
                order.push(c);
            }
            stack.push(cb);
        }
    }
    debug_assert_eq!(order.len(), tree.n_branches());
    order
}

impl<S: AncestralStore> PlfEngine<S> {
    /// Build the sumtable for the branch of `h` into the engine scratch and
    /// return the combined per-pattern scale counts. Ancestral vectors at
    /// both ends must be valid towards the branch (ensured by a plan).
    pub(crate) fn prepare_branch(&mut self, h: HalfEdgeId) -> OocResult<()> {
        let plan = self.make_plan(h, false);
        self.execute_plan(&plan)?;
        let dims = self.dims;
        let eigen = &self.plf_model.eigen;
        let gamma = &self.plf_model.gamma;
        let freqs = self.plf_model.model.freqs();

        // Combined scale counts per pattern.
        let side_scale = |side: ChildRef, out: &mut [u32], scale: &[Vec<u32>]| match side {
            ChildRef::Tip(_) => {}
            ChildRef::Inner(i) => {
                for (o, s) in out.iter_mut().zip(scale[i as usize].iter()) {
                    *o += s;
                }
            }
        };
        self.scale_sums.fill(0);
        side_scale(plan.root_left, &mut self.scale_sums, &self.scale);
        side_scale(plan.root_right, &mut self.scale_sums, &self.scale);

        let mut sumtable = std::mem::take(&mut self.sumtable);
        let result = (|| match (plan.root_left, plan.root_right) {
            (ChildRef::Inner(p), ChildRef::Inner(q)) => {
                let sess = self
                    .store
                    .session(&[AccessRecord::read(p), AccessRecord::read(q)])?;
                build_sumtable(
                    &dims,
                    SumSide::Inner(sess.read(p)),
                    SumSide::Inner(sess.read(q)),
                    eigen,
                    freqs,
                    &mut sumtable,
                );
                sess.finish()
            }
            (ChildRef::Tip(t), ChildRef::Inner(q)) => {
                self.tips
                    .build_eigen_lut(eigen, gamma, freqs, &mut self.lut_l);
                let sess = self.store.session(&[AccessRecord::read(q)])?;
                build_sumtable(
                    &dims,
                    SumSide::Tip {
                        lut: &self.lut_l,
                        codes: self.tips.tip(t as usize),
                    },
                    SumSide::Inner(sess.read(q)),
                    eigen,
                    freqs,
                    &mut sumtable,
                );
                sess.finish()
            }
            (ChildRef::Inner(p), ChildRef::Tip(t)) => {
                self.tips
                    .build_eigen_lut_right(eigen, gamma, &mut self.lut_r);
                let sess = self.store.session(&[AccessRecord::read(p)])?;
                build_sumtable(
                    &dims,
                    SumSide::Inner(sess.read(p)),
                    SumSide::Tip {
                        lut: &self.lut_r,
                        codes: self.tips.tip(t as usize),
                    },
                    eigen,
                    freqs,
                    &mut sumtable,
                );
                sess.finish()
            }
            (ChildRef::Tip(_), ChildRef::Tip(_)) => unreachable!("no tip-tip branches"),
        })();
        self.sumtable = sumtable;
        result
    }

    /// `(lnL, d1, d2)` of the prepared branch at length `z`. Uses the
    /// engine's reusable per-pattern term buffers — a Newton iteration
    /// performs no allocation.
    pub(crate) fn branch_derivatives(&mut self, z: f64) -> (f64, f64, f64) {
        let mut out_l = std::mem::take(&mut self.nr_l);
        let mut out_d1 = std::mem::take(&mut self.nr_d1);
        let mut out_d2 = std::mem::take(&mut self.nr_d2);
        self.branch_derivatives_sites(z, &mut out_l, &mut out_d1, &mut out_d2);
        let fold = |b: &[f64]| b.iter().fold(0.0, |acc, &t| acc + t);
        let result = (fold(&out_l), fold(&out_d1), fold(&out_d2));
        self.nr_l = out_l;
        self.nr_d1 = out_d1;
        self.nr_d2 = out_d2;
        result
    }

    /// Per-pattern `(lnL, d1, d2)` terms of the prepared branch at length
    /// `z`, for the sharded engine's cross-shard ordered reduction.
    pub(crate) fn branch_derivatives_sites(
        &self,
        z: f64,
        out_l: &mut [f64],
        out_d1: &mut [f64],
        out_d2: &mut [f64],
    ) {
        self.kernel.nr_derivatives_sites(
            &self.dims,
            &self.sumtable,
            &self.weights,
            &self.scale_sums,
            self.plf_model.eigen.values(),
            self.plf_model.gamma.rates(),
            z,
            out_l,
            out_d1,
            out_d2,
        );
    }

    /// Optimise the length of the branch of `h` by guarded Newton–Raphson.
    /// Returns `(new_length, log_likelihood_at_new_length)`.
    pub fn optimize_branch(&mut self, h: HalfEdgeId, max_iter: u32) -> OocResult<(f64, f64)> {
        self.prepare_branch(h)?;
        let z0 = self.tree.branch_length(h);
        let (z, best_lnl) = newton_optimize(z0, max_iter, |z| self.branch_derivatives(z));
        self.set_branch_length(h, z); // engine method: staleness tracked
        Ok((z, best_lnl))
    }

    /// One smoothing pass over every branch in depth-first order (adjacent
    /// branches in sequence — the access pattern the out-of-core layer
    /// likes), repeated `passes` times. Returns the final log-likelihood.
    pub fn smooth_branches(&mut self, passes: usize, nr_iter: u32) -> OocResult<f64> {
        let mut lnl = f64::NEG_INFINITY;
        for _ in 0..passes {
            for h in smoothing_order(&self.tree) {
                let (_, l) = self.optimize_branch(h, nr_iter)?;
                lnl = l;
            }
        }
        Ok(lnl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::build_engine;

    #[test]
    fn optimizing_a_branch_never_decreases_likelihood() {
        let mut engine = build_engine(12, 120, 51);
        let before = engine.log_likelihood().unwrap();
        let h = engine.tree().default_root_edge();
        let (z, lnl) = engine.optimize_branch(h, 32).unwrap();
        assert!((BL_MIN..=BL_MAX).contains(&z));
        assert!(
            lnl >= before - 1e-7,
            "optimisation worsened lnl: {before} -> {lnl}"
        );
        // Engine's own evaluation at the branch agrees with the NR value.
        let check = engine.log_likelihood_at(h, false).unwrap();
        assert!((check - lnl).abs() < 1e-6 * lnl.abs(), "{check} vs {lnl}");
    }

    #[test]
    fn optimum_is_a_stationary_point() {
        let mut engine = build_engine(10, 90, 52);
        let h = engine.tree().tip_half_edge(3);
        let (z, _) = engine.optimize_branch(h, 64).unwrap();
        // Evaluate lnl at z ± eps via the engine: both must be <= lnl(z).
        let lnl = engine.log_likelihood_at(h, false).unwrap();
        for delta in [-1e-3, 1e-3] {
            let zz = (z + delta).clamp(BL_MIN, BL_MAX);
            engine.set_branch_length(h, zz);
            let l = engine.log_likelihood_at(h, false).unwrap();
            assert!(l <= lnl + 1e-6, "lnl({zz}) = {l} > lnl({z}) = {lnl}");
            engine.set_branch_length(h, z);
        }
    }

    #[test]
    fn smoothing_improves_and_converges() {
        let mut engine = build_engine(14, 80, 53);
        let before = engine.log_likelihood().unwrap();
        let l1 = engine.smooth_branches(1, 16).unwrap();
        let l2 = engine.smooth_branches(1, 16).unwrap();
        assert!(l1 >= before - 1e-7, "{before} -> {l1}");
        assert!(l2 >= l1 - 1e-7, "{l1} -> {l2}");
        // A third pass changes little.
        let l3 = engine.smooth_branches(1, 16).unwrap();
        assert!((l3 - l2).abs() < 1e-3 * l2.abs());
        // Consistency: partial vs full recompute after all the smoothing.
        let partial = engine.log_likelihood().unwrap();
        engine.invalidate_all();
        let full = engine.log_likelihood().unwrap();
        assert!((partial - full).abs() < 1e-8 * full.abs());
    }

    #[test]
    fn tip_and_internal_branches_both_work() {
        let mut engine = build_engine(9, 60, 54);
        let tips_branch = engine.tree().tip_half_edge(0);
        let internal = engine
            .tree()
            .branches()
            .find(|&h| {
                !engine.tree().is_tip(engine.tree().node_of(h))
                    && !engine.tree().is_tip(engine.tree().neighbor(h))
            })
            .expect("no internal branch");
        for h in [tips_branch, internal] {
            let (z, lnl) = engine.optimize_branch(h, 32).unwrap();
            assert!(z.is_finite() && lnl.is_finite());
        }
    }
}
