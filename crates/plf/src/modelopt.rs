//! Model-parameter optimisation.
//!
//! Currently the Γ shape parameter α, optimised by Brent's method. Each
//! candidate α invalidates every ancestral vector, so evaluation requires a
//! full tree traversal — the paper notes this is exactly why full
//! traversals (its worst case for vector locality) cannot be avoided in
//! real analyses: "Full tree traversals are required to optimize likelihood
//! model parameters such as the α shape parameter of the Γ model."

use crate::store_api::AncestralStore;
use crate::PlfEngine;
use ooc_core::{OocError, OocResult};
use phylo_models::brent_minimize;

/// Search range for α (RAxML uses a similar clamp).
pub const ALPHA_MIN: f64 = 0.02;
/// Upper bound for α.
pub const ALPHA_MAX: f64 = 100.0;

impl<S: AncestralStore> PlfEngine<S> {
    /// Optimise α by Brent's method on `ln α` (the likelihood surface is
    /// better conditioned in log space). Returns `(alpha, log_likelihood)`.
    pub fn optimize_alpha(&mut self, tol: f64, max_iter: u32) -> OocResult<(f64, f64)> {
        // Brent's minimiser takes an infallible objective; capture the
        // first I/O error, poison further evaluations with +inf, and
        // surface the error afterwards.
        let mut io_error: Option<OocError> = None;
        let result = brent_minimize(
            |ln_a| {
                if io_error.is_some() {
                    return f64::INFINITY;
                }
                self.set_alpha(ln_a.exp());
                match self.log_likelihood() {
                    Ok(lnl) => -lnl,
                    Err(e) => {
                        io_error = Some(e);
                        f64::INFINITY
                    }
                }
            },
            ALPHA_MIN.ln(),
            ALPHA_MAX.ln(),
            tol,
            max_iter,
        );
        if let Some(e) = io_error {
            return Err(e);
        }
        let alpha = result.x.exp();
        self.set_alpha(alpha);
        let lnl = self.log_likelihood()?;
        Ok((alpha, lnl))
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::tests::build_engine;

    #[test]
    fn alpha_optimisation_improves_likelihood() {
        let mut engine = build_engine(12, 150, 61);
        engine.set_alpha(5.0); // deliberately wrong (data simulated at 0.8)
        let before = engine.log_likelihood().unwrap();
        let (alpha, after) = engine.optimize_alpha(1e-3, 60).unwrap();
        assert!(after >= before - 1e-9, "{before} -> {after}");
        assert!((crate::modelopt::ALPHA_MIN..=crate::modelopt::ALPHA_MAX).contains(&alpha));
        // The optimum should be much closer to the simulation value than
        // the deliberately wrong start.
        assert!(alpha < 5.0, "optimised alpha {alpha}");
    }

    #[test]
    fn alpha_stationarity() {
        let mut engine = build_engine(10, 120, 62);
        let (alpha, lnl) = engine.optimize_alpha(1e-4, 80).unwrap();
        for factor in [0.9, 1.1] {
            engine.set_alpha(alpha * factor);
            let l = engine.log_likelihood().unwrap();
            assert!(l <= lnl + 1e-6, "alpha {} beats optimum", alpha * factor);
        }
    }
}
