//! The Phylogenetic Likelihood Function (PLF) engine.
//!
//! Computes the likelihood of a multiple sequence alignment on an unrooted
//! binary tree by the Felsenstein pruning algorithm, in the architecture of
//! RAxML (the paper's host program):
//!
//! * one *ancestral probability vector* per inner node, laid out
//!   `[pattern][rate category][state]` as one contiguous block — the unit
//!   the out-of-core layer pages,
//! * tip lookup tables for ambiguity-coded tips ([`encode`]),
//! * `newview` combine kernels with 2⁻²⁵⁶ underflow scaling
//!   ([`kernels::newview`], [`scaling`]), behind runtime-dispatched
//!   backends — scalar reference, unrolled DNA/Γ4, AVX2+FMA
//!   ([`kernels::backend`]), selected per CPU at engine construction and
//!   overridable via `OOC_PLF_KERNEL` or `--kernel`,
//! * root evaluation and eigenbasis "sumtable" branch-length derivatives
//!   for Newton–Raphson optimisation ([`kernels::evaluate`],
//!   [`kernels::derivatives`]),
//! * orientation-aware full and partial traversals ([`engine`]),
//! * Γ-shape and branch-length optimisation ([`modelopt`], [`brlen`]).
//!
//! The engine is generic over an [`AncestralStore`]: the same maths runs
//! fully in RAM ([`store_api::InRamStore`]), out-of-core through
//! `ooc_core::VectorManager` ([`store_api::OocStore`]), or against the
//! paging simulator ([`store_api::PagedStore`]). The paper's correctness
//! criterion — bit-identical log-likelihoods across all three — is enforced
//! in this crate's tests.

pub mod brlen;
pub mod encode;
pub mod engine;
pub mod kernels;
pub mod likelihood_api;
pub mod modelopt;
pub mod oracle;
pub mod partition;
pub mod scaling;
pub mod sharded;
pub mod spec;
pub mod store_api;

pub use encode::TipCodes;
pub use engine::{PlfEngine, PlfModel};
pub use kernels::KernelBackend;
pub use likelihood_api::LikelihoodEngine;
pub use oracle::{SharedTree, TreeOracle};
pub use partition::{NrBranchEngine, PartitionedPlfEngine};
pub use sharded::ShardedPlfEngine;
pub use spec::{
    BuildContext, BuiltEngine, DynEngine, EngineSpec, PartSpec, Residency, SpecError, SpecSpace,
};
pub use store_api::{AncestralStore, InRamStore, OocStore, PagedStore, VectorSession};
