//! Service-level behavior: queue bounds, cancellation, protocol handling
//! over real TCP, and job outcomes.

use ooc_serve::net::{self, Request};
use ooc_serve::{
    solo_likelihood, DatasetRequest, JobKind, JobRequest, JobStatus, ServeConfig, Service,
    SubmitError,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PROFILE: &str = "residency = \"ooc-mem\"\nfraction = 0.4\nstrategy = \"lru\"\n";

fn small_dataset(seed: u64) -> DatasetRequest {
    DatasetRequest {
        n_taxa: 12,
        n_sites: 300,
        seed,
        partitions: None,
    }
}

fn likelihood_req(tenant: &str, seed: u64) -> JobRequest {
    JobRequest {
        tenant: tenant.into(),
        dataset: small_dataset(seed),
        profile: PROFILE.into(),
        job: JobKind::Likelihood { traversals: 1 },
    }
}

fn cfg(workers: usize) -> ServeConfig {
    ServeConfig {
        arena_bytes: 32 << 20,
        workers,
        scratch_dir: std::env::temp_dir(),
        ..ServeConfig::default()
    }
}

#[test]
fn served_likelihood_matches_solo_run() {
    let service = Service::start(cfg(1)).unwrap();
    let scratch = std::env::temp_dir().join("serve-test-solo.vec");
    let (solo, solo_parts) = solo_likelihood(&small_dataset(42), PROFILE, 1, &scratch).unwrap();

    let id = service.submit(likelihood_req("t", 42)).unwrap();
    match service.wait(id).unwrap() {
        JobStatus::Done {
            lnl,
            partition_lnls,
            batch,
        } => {
            assert_eq!(lnl, solo, "served lnL must be bit-identical to solo");
            assert_eq!(partition_lnls, solo_parts);
            assert!(batch.is_none());
        }
        other => panic!("expected done, got {other:?}"),
    }
    assert_eq!(service.counters().admissions, 1);
    assert_eq!(service.counters().releases, 1);
    assert_eq!(service.n_tenants(), 0, "grant released at job end");
}

#[test]
fn evaluate_batch_scores_each_root_against_the_cache() {
    let service = Service::start(cfg(1)).unwrap();
    let req = JobRequest {
        job: JobKind::EvaluateBatch {
            roots: vec![0, 2, 4],
        },
        ..likelihood_req("t", 9)
    };
    let id = service.submit(req).unwrap();
    match service.wait(id).unwrap() {
        JobStatus::Done { lnl, batch, .. } => {
            let batch = batch.expect("evaluate-batch returns per-root lnls");
            assert_eq!(batch.len(), 3);
            // Re-rooting a reversible model never changes the likelihood.
            for b in batch {
                assert!(
                    (b - lnl).abs() < 1e-6,
                    "root-invariance violated: {b} vs {lnl}"
                );
            }
        }
        other => panic!("expected done, got {other:?}"),
    }
}

#[test]
fn out_of_range_batch_root_fails_the_job() {
    let service = Service::start(cfg(1)).unwrap();
    let req = JobRequest {
        job: JobKind::EvaluateBatch { roots: vec![9999] },
        ..likelihood_req("t", 9)
    };
    let id = service.submit(req).unwrap();
    match service.wait(id).unwrap() {
        JobStatus::Failed { error } => assert!(error.contains("out of range"), "{error}"),
        other => panic!("expected failed, got {other:?}"),
    }
}

#[test]
fn bad_profile_and_bad_dataset_fail_cleanly() {
    let service = Service::start(cfg(1)).unwrap();
    let bad_profile = JobRequest {
        profile: "residency = \"warp-drive\"\n".into(),
        ..likelihood_req("t", 1)
    };
    let id = service.submit(bad_profile).unwrap();
    assert!(matches!(
        service.wait(id).unwrap(),
        JobStatus::Failed { .. }
    ));

    let bad_dataset = JobRequest {
        dataset: DatasetRequest {
            n_taxa: 8,
            n_sites: 0,
            seed: 1,
            partitions: None,
        },
        ..likelihood_req("t", 1)
    };
    let id = service.submit(bad_dataset).unwrap();
    assert!(matches!(
        service.wait(id).unwrap(),
        JobStatus::Failed { .. }
    ));
    assert_eq!(service.n_tenants(), 0);
}

#[test]
fn full_queue_refuses_instead_of_buffering() {
    let service = Service::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..cfg(1)
    })
    .unwrap();
    // An effectively unbounded job occupies the single worker (it is
    // cancelled at the end, aborting at its next slot transfer)...
    let slow = JobRequest {
        job: JobKind::Likelihood {
            traversals: 1_000_000,
        },
        ..likelihood_req("slow", 3)
    };
    let running = service.submit(slow).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.status(running) == Some(JobStatus::Queued) {
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    // ...one job fits in the queue, the next is refused.
    let queued = service.submit(likelihood_req("q", 4)).unwrap();
    let refused = service.submit(likelihood_req("r", 5));
    assert_eq!(refused, Err(SubmitError::QueueFull));
    // Refused submissions leave no tracked job behind.
    assert!(service.status(running).is_some());
    assert!(service.status(queued).is_some());
    service.cancel(running);
    service.cancel(queued);
    assert!(service.wait(running).unwrap().is_terminal());
    assert!(service.wait(queued).unwrap().is_terminal());
}

#[test]
fn cancelling_a_queued_job_prevents_it_from_running() {
    let service = Service::start(ServeConfig {
        workers: 1,
        ..cfg(1)
    })
    .unwrap();
    // Effectively unbounded, so the victim stays queued until cancelled.
    let slow = JobRequest {
        job: JobKind::Likelihood {
            traversals: 1_000_000,
        },
        ..likelihood_req("slow", 3)
    };
    let running = service.submit(slow).unwrap();
    let victim = service.submit(likelihood_req("victim", 4)).unwrap();
    assert!(service.cancel(victim), "known job id");
    assert!(!service.cancel(9999), "unknown job id");
    assert_eq!(service.wait(victim).unwrap(), JobStatus::Cancelled);
    service.cancel(running);
    assert!(service.wait(running).unwrap().is_terminal());
}

#[test]
fn wire_protocol_round_trips_over_tcp() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let service = Arc::new(Service::start(cfg(2)).unwrap());
    {
        let service = service.clone();
        std::thread::spawn(move || {
            let _ = net::serve(service, listener);
        });
    }

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut rpc = |req: &Request| -> String {
        let mut line = req.to_json();
        line.push('\n');
        writer.write_all(line.as_bytes()).unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };

    let resp = rpc(&Request::Submit(likelihood_req("tcp", 8)));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"job\":1"), "{resp}");

    let resp = rpc(&Request::Wait { job: 1 });
    assert!(resp.contains("\"status\":\"done\""), "{resp}");
    assert!(resp.contains("\"lnl\":-"), "{resp}");

    let resp = rpc(&Request::Counters);
    assert!(resp.contains("\"admissions\":1"), "{resp}");

    let resp = rpc(&Request::Status { job: 77 });
    assert!(resp.contains("\"ok\":false"), "{resp}");

    // Malformed input is a protocol error, not a dropped connection.
    writer.write_all(b"not json\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(resp.contains("malformed request"), "{resp}");
}
