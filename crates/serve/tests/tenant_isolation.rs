//! Satellite of the multi-tenant service: concurrent tenants sharing one
//! slot arena must be *computationally invisible* to each other. N tenants
//! produce lnLs bit-identical to solo (arena-free) runs — under LRU and
//! under the oracle-driven NextUse strategy — an ungrantable job is
//! rejected (never OOM), and a cancellation mid-traversal leaves the arena
//! fully reusable.

use ooc_serve::{
    solo_likelihood, DatasetRequest, JobKind, JobRequest, JobStatus, PartitionRequest, ServeConfig,
    Service,
};
use std::time::{Duration, Instant};

const LRU_PROFILE: &str = "residency = \"ooc-mem\"\nfraction = 0.5\nstrategy = \"lru\"\n";
const NEXT_USE_PROFILE: &str = "residency = \"ooc-mem\"\nfraction = 0.5\nstrategy = \"next-use\"\n";

/// Four tenants with distinct datasets (one partitioned), submitted
/// together against a deliberately tight arena so allowances shrink and
/// managers trim while all four are in flight.
fn tenant_requests(profile: &str) -> Vec<JobRequest> {
    let datasets = vec![
        DatasetRequest {
            n_taxa: 16,
            n_sites: 1200,
            seed: 101,
            partitions: None,
        },
        DatasetRequest {
            n_taxa: 12,
            n_sites: 900,
            seed: 202,
            partitions: None,
        },
        DatasetRequest {
            n_taxa: 10,
            n_sites: 0,
            seed: 303,
            partitions: Some(vec![
                PartitionRequest {
                    kind: "dna".into(),
                    n_sites: 500,
                },
                PartitionRequest {
                    kind: "protein".into(),
                    n_sites: 200,
                },
            ]),
        },
        DatasetRequest {
            n_taxa: 14,
            n_sites: 700,
            seed: 404,
            partitions: None,
        },
    ];
    datasets
        .into_iter()
        .enumerate()
        .map(|(i, dataset)| JobRequest {
            tenant: format!("tenant-{i}"),
            dataset,
            profile: profile.into(),
            job: JobKind::Likelihood { traversals: 6 },
        })
        .collect()
}

fn run_concurrent_and_compare(profile: &str) {
    let reqs = tenant_requests(profile);
    let scratch = std::env::temp_dir();

    // Ground truth first: each request solo, no arena anywhere.
    let solo: Vec<(f64, Vec<f64>)> = reqs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            solo_likelihood(
                &r.dataset,
                &r.profile,
                1,
                &scratch.join(format!("isolation-solo-{i}.vec")),
            )
            .unwrap()
        })
        .collect();

    let service = Service::start(ServeConfig {
        arena_bytes: 2 << 20, // tight: forces allowance shrink under overlap
        workers: 4,
        scratch_dir: scratch,
        ..ServeConfig::default()
    })
    .unwrap();
    let ids: Vec<u64> = reqs
        .into_iter()
        .map(|r| service.submit(r).unwrap())
        .collect();

    for (i, id) in ids.iter().enumerate() {
        match service.wait(*id).unwrap() {
            JobStatus::Done {
                lnl,
                partition_lnls,
                ..
            } => {
                assert_eq!(
                    lnl, solo[i].0,
                    "tenant {i}: concurrent lnL must be bit-identical to solo"
                );
                assert_eq!(partition_lnls, solo[i].1, "tenant {i}: partition lnls");
            }
            other => panic!("tenant {i}: expected done, got {other:?}"),
        }
    }
    let c = service.counters();
    assert_eq!(c.admissions, 4);
    assert_eq!(c.releases, 4);
    assert_eq!(service.n_tenants(), 0, "arena fully drained");
}

#[test]
fn concurrent_tenants_are_bit_identical_to_solo_under_lru() {
    run_concurrent_and_compare(LRU_PROFILE);
}

#[test]
fn concurrent_tenants_are_bit_identical_to_solo_under_next_use() {
    run_concurrent_and_compare(NEXT_USE_PROFILE);
}

#[test]
fn ungrantable_job_is_rejected_not_oomed() {
    let service = Service::start(ServeConfig {
        arena_bytes: 1 << 20,
        workers: 1,
        scratch_dir: std::env::temp_dir(),
        ..ServeConfig::default()
    })
    .unwrap();
    // 3-slot pinned floor of this dataset alone exceeds the 1 MiB arena.
    let id = service
        .submit(JobRequest {
            tenant: "greedy".into(),
            dataset: DatasetRequest {
                n_taxa: 32,
                n_sites: 8000,
                seed: 1,
                partitions: None,
            },
            profile: LRU_PROFILE.into(),
            job: JobKind::Likelihood { traversals: 1 },
        })
        .unwrap();
    match service.wait(id).unwrap() {
        JobStatus::Rejected { reason } => {
            assert!(reason.contains("minimum cannot be guaranteed"), "{reason}")
        }
        other => panic!("expected rejected, got {other:?}"),
    }
    assert_eq!(service.counters().rejections, 1);
    assert_eq!(service.counters().admissions, 0);
    assert_eq!(service.n_tenants(), 0);
}

#[test]
fn cancellation_mid_traversal_leaves_the_arena_reusable() {
    let scratch = std::env::temp_dir();
    let service = Service::start(ServeConfig {
        arena_bytes: 8 << 20,
        workers: 1,
        scratch_dir: scratch.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    let dataset = DatasetRequest {
        n_taxa: 16,
        n_sites: 1500,
        seed: 77,
        partitions: None,
    };
    // File-backed and effectively unbounded, so the cancel is guaranteed
    // to land mid-traversal rather than racing a fast completion.
    let victim = service
        .submit(JobRequest {
            tenant: "victim".into(),
            dataset: dataset.clone(),
            profile: "residency = \"file\"\nfraction = 0.25\nstrategy = \"lru\"\n".into(),
            job: JobKind::Likelihood {
                traversals: 1_000_000,
            },
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.status(victim) == Some(JobStatus::Queued) {
        assert!(Instant::now() < deadline, "victim never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(20));
    assert!(service.cancel(victim));
    assert_eq!(service.wait(victim).unwrap(), JobStatus::Cancelled);
    assert_eq!(service.n_tenants(), 0, "cancelled grant released");

    // The arena keeps serving: a fresh tenant still computes the right
    // answer after the aborted one.
    let (solo, _) = solo_likelihood(
        &dataset,
        LRU_PROFILE,
        1,
        &scratch.join("isolation-after-cancel.vec"),
    )
    .unwrap();
    let next = service
        .submit(JobRequest {
            tenant: "after".into(),
            dataset,
            profile: LRU_PROFILE.into(),
            job: JobKind::Likelihood { traversals: 1 },
        })
        .unwrap();
    match service.wait(next).unwrap() {
        JobStatus::Done { lnl, .. } => assert_eq!(lnl, solo),
        other => panic!("expected done, got {other:?}"),
    }
}
