//! Line-delimited JSON over TCP: one request object per line in, one
//! response object per line out. The protocol is deliberately minimal —
//! submit / status / wait / cancel / counters — so any language with a
//! socket and a JSON library is a client (`nc` works). Parsing and
//! emission are hand-rolled on [`crate::json`]; the payloads are small
//! flat objects and the wire format stays inspectable with `cat`.
//!
//! ```text
//! → {"op":"submit","tenant":"a","dataset":{"n_taxa":16,"n_sites":200,"seed":7},
//!    "profile":"residency = \"ooc-mem\"\nfraction = 0.25\n","job":{"kind":"likelihood"}}
//! ← {"ok":true,"job":1}
//! → {"op":"wait","job":1}
//! ← {"ok":true,"job":1,"status":{"status":"done","lnl":-2137.42,...}}
//! → {"op":"counters"}
//! ← {"ok":true,"counters":{"admissions":1,"rejections":0,...}}
//! ```

use crate::json::{escape, fmt_f64, fmt_f64_array, Value};
use crate::{DatasetRequest, JobKind, JobRequest, JobStatus, PartitionRequest, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; responds with its id.
    Submit(JobRequest),
    /// Current status of a job (non-blocking).
    Status {
        /// Job id.
        job: u64,
    },
    /// Block until the job is terminal, then respond with its status.
    Wait {
        /// Job id.
        job: u64,
    },
    /// Cancel a job.
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Arena counters snapshot.
    Counters,
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn get_usize(v: &Value, key: &str) -> Result<usize, String> {
    Ok(get_u64(v, key)? as usize)
}

fn get_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn parse_dataset(v: &Value) -> Result<DatasetRequest, String> {
    let partitions = match v.get("partitions") {
        None | Some(Value::Null) => None,
        Some(p) => {
            let arr = p.as_array().ok_or("'partitions' must be an array")?;
            Some(
                arr.iter()
                    .map(|part| {
                        Ok(PartitionRequest {
                            kind: get_str(part, "kind")?,
                            n_sites: get_usize(part, "n_sites")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            )
        }
    };
    Ok(DatasetRequest {
        n_taxa: get_usize(v, "n_taxa")?,
        // n_sites is optional for partitioned datasets.
        n_sites: v.get("n_sites").and_then(Value::as_u64).unwrap_or(0) as usize,
        seed: get_u64(v, "seed")?,
        partitions,
    })
}

fn parse_job_kind(v: &Value) -> Result<JobKind, String> {
    let kind = get_str(v, "kind")?;
    match kind.as_str() {
        "likelihood" => Ok(JobKind::Likelihood {
            traversals: v.get("traversals").and_then(Value::as_u64).unwrap_or(1) as usize,
        }),
        "smooth-branches" => Ok(JobKind::SmoothBranches {
            passes: get_usize(v, "passes")?,
            nr_iter: get_u64(v, "nr_iter")? as u32,
        }),
        "search" => Ok(JobKind::Search {
            max_rounds: get_usize(v, "max_rounds")?,
            spr_radius: v.get("spr_radius").and_then(Value::as_u64).unwrap_or(5) as u32,
        }),
        "evaluate-batch" => {
            let roots = v
                .get("roots")
                .and_then(Value::as_array)
                .ok_or("missing 'roots' array")?
                .iter()
                .map(|r| r.as_u64().map(|n| n as u32).ok_or("non-integer root"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(JobKind::EvaluateBatch { roots })
        }
        other => Err(format!("unknown job kind '{other}'")),
    }
}

fn dataset_json(d: &DatasetRequest) -> String {
    let mut out = format!(
        "{{\"n_taxa\":{},\"n_sites\":{},\"seed\":{}",
        d.n_taxa, d.n_sites, d.seed
    );
    if let Some(parts) = &d.partitions {
        let items: Vec<String> = parts
            .iter()
            .map(|p| {
                format!(
                    "{{\"kind\":\"{}\",\"n_sites\":{}}}",
                    escape(&p.kind),
                    p.n_sites
                )
            })
            .collect();
        out.push_str(&format!(",\"partitions\":[{}]", items.join(",")));
    }
    out.push('}');
    out
}

fn job_kind_json(k: &JobKind) -> String {
    match k {
        JobKind::Likelihood { traversals } => {
            format!("{{\"kind\":\"likelihood\",\"traversals\":{traversals}}}")
        }
        JobKind::SmoothBranches { passes, nr_iter } => {
            format!("{{\"kind\":\"smooth-branches\",\"passes\":{passes},\"nr_iter\":{nr_iter}}}")
        }
        JobKind::Search {
            max_rounds,
            spr_radius,
        } => format!(
            "{{\"kind\":\"search\",\"max_rounds\":{max_rounds},\"spr_radius\":{spr_radius}}}"
        ),
        JobKind::EvaluateBatch { roots } => {
            let items: Vec<String> = roots.iter().map(u32::to_string).collect();
            format!(
                "{{\"kind\":\"evaluate-batch\",\"roots\":[{}]}}",
                items.join(",")
            )
        }
    }
}

impl Request {
    /// Render as one wire line (no trailing newline) — the client half of
    /// the protocol, used by the `ooc-serve smoke` driver and tests.
    pub fn to_json(&self) -> String {
        match self {
            Request::Submit(j) => format!(
                "{{\"op\":\"submit\",\"tenant\":\"{}\",\"dataset\":{},\"profile\":\"{}\",\"job\":{}}}",
                escape(&j.tenant),
                dataset_json(&j.dataset),
                escape(&j.profile),
                job_kind_json(&j.job)
            ),
            Request::Status { job } => format!("{{\"op\":\"status\",\"job\":{job}}}"),
            Request::Wait { job } => format!("{{\"op\":\"wait\",\"job\":{job}}}"),
            Request::Cancel { job } => format!("{{\"op\":\"cancel\",\"job\":{job}}}"),
            Request::Counters => "{\"op\":\"counters\"}".to_string(),
        }
    }

    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Value::parse(line)?;
        let op = get_str(&v, "op")?;
        match op.as_str() {
            "submit" => Ok(Request::Submit(JobRequest {
                tenant: get_str(&v, "tenant")?,
                dataset: parse_dataset(v.get("dataset").ok_or("missing 'dataset'")?)?,
                profile: get_str(&v, "profile")?,
                job: parse_job_kind(v.get("job").ok_or("missing 'job'")?)?,
            })),
            "status" => Ok(Request::Status {
                job: get_u64(&v, "job")?,
            }),
            "wait" => Ok(Request::Wait {
                job: get_u64(&v, "job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: get_u64(&v, "job")?,
            }),
            "counters" => Ok(Request::Counters),
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

/// Render a [`JobStatus`] as a JSON object.
pub fn status_json(status: &JobStatus) -> String {
    match status {
        JobStatus::Queued => "{\"status\":\"queued\"}".to_string(),
        JobStatus::Running => "{\"status\":\"running\"}".to_string(),
        JobStatus::Done {
            lnl,
            partition_lnls,
            batch,
        } => {
            let mut out = format!(
                "{{\"status\":\"done\",\"lnl\":{},\"partition_lnls\":{}",
                fmt_f64(*lnl),
                fmt_f64_array(partition_lnls)
            );
            if let Some(batch) = batch {
                out.push_str(&format!(",\"batch\":{}", fmt_f64_array(batch)));
            }
            out.push('}');
            out
        }
        JobStatus::Rejected { reason } => {
            format!(
                "{{\"status\":\"rejected\",\"reason\":\"{}\"}}",
                escape(reason)
            )
        }
        JobStatus::Cancelled => "{\"status\":\"cancelled\"}".to_string(),
        JobStatus::Failed { error } => {
            format!("{{\"status\":\"failed\",\"error\":\"{}\"}}", escape(error))
        }
    }
}

/// One response line.
#[derive(Debug, Clone)]
pub struct Response {
    /// Request handled without a protocol error (a *rejected or failed
    /// job* still answers `ok: true` — the outcome is in `status`).
    pub ok: bool,
    /// Job id, for job-scoped responses.
    pub job: Option<u64>,
    /// Job status, for `status`/`wait` responses.
    pub status: Option<JobStatus>,
    /// Counters, for `counters` responses.
    pub counters: Option<ooc_core::ArenaCounters>,
    /// Protocol error message when `ok` is false.
    pub error: Option<String>,
}

impl Response {
    fn err(msg: impl Into<String>) -> Self {
        Response {
            ok: false,
            job: None,
            status: None,
            counters: None,
            error: Some(msg.into()),
        }
    }

    fn ok() -> Self {
        Response {
            ok: true,
            job: None,
            status: None,
            counters: None,
            error: None,
        }
    }

    /// Render as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"ok\":{}", self.ok);
        if let Some(job) = self.job {
            out.push_str(&format!(",\"job\":{job}"));
        }
        if let Some(status) = &self.status {
            out.push_str(&format!(",\"status\":{}", status_json(status)));
        }
        if let Some(c) = &self.counters {
            out.push_str(&format!(
                ",\"counters\":{{\"admissions\":{},\"rejections\":{},\"releases\":{},\"fair_evictions\":{}}}",
                c.admissions, c.rejections, c.releases, c.fair_evictions
            ));
        }
        if let Some(e) = &self.error {
            out.push_str(&format!(",\"error\":\"{}\"", escape(e)));
        }
        out.push('}');
        out
    }
}

/// Handle one request against the service.
pub fn handle(service: &Service, req: Request) -> Response {
    match req {
        Request::Submit(req) => match service.submit(req) {
            Ok(id) => Response {
                job: Some(id),
                ..Response::ok()
            },
            Err(e) => Response::err(e.to_string()),
        },
        Request::Status { job } => match service.status(job) {
            Some(status) => Response {
                job: Some(job),
                status: Some(status),
                ..Response::ok()
            },
            None => Response::err(format!("unknown job {job}")),
        },
        Request::Wait { job } => match service.wait(job) {
            Some(status) => Response {
                job: Some(job),
                status: Some(status),
                ..Response::ok()
            },
            None => Response::err(format!("unknown job {job}")),
        },
        Request::Cancel { job } => {
            if service.cancel(job) {
                Response {
                    job: Some(job),
                    ..Response::ok()
                }
            } else {
                Response::err(format!("unknown job {job}"))
            }
        }
        Request::Counters => Response {
            counters: Some(service.counters()),
            ..Response::ok()
        },
    }
}

fn serve_connection(service: &Service, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let resp = match Request::parse(&line) {
            Ok(req) => handle(service, req),
            Err(e) => Response::err(format!("malformed request: {e}")),
        };
        let mut out = resp.to_json();
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            return;
        }
    }
}

/// Accept connections forever, one thread per connection. Returns only on
/// listener error. Call with a pre-bound listener so tests can use an
/// ephemeral port (`TcpListener::bind("127.0.0.1:0")`).
pub fn serve(service: Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        let service = service.clone();
        std::thread::spawn(move || serve_connection(&service, stream));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_submit_with_partitions_and_batch() {
        let req = Request::parse(
            r#"{"op":"submit","tenant":"t","profile":"residency = \"inram\"",
                "dataset":{"n_taxa":8,"seed":3,"partitions":[{"kind":"dna","n_sites":40}]},
                "job":{"kind":"evaluate-batch","roots":[1,2]}}"#,
        )
        .unwrap();
        match req {
            Request::Submit(j) => {
                assert_eq!(j.tenant, "t");
                assert_eq!(j.dataset.partitions.as_ref().unwrap().len(), 1);
                assert_eq!(j.job, JobKind::EvaluateBatch { roots: vec![1, 2] });
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn job_kind_defaults_mirror_the_wire_doc() {
        let req = Request::parse(
            r#"{"op":"submit","tenant":"t","profile":"p",
                "dataset":{"n_taxa":8,"n_sites":100,"seed":3},
                "job":{"kind":"likelihood"}}"#,
        )
        .unwrap();
        match req {
            Request::Submit(j) => assert_eq!(j.job, JobKind::Likelihood { traversals: 1 }),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn status_json_round_trips_through_parser() {
        let s = JobStatus::Done {
            lnl: -2137.5,
            partition_lnls: vec![-1000.25, -1137.25],
            batch: Some(vec![-2137.5]),
        };
        let v = Value::parse(&status_json(&s)).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("done"));
        assert_eq!(v.get("lnl"), Some(&Value::Float(-2137.5)));
        assert_eq!(
            v.get("partition_lnls")
                .and_then(Value::as_array)
                .unwrap()
                .len(),
            2
        );

        let r = JobStatus::Rejected {
            reason: "want 10 bytes, \"arena\" has 5".into(),
        };
        let v = Value::parse(&status_json(&r)).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("rejected"));
    }

    #[test]
    fn request_wire_round_trips() {
        let reqs = vec![
            Request::Submit(JobRequest {
                tenant: "a/b".into(),
                dataset: DatasetRequest {
                    n_taxa: 16,
                    n_sites: 0,
                    seed: 7,
                    partitions: Some(vec![PartitionRequest {
                        kind: "dna".into(),
                        n_sites: 90,
                    }]),
                },
                profile: "residency = \"ooc-mem\"\nfraction = 0.25\n".into(),
                job: JobKind::Search {
                    max_rounds: 3,
                    spr_radius: 5,
                },
            }),
            Request::Status { job: 3 },
            Request::Wait { job: 4 },
            Request::Cancel { job: 5 },
            Request::Counters,
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.to_json()).unwrap(), r, "{}", r.to_json());
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "{}",
            r#"{"op":"unknown"}"#,
            r#"{"op":"status"}"#,
            r#"{"op":"submit","tenant":"t"}"#,
            "not json",
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
