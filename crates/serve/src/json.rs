//! Minimal JSON value, recursive-descent parser, and emit helpers for the
//! line-delimited wire protocol. Local to this crate for the same reason
//! `metrics_check` carries its own copy: the payloads are small flat
//! objects and keeping reader and writer dependency-free mirrors the
//! JSONL writer in `ooc_core::obs`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (the common case for ids and counters).
    Int(u64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }
    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
    /// Parse one JSON document (strict: no trailing bytes).
    pub fn parse(input: &str) -> Result<Value, String> {
        Parser::parse(input)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(input: &'a str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy a run of plain bytes (UTF-8 passes through).
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("invalid number '{text}'"))
    }
}

// ---------------------------------------------------------------------------
// Emit helpers — string building, mirroring ooc_core::obs's JSONL writer.
// ---------------------------------------------------------------------------

/// Escape a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as JSON (non-finite values become `null` — JSON has no
/// NaN/Infinity and a likelihood that isn't finite is a reportable state,
/// not a protocol error).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Format a slice of `f64` as a JSON array.
pub fn fmt_f64_array(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|v| fmt_f64(*v)).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_request_shapes() {
        let v = Value::parse(
            r#"{"op":"submit","tenant":"a/b","dataset":{"n_taxa":16,"seed":7},
               "job":{"kind":"evaluate-batch","roots":[0,3,5]},"x":-1.5e2}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("submit"));
        assert_eq!(
            v.get("dataset")
                .and_then(|d| d.get("n_taxa"))
                .and_then(Value::as_u64),
            Some(16)
        );
        let roots = v.get("job").and_then(|j| j.get("roots")).unwrap();
        assert_eq!(roots.as_array().unwrap().len(), 3);
        assert_eq!(v.get("x"), Some(&Value::Float(-150.0)));
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "line\none\t\"quoted\" back\\slash \u{0001}";
        let doc = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn fmt_f64_is_json_safe() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        let lnl = -2137.4242;
        assert_eq!(Value::parse(&fmt_f64(lnl)).unwrap(), Value::Float(lnl));
        assert_eq!(fmt_f64_array(&[1.0, -2.5]), "[1.0,-2.5]");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "{\"a\":}",
            "[1,]",
            "\"unterminated",
            "{\"a\":1} extra",
            "nul",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
