//! `ooc-serve` — a multi-tenant likelihood service over one shared slot
//! arena.
//!
//! The paper bounds *one* analysis to a RAM fraction `f`; a server runs
//! *many* concurrent analyses against one physical memory budget. This
//! crate composes the pieces the lower layers already provide:
//!
//! * **admission control** — every job declares its slot-RAM demand
//!   (`EngineSpec::memory_demand`) before construction; the
//!   [`SlotArena`] either grants it (reserving the 3-slots-per-manager
//!   pinned floor) or rejects the job outright — an ungrantable job is a
//!   *rejected* job, never an OOM;
//! * **fair cross-tenant eviction** — each tenant's managers charge slot
//!   buffers against an elastic allowance (largest-remainder share of the
//!   arena surplus); when admissions shrink an allowance, the tenant
//!   trims its own residency, never its neighbors' (see
//!   `ooc_core::arena`);
//! * **bounded job queue with cancellation** — a condvar-backed queue of
//!   fixed depth; each job carries a [`CancelToken`] enforced at every
//!   backing-store transfer, so a cancelled traversal aborts at the next
//!   I/O and the grant is released;
//! * **batched evaluation** — evaluate-only queries
//!   ([`JobKind::EvaluateBatch`]) run one full traversal, then score every
//!   requested root branch against the cached vectors;
//! * **per-tenant observability** — each job gets metrics scopes
//!   `tenant/job-N[/partition]` in the existing JSONL schema, headed by a
//!   `profile` record carrying the exact `EngineSpec` TOML, so noisy
//!   neighbors are attributable with `metrics_check`.
//!
//! Engines are constructed *exclusively* through [`EngineSpec`]: a job is
//! a dataset description plus a TOML profile plus a job kind.

use ooc_core::{
    AdmissionError, ArenaCounters, CancelToken, JsonlSink, MemorySink, MonotonicClock, OocStats,
    Recorder, SlotArena,
};
use parking_lot::{Condvar, Mutex};
use phylo_ooc::setup::{self, Dataset, DatasetSpec, PartitionedDataset};
use phylo_plf::{BuildContext, EngineSpec, LikelihoodEngine, PartSpec};
use phylo_search::hillclimb::{hill_climb_observed, SearchConfig};
use phylo_seq::PartitionKind;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

pub mod json;
pub mod net;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total slot-RAM budget shared by every concurrent tenant (the
    /// server-wide analogue of the paper's `-L` flag).
    pub arena_bytes: u64,
    /// Worker threads draining the job queue (= max concurrent engines).
    pub workers: usize,
    /// Bounded job-queue depth; submissions beyond it are refused with
    /// [`SubmitError::QueueFull`] instead of buffering without bound.
    pub queue_depth: usize,
    /// Per-tenant JSONL metrics stream (appended; scopes
    /// `tenant/job-N[/partition]`). `None` disables metrics.
    pub metrics_path: Option<PathBuf>,
    /// Directory for file-backed vector stores of file-residency jobs.
    pub scratch_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            arena_bytes: 64 << 20,
            workers: 2,
            queue_depth: 64,
            metrics_path: None,
            scratch_dir: std::env::temp_dir(),
        }
    }
}

/// One partition of a job's dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionRequest {
    /// `"dna"`, `"protein"` or `"codon"`.
    pub kind: String,
    /// Sites in this partition (codon sites for codon partitions).
    pub n_sites: usize,
}

/// The dataset a job runs on — the repo's standard simulated stand-in for
/// an uploaded alignment (deterministic in `seed`, so solo and served
/// runs of the same request see bit-identical data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetRequest {
    /// Taxa (tree tips).
    pub n_taxa: usize,
    /// Alignment sites (ignored when `partitions` is given).
    pub n_sites: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Optional partition list; present ⇒ a partitioned analysis.
    pub partitions: Option<Vec<PartitionRequest>>,
}

/// What to do with the engine once admitted and built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// `traversals` full traversals; returns the final joint lnL plus
    /// per-partition lnLs.
    Likelihood {
        /// Full traversals to run (≥ 1).
        traversals: usize,
    },
    /// Branch-length smoothing passes (Newton–Raphson per branch).
    SmoothBranches {
        /// Smoothing passes over all branches.
        passes: usize,
        /// Newton iterations per branch.
        nr_iter: u32,
    },
    /// Lazy-SPR hill-climbing tree search.
    Search {
        /// Maximum SPR rounds.
        max_rounds: usize,
        /// SPR rearrangement radius.
        spr_radius: u32,
    },
    /// Evaluate-only batch: one full traversal caches every vector, then
    /// each listed root half-edge is scored against the cache.
    EvaluateBatch {
        /// Root half-edges to evaluate (tree half-edge indices).
        roots: Vec<u32>,
    },
}

/// A job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Tenant label; prefixes the job's metrics scopes.
    pub tenant: String,
    /// The dataset to analyse.
    pub dataset: DatasetRequest,
    /// Engine profile: [`EngineSpec`] TOML (see `EngineSpec::to_toml`).
    pub profile: String,
    /// The work to run.
    pub job: JobKind,
}

/// Terminal (or in-flight) state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// In the queue, not yet started.
    Queued,
    /// A worker is running it.
    Running,
    /// Completed.
    Done {
        /// Joint log-likelihood.
        lnl: f64,
        /// Per-partition log-likelihoods (one entry if unpartitioned).
        partition_lnls: Vec<f64>,
        /// Batch-evaluation results (`EvaluateBatch` only).
        batch: Option<Vec<f64>>,
    },
    /// Admission control refused the memory grant (never an OOM).
    Rejected {
        /// Why (demand vs. arena state).
        reason: String,
    },
    /// Cancelled before or during execution; the arena grant is released.
    Cancelled,
    /// The job errored (bad profile, I/O failure, …).
    Failed {
        /// The error.
        error: String,
    },
}

impl JobStatus {
    /// Has the job reached a terminal state?
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// Why a submission was refused at the front door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — back off and resubmit.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct JobState {
    status: Mutex<JobStatus>,
    done: Condvar,
    cancel: CancelToken,
}

impl JobState {
    fn set(&self, status: JobStatus) {
        *self.status.lock() = status;
        self.done.notify_all();
    }
}

struct QueuedJob {
    id: u64,
    req: JobRequest,
    state: Arc<JobState>,
}

/// Bounded MPMC job queue: `try_push` refuses at capacity (the shim
/// crates ship no bounded channel, and the refusal semantics — reject,
/// don't buffer unboundedly — are the point, so the queue is explicit:
/// a `VecDeque` under a mutex with a condvar for the blocking pop).
struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner {
    q: VecDeque<QueuedJob>,
    closed: bool,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                q: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn try_push(&self, job: QueuedJob) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.q.len() >= self.cap {
            return Err(SubmitError::QueueFull);
        }
        inner.q.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(job) = inner.q.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            self.ready.wait(&mut inner);
        }
    }

    /// Drop a still-queued job; false if it already left the queue.
    fn remove(&self, id: u64) -> bool {
        let mut inner = self.inner.lock();
        let before = inner.q.len();
        inner.q.retain(|j| j.id != id);
        inner.q.len() != before
    }

    fn close(&self) {
        self.inner.lock().closed = true;
        self.ready.notify_all();
    }
}

/// The service: a shared arena, a bounded queue, and worker threads that
/// admit → build → run → release.
pub struct Service {
    cfg: ServeConfig,
    arena: SlotArena,
    queue: Arc<JobQueue>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    jobs: Mutex<HashMap<u64, Arc<JobState>>>,
}

impl Service {
    /// Start the service: allocate the arena and spawn the worker pool.
    pub fn start(cfg: ServeConfig) -> Result<Service, String> {
        let arena = SlotArena::new(cfg.arena_bytes).map_err(|e| e.to_string())?;
        let queue = Arc::new(JobQueue::new(cfg.queue_depth));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let queue = queue.clone();
                let arena = arena.clone();
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("ooc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, arena, cfg))
                    .map_err(|e| e.to_string())
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Service {
            cfg,
            arena,
            queue,
            workers,
            next_id: AtomicU64::new(1),
            jobs: Mutex::new(HashMap::new()),
        })
    }

    /// Enqueue a job; returns its id. Refuses (rather than blocks) when
    /// the bounded queue is full.
    pub fn submit(&self, req: JobRequest) -> Result<u64, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(JobState {
            status: Mutex::new(JobStatus::Queued),
            done: Condvar::new(),
            cancel: CancelToken::new(),
        });
        self.jobs.lock().insert(id, state.clone());
        match self.queue.try_push(QueuedJob { id, req, state }) {
            Ok(()) => Ok(id),
            Err(e) => {
                self.jobs.lock().remove(&id);
                Err(e)
            }
        }
    }

    /// Cancel a job. A still-queued job is finalized immediately (it
    /// leaves the queue and `wait` returns without blocking behind
    /// whatever occupies the workers); a running job aborts at its next
    /// backing-store transfer. Returns false for unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        match self.jobs.lock().get(&id) {
            Some(state) => {
                state.cancel.cancel();
                self.queue.remove(id);
                let mut status = state.status.lock();
                if matches!(*status, JobStatus::Queued) {
                    *status = JobStatus::Cancelled;
                    state.done.notify_all();
                }
                true
            }
            None => false,
        }
    }

    /// Current status of a job.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let jobs = self.jobs.lock();
        jobs.get(&id).map(|s| s.status.lock().clone())
    }

    /// Block until the job reaches a terminal state and return it.
    pub fn wait(&self, id: u64) -> Option<JobStatus> {
        let state = self.jobs.lock().get(&id).cloned()?;
        let mut status = state.status.lock();
        while !status.is_terminal() {
            state.done.wait(&mut status);
        }
        Some(status.clone())
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Arena counters: admissions, rejections, releases, fair evictions.
    pub fn counters(&self) -> ArenaCounters {
        self.arena.counters()
    }

    /// Tenants currently holding grants.
    pub fn n_tenants(&self) -> usize {
        self.arena.n_tenants()
    }

    /// The shared arena's total byte budget.
    pub fn arena_bytes(&self) -> u64 {
        self.arena.total_bytes()
    }

    /// Drain the queue and stop the workers (running jobs finish; queued
    /// jobs still run — cancel them first for a fast stop).
    pub fn shutdown(mut self) {
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(queue: &JobQueue, arena: SlotArena, cfg: ServeConfig) {
    while let Some(job) = queue.pop() {
        if job.state.cancel.is_cancelled() {
            job.state.set(JobStatus::Cancelled);
            continue;
        }
        job.state.set(JobStatus::Running);
        let outcome = run_job(&job, &arena, &cfg);
        // A cancellation surfacing as an I/O error is a Cancelled outcome,
        // not a failure.
        let outcome = match outcome {
            JobStatus::Failed { .. } | JobStatus::Done { .. } | JobStatus::Rejected { .. }
                if job.state.cancel.is_cancelled() =>
            {
                JobStatus::Cancelled
            }
            other => other,
        };
        job.state.set(outcome);
    }
}

/// The job's dataset, either flat or partitioned.
enum JobData {
    Single(Dataset),
    Partitioned(PartitionedDataset),
}

impl JobData {
    fn tree(&self) -> &phylo_tree::Tree {
        match self {
            JobData::Single(d) => &d.tree,
            JobData::Partitioned(d) => &d.tree,
        }
    }

    fn part_specs(&self) -> Vec<PartSpec<'_>> {
        match self {
            JobData::Single(d) => setup::part_specs(d),
            JobData::Partitioned(d) => setup::partitioned_part_specs(d),
        }
    }
}

fn build_dataset(req: &DatasetRequest, spec: &EngineSpec) -> Result<JobData, String> {
    let ds = DatasetSpec {
        n_taxa: req.n_taxa,
        n_sites: req.n_sites,
        seed: req.seed,
        alpha: spec.alpha,
        n_cats: spec.n_cats,
        ..DatasetSpec::default()
    };
    match &req.partitions {
        None => {
            if req.n_sites == 0 {
                return Err("dataset needs n_sites > 0 (or a partition list)".into());
            }
            Ok(JobData::Single(setup::simulate_dataset(&ds)))
        }
        Some(parts) => {
            if parts.is_empty() {
                return Err("partition list must not be empty".into());
            }
            let parts = parts
                .iter()
                .map(|p| {
                    let kind = match p.kind.as_str() {
                        "dna" => PartitionKind::Dna,
                        "protein" => PartitionKind::Protein,
                        "codon" => PartitionKind::Codon,
                        other => return Err(format!("unknown partition kind '{other}'")),
                    };
                    Ok((kind, p.n_sites))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(JobData::Partitioned(setup::simulate_partitioned_dataset(
                &ds, &parts,
            )))
        }
    }
}

/// Run a request's dataset + profile *solo* — no arena, no queue, no
/// tenancy — and return `(joint lnL, per-partition lnLs)` after
/// `traversals` full traversals. This is the ground truth a served
/// [`JobKind::Likelihood`] job must reproduce **bit-identically**:
/// residency and contention never change computed values.
pub fn solo_likelihood(
    dataset: &DatasetRequest,
    profile: &str,
    traversals: usize,
    scratch: &std::path::Path,
) -> Result<(f64, Vec<f64>), String> {
    let spec = EngineSpec::from_toml(profile).map_err(|e| e.to_string())?;
    let data = build_dataset(dataset, &spec)?;
    let parts = data.part_specs();
    let ctx = BuildContext::new().vector_path(scratch);
    let built = spec
        .build(data.tree(), &parts, &ctx)
        .map_err(|e| e.to_string())?;
    let mut engine = built.engine;
    let lnl = engine
        .full_traversals(traversals.max(1))
        .map_err(|e| e.to_string())?;
    let partition_lnls = engine.partition_lnls().map_err(|e| e.to_string())?;
    drop(engine);
    let _ = std::fs::remove_file(scratch);
    Ok((lnl, partition_lnls))
}

/// Per-scope recorder factory that also emits the job's `profile` header
/// record (exactly one per scope) and remembers every recorder it handed
/// out so stats can be reconciled and histograms flushed at job end.
struct ScopeRecorders {
    metrics_path: Option<PathBuf>,
    scope_base: String,
    profile: String,
    handed_out: Mutex<Vec<(String, Recorder)>>,
}

impl ScopeRecorders {
    fn scope_of(&self, part: &str) -> String {
        if part.is_empty() {
            self.scope_base.clone()
        } else {
            format!("{}/{part}", self.scope_base)
        }
    }

    fn make(&self, part: &str) -> Recorder {
        let scope = self.scope_of(part);
        let rec = match &self.metrics_path {
            Some(path) => match JsonlSink::append(path) {
                Ok(sink) => Recorder::scoped(MonotonicClock::new(), sink, scope.clone()),
                // A broken metrics file must not fail the job: fall back
                // to an in-memory sink (metrics lost, likelihoods not).
                Err(_) => {
                    Recorder::scoped(MonotonicClock::new(), MemorySink::new().0, scope.clone())
                }
            },
            None => Recorder::scoped(MonotonicClock::new(), MemorySink::new().0, scope.clone()),
        };
        rec.emit_profile(&self.profile);
        self.handed_out.lock().push((scope, rec.clone()));
        rec
    }

    fn finish(&self, stats: &[(String, Option<OocStats>)]) {
        let handed = self.handed_out.lock();
        for (scope, rec) in handed.iter() {
            if let Some((_, Some(s))) = stats.iter().find(|(sc, _)| sc == scope) {
                rec.emit_stats(s);
            }
            let _ = rec.finish();
        }
    }
}

fn run_job(job: &QueuedJob, arena: &SlotArena, cfg: &ServeConfig) -> JobStatus {
    let fail = |e: String| JobStatus::Failed { error: e };

    let spec = match EngineSpec::from_toml(&job.req.profile) {
        Ok(s) => s,
        Err(e) => return fail(e.to_string()),
    };
    let data = match build_dataset(&job.req.dataset, &spec) {
        Ok(d) => d,
        Err(e) => return fail(e),
    };
    let parts = data.part_specs();
    let tree = data.tree();

    // Admission control: size the job, then ask the arena *before* paying
    // for construction. A refusal is a job outcome, not an error path.
    let (want, min) = match spec.memory_demand(tree, &parts) {
        Ok(d) => d,
        Err(e) => return fail(e.to_string()),
    };
    let label = format!("{}/job-{}", job.req.tenant, job.id);
    let grant = match arena.admit(&label, want, min) {
        Ok(g) => g,
        Err(e @ AdmissionError::Insufficient { .. }) => {
            return JobStatus::Rejected {
                reason: e.to_string(),
            }
        }
        Err(e) => return fail(e.to_string()),
    };

    let recorders = Arc::new(ScopeRecorders {
        metrics_path: cfg.metrics_path.clone(),
        scope_base: label.clone(),
        profile: spec.to_toml(),
        handed_out: Mutex::new(Vec::new()),
    });

    let scratch = cfg.scratch_dir.join(format!(
        "{}-job{}.vec",
        job.req.tenant.replace('/', "_"),
        job.id
    ));
    let rec_factory = recorders.clone();
    let ctx = BuildContext::new()
        .vector_path(&scratch)
        .tenant(grant)
        .cancel(job.state.cancel.clone())
        .recorders(move |part| rec_factory.make(part));

    let built = match spec.build(tree, &parts, &ctx) {
        Ok(b) => b,
        Err(e) => return fail(e.to_string()),
    };
    let mut engine = built.engine;

    let result = execute_kind(&job.req.job, &mut engine, tree.n_half_edges());

    // Reconcile stats into each partition's scope, flush histograms.
    let names: Vec<String> = parts.iter().map(|p| p.name.clone()).collect();
    let stats: Vec<(String, Option<OocStats>)> = names
        .iter()
        .zip(engine.partition_ooc_stats())
        .map(|(n, s)| (recorders.scope_of(n), s))
        .collect();
    recorders.finish(&stats);

    drop(engine); // release the grant before reporting
    let _ = std::fs::remove_file(&scratch);

    match result {
        Ok(status) => status,
        Err(e) => fail(e.to_string()),
    }
}

fn execute_kind(
    kind: &JobKind,
    engine: &mut Box<dyn phylo_plf::DynEngine>,
    n_half_edges: usize,
) -> Result<JobStatus, ooc_core::OocError> {
    match kind {
        JobKind::Likelihood { traversals } => {
            let lnl = engine.full_traversals((*traversals).max(1))?;
            let partition_lnls = engine.partition_lnls()?;
            Ok(JobStatus::Done {
                lnl,
                partition_lnls,
                batch: None,
            })
        }
        JobKind::SmoothBranches { passes, nr_iter } => {
            let lnl = engine.smooth_branches((*passes).max(1), (*nr_iter).max(1))?;
            let partition_lnls = engine.partition_lnls()?;
            Ok(JobStatus::Done {
                lnl,
                partition_lnls,
                batch: None,
            })
        }
        JobKind::Search {
            max_rounds,
            spr_radius,
        } => {
            let cfg = SearchConfig {
                max_rounds: (*max_rounds).max(1),
                spr_radius: (*spr_radius).max(1),
                ..SearchConfig::default()
            };
            let stats = hill_climb_observed(engine, &cfg, None)?;
            Ok(JobStatus::Done {
                lnl: stats.final_lnl,
                partition_lnls: engine.partition_lnls()?,
                batch: None,
            })
        }
        JobKind::EvaluateBatch { roots } => {
            // One full traversal caches every ancestral vector; each root
            // then scores against the cache (partial traversal only).
            let lnl = engine.log_likelihood()?;
            let mut batch = Vec::with_capacity(roots.len());
            for &r in roots {
                if (r as usize) >= n_half_edges {
                    return Ok(JobStatus::Failed {
                        error: format!("root half-edge {r} out of range (< {n_half_edges})"),
                    });
                }
                batch.push(engine.log_likelihood_at(r, false)?);
            }
            Ok(JobStatus::Done {
                lnl,
                partition_lnls: engine.partition_lnls()?,
                batch: Some(batch),
            })
        }
    }
}
