//! **ooc-serve** — the multi-tenant likelihood server, plus the smoke
//! driver CI uses to exercise it end to end.
//!
//! ```sh
//! # Long-running server:
//! ooc-serve listen --addr 127.0.0.1:7811 --arena-bytes 67108864 \
//!     --workers 2 --metrics serve-metrics.jsonl
//!
//! # Self-contained end-to-end check (exits nonzero on any violation):
//! ooc-serve smoke --metrics serve-metrics.jsonl
//! ```
//!
//! The smoke drives four concurrent jobs over real TCP against a
//! deliberately small arena:
//!
//! * two likelihood tenants whose lnLs must be **bit-identical** to solo
//!   (arena-free) runs of the same request — contention changes stalls,
//!   never values — sized so their overlap forces fair cross-tenant
//!   evictions;
//! * one tenant whose 3-slot pinned floor exceeds the whole arena —
//!   admission control must *reject* it (never OOM);
//! * one file-backed tenant cancelled mid-traversal — the job must land
//!   `cancelled` and the arena must keep serving afterwards.

use ooc_serve::json::Value;
use ooc_serve::net::{self, Request};
use ooc_serve::{
    solo_likelihood, DatasetRequest, JobKind, JobRequest, PartitionRequest, ServeConfig, Service,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: ooc-serve listen [--addr HOST:PORT] [--arena-bytes N] [--workers N]\n\
         \x20                     [--queue-depth N] [--metrics FILE] [--scratch DIR]\n\
         \x20      ooc-serve smoke  [--arena-bytes N] [--metrics FILE] [--scratch DIR]"
    );
    std::process::exit(2);
}

struct Args {
    addr: String,
    cfg: ServeConfig,
}

fn parse_args(mut args: std::env::Args) -> (String, Args) {
    let mode = args.next().unwrap_or_else(|| usage());
    let mut out = Args {
        addr: "127.0.0.1:7811".to_string(),
        cfg: ServeConfig::default(),
    };
    if mode == "smoke" {
        out.cfg.arena_bytes = 4 << 20; // deliberately tight
    }
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => out.addr = val(),
            "--arena-bytes" => out.cfg.arena_bytes = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => out.cfg.workers = val().parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => out.cfg.queue_depth = val().parse().unwrap_or_else(|_| usage()),
            "--metrics" => out.cfg.metrics_path = Some(PathBuf::from(val())),
            "--scratch" => out.cfg.scratch_dir = PathBuf::from(val()),
            _ => usage(),
        }
    }
    (mode, out)
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    args.next(); // argv[0]
    let (mode, args) = parse_args(args);
    match mode.as_str() {
        "listen" => listen(args),
        "smoke" => smoke(args),
        _ => usage(),
    }
}

fn listen(args: Args) -> ExitCode {
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ooc-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let service = match Service::start(args.cfg) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("ooc-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "ooc-serve: listening on {} (arena {} bytes, {} workers)",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default(),
        service.arena_bytes(),
        service.config().workers,
    );
    match net::serve(service, listener) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ooc-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Smoke driver.
// ---------------------------------------------------------------------------

/// One request/response exchange on a fresh connection.
fn rpc(addr: &str, req: &Request) -> Result<Value, String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut line = req.to_json();
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).map_err(|e| e.to_string())?;
    Value::parse(resp.trim())
}

fn submit(addr: &str, req: JobRequest) -> Result<u64, String> {
    let v = rpc(addr, &Request::Submit(req))?;
    if v.get("ok") != Some(&Value::Bool(true)) {
        return Err(format!("submit refused: {v:?}"));
    }
    v.get("job")
        .and_then(Value::as_u64)
        .ok_or("no job id".into())
}

fn wait(addr: &str, job: u64) -> Result<Value, String> {
    let v = rpc(addr, &Request::Wait { job })?;
    v.get("status")
        .cloned()
        .ok_or(format!("no status for job {job}"))
}

fn poll_until_running(addr: &str, job: u64) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let v = rpc(addr, &Request::Status { job })?;
        let status = v
            .get("status")
            .and_then(|s| s.get("status"))
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        match status.as_str() {
            "running" => return Ok(()),
            "queued" => {}
            other => return Err(format!("job {job} reached '{other}' before running")),
        }
        if Instant::now() > deadline {
            return Err(format!("job {job} never started"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn status_kind(status: &Value) -> &str {
    status.get("status").and_then(Value::as_str).unwrap_or("?")
}

const OOC_PROFILE: &str = "residency = \"ooc-mem\"\nfraction = 0.5\nstrategy = \"lru\"\n";
const FILE_PROFILE: &str = "residency = \"file\"\nfraction = 0.25\nstrategy = \"lru\"\n";

fn smoke(args: Args) -> ExitCode {
    match smoke_inner(args) {
        Ok(()) => {
            eprintln!("ooc-serve smoke: OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ooc-serve smoke: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn smoke_inner(mut args: Args) -> Result<(), String> {
    args.cfg.workers = 2;
    let scratch = args.cfg.scratch_dir.clone();

    // Ground truth, computed solo before the server runs anything.
    let alice_ds = DatasetRequest {
        n_taxa: 16,
        n_sites: 4000,
        seed: 11,
        partitions: None,
    };
    let bob_ds = DatasetRequest {
        n_taxa: 12,
        n_sites: 0,
        seed: 23,
        partitions: Some(vec![
            PartitionRequest {
                kind: "dna".into(),
                n_sites: 2000,
            },
            PartitionRequest {
                kind: "protein".into(),
                n_sites: 800,
            },
        ]),
    };
    let (alice_solo, _) =
        solo_likelihood(&alice_ds, OOC_PROFILE, 1, &scratch.join("smoke-solo-a.vec"))?;
    let (bob_solo, bob_solo_parts) =
        solo_likelihood(&bob_ds, OOC_PROFILE, 1, &scratch.join("smoke-solo-b.vec"))?;

    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener
        .local_addr()
        .map_err(|e| e.to_string())?
        .to_string();
    let service = Arc::new(Service::start(args.cfg)?);
    {
        let service = service.clone();
        std::thread::spawn(move || {
            let _ = net::serve(service, listener);
        });
    }
    eprintln!(
        "smoke: server on {addr}, arena {} bytes",
        service.arena_bytes()
    );

    // Alice first; once she is mid-run, Bob's admission shrinks her
    // allowance — the overlap is what forces fair evictions.
    let alice = submit(
        &addr,
        JobRequest {
            tenant: "alice".into(),
            dataset: alice_ds,
            profile: OOC_PROFILE.into(),
            job: JobKind::Likelihood { traversals: 30 },
        },
    )?;
    poll_until_running(&addr, alice)?;
    let bob = submit(
        &addr,
        JobRequest {
            tenant: "bob".into(),
            dataset: bob_ds,
            profile: OOC_PROFILE.into(),
            job: JobKind::Likelihood { traversals: 30 },
        },
    )?;

    // Mallory's 3-slot pinned floor alone exceeds the arena: admission
    // control must reject the job outright.
    let mallory = submit(
        &addr,
        JobRequest {
            tenant: "mallory".into(),
            dataset: DatasetRequest {
                n_taxa: 64,
                n_sites: 20000,
                seed: 5,
                partitions: None,
            },
            profile: OOC_PROFILE.into(),
            job: JobKind::Likelihood { traversals: 1 },
        },
    )?;

    // Carol: file-backed and effectively unbounded, so the cancel below is
    // guaranteed to land mid-run rather than racing a fast completion.
    let carol = submit(
        &addr,
        JobRequest {
            tenant: "carol".into(),
            dataset: DatasetRequest {
                n_taxa: 16,
                n_sites: 1500,
                seed: 31,
                partitions: None,
            },
            profile: FILE_PROFILE.into(),
            job: JobKind::Likelihood {
                traversals: 1_000_000,
            },
        },
    )?;

    let alice_status = wait(&addr, alice)?;
    let bob_status = wait(&addr, bob)?;
    let mallory_status = wait(&addr, mallory)?;

    poll_until_running(&addr, carol)?;
    std::thread::sleep(Duration::from_millis(30));
    rpc(&addr, &Request::Cancel { job: carol })?;
    let carol_status = wait(&addr, carol)?;

    // --- Verdicts -----------------------------------------------------
    let mut failures = Vec::new();

    for (name, status, solo) in [
        ("alice", &alice_status, alice_solo),
        ("bob", &bob_status, bob_solo),
    ] {
        if status_kind(status) != "done" {
            failures.push(format!("{name}: expected done, got {status:?}"));
            continue;
        }
        match status.get("lnl").and_then(|v| match v {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }) {
            Some(lnl) if lnl == solo => {
                eprintln!("smoke: {name} lnl {lnl} bit-identical to solo run")
            }
            Some(lnl) => failures.push(format!("{name}: served lnl {lnl} != solo {solo}")),
            None => failures.push(format!("{name}: no lnl in {status:?}")),
        }
    }
    let bob_parts: Vec<f64> = bob_status
        .get("partition_lnls")
        .and_then(Value::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|v| match v {
                    Value::Float(f) => Some(*f),
                    Value::Int(n) => Some(*n as f64),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default();
    if bob_parts != bob_solo_parts {
        failures.push(format!(
            "bob: partition lnls {bob_parts:?} != solo {bob_solo_parts:?}"
        ));
    }

    if status_kind(&mallory_status) != "rejected" {
        failures.push(format!(
            "mallory: expected rejected, got {mallory_status:?}"
        ));
    } else {
        eprintln!(
            "smoke: mallory rejected by admission control: {}",
            mallory_status
                .get("reason")
                .and_then(Value::as_str)
                .unwrap_or("?")
        );
    }

    if status_kind(&carol_status) != "cancelled" {
        failures.push(format!("carol: expected cancelled, got {carol_status:?}"));
    } else {
        eprintln!("smoke: carol cancelled mid-traversal");
    }

    let counters = rpc(&addr, &Request::Counters)?;
    let counter = |k: &str| {
        counters
            .get("counters")
            .and_then(|c| c.get(k))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let (adm, rej, rel, fair) = (
        counter("admissions"),
        counter("rejections"),
        counter("releases"),
        counter("fair_evictions"),
    );
    eprintln!(
        "smoke: counters admissions={adm} rejections={rej} releases={rel} fair_evictions={fair}"
    );
    if adm < 3 {
        failures.push(format!("expected >= 3 admissions, saw {adm}"));
    }
    if rej < 1 {
        failures.push(format!("expected >= 1 rejection, saw {rej}"));
    }
    if rel < adm {
        failures.push(format!("{adm} admissions but only {rel} releases"));
    }
    if fair < 1 {
        failures.push(format!("expected fair evictions under overlap, saw {fair}"));
    }

    // The arena must be fully drained and reusable after the mix.
    if service.n_tenants() != 0 {
        failures.push(format!(
            "{} tenants still hold grants after all jobs finished",
            service.n_tenants()
        ));
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}
