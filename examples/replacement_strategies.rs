//! Compare the four replacement strategies of the paper (Random, LRU, LFU,
//! Topological) on the same workload: repeated partial traversals and
//! branch-length smoothing — the access pattern of a real analysis.
//!
//! ```sh
//! cargo run --release --example replacement_strategies
//! ```

use phylo_ooc::ooc::StrategyKind;
use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
use phylo_ooc::setup::{self, DatasetSpec};

fn main() {
    let spec = DatasetSpec {
        n_taxa: 96,
        n_sites: 400,
        seed: 7,
        ..Default::default()
    };
    let data = setup::simulate_dataset(&spec);
    println!(
        "workload: smoothing passes + re-rooted evaluations on {} taxa, {} patterns\n",
        spec.n_taxa,
        data.comp.n_patterns()
    );
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "requests", "misses", "miss rate", "disk reads", "read rate"
    );

    for kind in [
        StrategyKind::Random { seed: 1 },
        StrategyKind::Lru,
        StrategyKind::Lfu,
        StrategyKind::Topological,
        StrategyKind::NextUse,
    ] {
        let ooc_spec = EngineSpec {
            residency: Residency::OocMem { fraction: 0.25 },
            strategy: kind,
            ..setup::base_spec(&data)
        };
        let mut engine = setup::build_engine(&ooc_spec, &data, &BuildContext::new())
            .expect("spec build failed")
            .engine;
        // Warm up: one full likelihood computation (all vectors cold).
        let _ = engine.log_likelihood().expect("warm-up traversal failed");
        engine.reset_ooc_stats();

        // Workload: two smoothing passes and a tour of re-rootings.
        engine.smooth_branches(2, 8).expect("smoothing pass failed");
        let roots: Vec<u32> = engine.tree().branches().step_by(7).collect();
        for h in roots {
            let _ = engine
                .log_likelihood_at(h, false)
                .expect("re-rooted evaluation failed");
        }

        let stats = engine.ooc_stats().expect("managed engine keeps stats");
        println!(
            "{:<14} {:>10} {:>10} {:>11.2}% {:>12} {:>9.2}%",
            kind.label(),
            stats.requests,
            stats.misses,
            stats.miss_rate() * 100.0,
            stats.disk_reads,
            stats.read_rate() * 100.0
        );
    }

    println!(
        "\nAs in the paper: Random, LRU and Topological perform similarly;\n\
         LFU falls behind because loaded-but-rarely-touched vectors look\n\
         like ideal victims even when they are about to be reused."
    );
}
