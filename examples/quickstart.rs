//! Quickstart: compute a phylogenetic likelihood out-of-core and verify it
//! is bit-identical to the standard all-in-RAM computation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
use phylo_ooc::setup::{self, DatasetSpec};

fn main() {
    // A small simulated DNA dataset: 64 taxa, 500 sites, HKY85 + Γ4.
    let spec = DatasetSpec {
        n_taxa: 64,
        n_sites: 500,
        seed: 2011,
        ..Default::default()
    };
    let data = setup::simulate_dataset(&spec);
    println!(
        "dataset: {} taxa x {} sites ({} patterns), ancestral vectors: {} x {:.1} KiB = {:.1} MiB",
        spec.n_taxa,
        spec.n_sites,
        data.comp.n_patterns(),
        data.n_items(),
        data.width() as f64 * 8.0 / 1024.0,
        data.total_vector_bytes() as f64 / (1024.0 * 1024.0),
    );

    // Standard implementation: everything in RAM.
    let mut standard = setup::inram_engine(&data);
    let lnl_standard = standard
        .log_likelihood()
        .expect("in-RAM likelihood cannot fail on I/O");

    // Out-of-core: only 25% of the vectors get RAM slots; the rest live in
    // a real binary file, swapped on demand with LRU replacement.
    let dir = tempfile::tempdir().expect("tempdir");
    let limit = data.total_vector_bytes() / 4;
    let ooc_spec = EngineSpec {
        residency: Residency::FileLimit { limit_bytes: limit },
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("ancestral_vectors.bin"));
    let mut ooc = setup::build_engine(&ooc_spec, &data, &ctx)
        .expect("failed to create backing file")
        .engine;
    let lnl_ooc = ooc.log_likelihood().expect("out-of-core likelihood failed");

    println!("log-likelihood (standard):    {lnl_standard:.6}");
    println!("log-likelihood (out-of-core): {lnl_ooc:.6}");
    assert_eq!(
        lnl_standard.to_bits(),
        lnl_ooc.to_bits(),
        "the paper's correctness criterion: results must be identical"
    );

    let stats = ooc.ooc_stats().expect("managed engine keeps stats");
    let n_slots = ooc_spec
        .slot_counts(&data.tree, &setup::part_specs(&data))
        .expect("spec already validated")[0]
        .expect("file residency is slot-managed");
    println!(
        "\nout-of-core statistics with f = 0.25 ({n_slots} of {} slots):",
        data.n_items()
    );
    println!("  {stats}");
    println!(
        "  -> miss rate {:.2}%, read rate {:.2}% (read skipping avoided {:.1}% of reads)",
        stats.miss_rate() * 100.0,
        stats.read_rate() * 100.0,
        stats.skip_fraction() * 100.0
    );
    println!("\nOK: identical likelihoods, out-of-core machinery exercised.");
}
