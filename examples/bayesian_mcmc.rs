//! Bayesian MCMC sampling executed out-of-core.
//!
//! The paper's conclusion: "The concepts developed here can be applied to
//! all PLF-based programs (ML and Bayesian)". MCMC proposals (random NNI,
//! branch scalings) have *less* locality than a hill-climbing search, so
//! this example is the stress case for the replacement strategies: it runs
//! the same chain in RAM and with 25% of the vectors resident, checks the
//! trajectories are identical, and reports the miss rate.
//!
//! ```sh
//! cargo run --release --example bayesian_mcmc
//! ```

use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
use phylo_ooc::search::{run_mcmc, McmcConfig};
use phylo_ooc::setup::{self, DatasetSpec};

fn main() {
    let spec = DatasetSpec {
        n_taxa: 40,
        n_sites: 300,
        seed: 515,
        ..Default::default()
    };
    let data = setup::simulate_dataset(&spec);
    let cfg = McmcConfig {
        iterations: 2000,
        seed: 99,
        ..Default::default()
    };
    println!(
        "MCMC: {} iterations on {} taxa x {} patterns\n",
        cfg.iterations,
        spec.n_taxa,
        data.comp.n_patterns()
    );

    let mut standard = setup::inram_engine(&data);
    let stats_std = run_mcmc(&mut standard, &cfg).expect("in-RAM MCMC cannot fail on I/O");
    println!(
        "standard:    accepted {}/{} ({} topology moves), final log-posterior {:.4}",
        stats_std.accepted,
        cfg.iterations,
        stats_std.topology_accepted,
        stats_std.final_log_posterior
    );

    let ooc_spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.25 },
        ..setup::base_spec(&data)
    };
    let mut ooc = setup::build_engine(&ooc_spec, &data, &BuildContext::new())
        .expect("spec build failed")
        .engine;
    let stats_ooc = run_mcmc(&mut ooc, &cfg).expect("MCMC over the OOC store failed");
    let mgr = ooc.ooc_stats().expect("managed engine keeps stats");
    println!(
        "out-of-core: accepted {}/{} ({} topology moves), final log-posterior {:.4}",
        stats_ooc.accepted,
        cfg.iterations,
        stats_ooc.topology_accepted,
        stats_ooc.final_log_posterior
    );
    println!("             manager: {mgr}");

    assert_eq!(
        stats_std.final_log_posterior.to_bits(),
        stats_ooc.final_log_posterior.to_bits(),
        "chains must be identical"
    );
    println!(
        "\nOK: identical chains; MCMC miss rate {:.2}% at f = 0.25 (vs ~3-5% for\n\
         ML search workloads) — random proposals have less locality, exactly\n\
         why the paper's Topological/LRU strategies matter for Bayesian use.",
        mgr.miss_rate() * 100.0
    );
}
