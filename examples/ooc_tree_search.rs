//! A full maximum-likelihood tree search running out-of-core: the scenario
//! the paper's introduction motivates — an analysis whose ancestral-vector
//! memory would not fit in RAM, executed with only a fraction of it.
//!
//! The search runs twice, once standard (all in RAM) and once out-of-core
//! with 25% of the vectors resident, and must produce the *identical*
//! final tree and log-likelihood (the paper verified exactly this for all
//! strategies and memory fractions).
//!
//! ```sh
//! cargo run --release --example ooc_tree_search
//! ```

use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
use phylo_ooc::search::{hill_climb, SearchConfig};
use phylo_ooc::setup::{self, DatasetSpec};
use phylo_ooc::tree::write_newick;

fn main() {
    let spec = DatasetSpec {
        n_taxa: 48,
        n_sites: 300,
        seed: 1288,
        ..Default::default()
    };
    let data = setup::simulate_dataset(&spec);
    let cfg = SearchConfig {
        spr_radius: 4,
        max_rounds: 2,
        optimize_model: false,
        seed: 9,
        ..Default::default()
    };
    println!(
        "searching: {} taxa, {} patterns, SPR radius {}, {} round(s) max\n",
        spec.n_taxa,
        data.comp.n_patterns(),
        cfg.spr_radius,
        cfg.max_rounds
    );

    // Standard search.
    let mut standard = setup::inram_engine(&data);
    let stats_std = hill_climb(&mut standard, &cfg).expect("in-RAM search cannot fail on I/O");
    println!(
        "standard:    lnl {:.4} -> {:.4} ({} SPRs applied, {} evaluated)",
        stats_std.initial_lnl, stats_std.final_lnl, stats_std.spr_applied, stats_std.spr_evaluated
    );

    // Out-of-core search with 25% of vectors in RAM.
    let ooc_spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.25 },
        ..setup::base_spec(&data)
    };
    let mut ooc = setup::build_engine(&ooc_spec, &data, &BuildContext::new())
        .expect("spec build failed")
        .engine;
    let stats_ooc = hill_climb(&mut ooc, &cfg).expect("search over the OOC store failed");
    let mgr = ooc.ooc_stats().expect("managed engine keeps stats");
    println!(
        "out-of-core: lnl {:.4} -> {:.4} ({} SPRs applied, {} evaluated)",
        stats_ooc.initial_lnl, stats_ooc.final_lnl, stats_ooc.spr_applied, stats_ooc.spr_evaluated
    );
    println!("             manager: {mgr}");

    // Determinism check: identical trajectory and identical final tree.
    assert_eq!(
        stats_std.final_lnl.to_bits(),
        stats_ooc.final_lnl.to_bits(),
        "out-of-core search must reproduce the standard search exactly"
    );
    let names: Vec<String> = data.comp.alignment.names().to_vec();
    let t_std = write_newick(standard.tree(), &names);
    let t_ooc = write_newick(ooc.tree(), &names);
    assert_eq!(t_std, t_ooc, "final topologies must be identical");

    println!(
        "\nOK: identical final trees and likelihoods; the search ran with \
         {:.0}% of the vector memory ({} of {} vectors resident), miss rate {:.2}%.",
        25.0,
        ooc_spec
            .slot_counts(&data.tree, &setup::part_specs(&data))
            .expect("spec already validated")[0]
            .expect("ooc-mem residency is slot-managed"),
        data.n_items(),
        mgr.miss_rate() * 100.0
    );
    println!(
        "final tree (first 120 chars): {}…",
        &t_ooc[..t_ooc.len().min(120)]
    );
}
