//! Genome-scale analysis under memory pressure: one point of the paper's
//! Figure 5 at reduced scale, with real I/O on both sides.
//!
//! A dataset whose ancestral vectors are ~4x larger than the "physical
//! memory" budget is evaluated with five full tree traversals (the paper's
//! `-f z` worst case) in three configurations:
//!
//! 1. standard, vectors in a demand-paged arena (OS-paging baseline),
//! 2. out-of-core with LRU replacement and the same RAM budget,
//! 3. out-of-core with Random replacement.
//!
//! ```sh
//! cargo run --release --example genome_scale
//! ```

use phylo_ooc::ooc::StrategyKind;
use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
use phylo_ooc::setup::{self, DatasetSpec};
use std::time::Instant;

fn main() {
    // ~1024 taxa x 600 patterns: vectors ~ 1022 * 600*16*8 B ≈ 75 MiB.
    let spec = DatasetSpec {
        n_taxa: 1024,
        n_sites: 600,
        seed: 8192,
        ..Default::default()
    };
    println!(
        "simulating dataset ({} taxa x {} sites)...",
        spec.n_taxa, spec.n_sites
    );
    let data = setup::simulate_dataset(&spec);
    let total = data.total_vector_bytes();
    let budget = (total / 4) as usize; // 4x oversubscription
    println!(
        "ancestral vectors: {:.1} MiB, memory budget: {:.1} MiB (paper: 1-32 GB vs 1-2 GB)\n",
        total as f64 / (1024.0 * 1024.0),
        budget as f64 / (1024.0 * 1024.0)
    );

    let dir = tempfile::tempdir().expect("tempdir");
    let traversals = 5;

    // 1. Standard implementation over the paging arena.
    let mut paged = setup::paged_engine(&data, dir.path().join("swap.bin"), budget)
        .expect("failed to create swap file");
    let t0 = Instant::now();
    let lnl_paged = paged
        .full_traversals(traversals)
        .expect("paged traversal failed");
    let t_paged = t0.elapsed();
    let pstats = paged.store().arena().stats();
    println!(
        "standard (paging):   {:>8.2?}  lnl {:.4}\n                     page faults: {}, swap-ins: {}, writebacks: {}",
        t_paged, lnl_paged, pstats.faults, pstats.major_faults, pstats.writebacks
    );

    // 2./3. Out-of-core with the same budget.
    for kind in [StrategyKind::Lru, StrategyKind::Random { seed: 5 }] {
        let ooc_spec = EngineSpec {
            residency: Residency::FileLimit {
                limit_bytes: budget as u64,
            },
            strategy: kind,
            ..setup::base_spec(&data)
        };
        let ctx = BuildContext::new()
            .vector_path(dir.path().join(format!("vectors_{}.bin", kind.label())));
        let mut ooc = setup::build_engine(&ooc_spec, &data, &ctx)
            .expect("failed to create backing file")
            .engine;
        let t0 = Instant::now();
        let lnl = ooc
            .full_traversals(traversals)
            .expect("out-of-core traversal failed");
        let dt = t0.elapsed();
        let stats = ooc.ooc_stats().expect("managed engine keeps stats");
        println!(
            "out-of-core ({:<4}):  {:>8.2?}  lnl {:.4}\n                     misses: {} ({:.1}%), reads: {}, writes: {}, skipped reads: {}",
            kind.label(),
            dt,
            lnl,
            stats.misses,
            stats.miss_rate() * 100.0,
            stats.disk_reads,
            stats.disk_writes,
            stats.skipped_reads
        );
        assert_eq!(
            lnl.to_bits(),
            lnl_paged.to_bits(),
            "all configurations must agree exactly"
        );
    }

    println!(
        "\nThe out-of-core runs move whole vectors with read skipping\n\
         (full traversals overwrite every vector, so *no* reads are needed),\n\
         while the pager moves 4 KiB pages with no application knowledge —\n\
         the mechanism behind the >5x speedup in the paper's Figure 5."
    );
}
