//! `phylo-ooc` — command-line front end for out-of-core phylogenetic
//! likelihood analyses, in the spirit of the paper's modified RAxML:
//!
//! ```text
//! phylo-ooc simulate   --taxa 256 --sites 2000 --out data.phy --tree-out true.nwk
//! phylo-ooc likelihood --alignment data.phy --tree true.nwk --memory 64M
//! phylo-ooc search     --alignment data.phy --memory 25% --strategy lru --out best.nwk
//! ```
//!
//! `--memory` is the paper's `-L` flag: either an absolute slot budget
//! (`64M`, `1G`, raw bytes) or a fraction of the full vector set (`25%`).
//! Omitting it runs the standard all-in-RAM implementation.

use phylo_ooc::models::{DiscreteGamma, ReversibleModel};
use phylo_ooc::ooc::{CompressionMode, Recorder, StrategyKind, DEFAULT_PREFETCH_WINDOW};
use phylo_ooc::plf::{
    BuildContext, EngineSpec, KernelBackend, LikelihoodEngine, PartSpec, Residency,
};
use phylo_ooc::search::{hill_climb_observed, parsimony_stepwise_tree, SearchConfig};
use phylo_ooc::seq::phylip::{read_phylip, read_phylip_raw, write_phylip};
use phylo_ooc::seq::{
    compress_patterns, simulate_alignment, Alignment, Alphabet, CompressedAlignment, PartitionSpec,
};
use phylo_ooc::tree::build::{random_topology, yule_like_lengths};
use phylo_ooc::tree::{parse_newick, write_newick, Tree};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "memsize" => cmd_memsize(&opts),
        "simulate" => cmd_simulate(&opts),
        "likelihood" => cmd_likelihood(&opts),
        "search" => cmd_search(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
phylo-ooc — out-of-core phylogenetic likelihood analyses

USAGE:
  phylo-ooc memsize    --taxa N --sites N [--protein] [--cats K]
  phylo-ooc simulate   --taxa N --sites N [--protein] [--seed S] --out FILE [--tree-out FILE]
  phylo-ooc likelihood --alignment FILE --tree FILE [--protein] [options]
  phylo-ooc search     --alignment FILE [--tree FILE] [--protein] [--out FILE] [options]

  --protein reads/evolves 20-state data (Poisson model; simulate uses a
  seeded synthetic reversible model); the default alphabet is DNA.

OPTIONS:
  --memory SPEC     slot memory: bytes (67108864), suffixed (64M, 1G) or
                    a fraction of all vectors (25%); omit = all in RAM
  --partitions F    RAxML-style partition file (likelihood only): lines
                    like \"DNA, gene1 = 1-400\" / \"PROT, gene2 = 401-600\"
                    / \"CODON, gene3 = 601-720\"; each partition gets its
                    own model + access plan on one shared tree, and an
                    absolute --memory budget is split across partitions
                    proportionally to their vector footprints
  --strategy NAME   rand | lru | lfu | topo | nextuse [default: lru]
  --shards N        pattern-parallel shards per partition   [default: 1]
  --profile FILE    load the engine configuration from a TOML profile
                    (see `EngineSpec::to_toml`; overrides --memory,
                    --strategy, --shards, --io-threads, --window,
                    --kernel and --alpha)
  --vector-file F   backing file for evicted vectors [default: temp file]
  --alpha A         Gamma shape                       [default: optimize/0.8]
  --radius R        SPR rearrangement radius          [default: 5]
  --rounds K        max SPR rounds                    [default: 8]
  --seed S          RNG seed                          [default: 42]
  --kernel NAME     likelihood kernel backend: scalar | generic | dna4 | avx2
                    [default: auto-detect; env OOC_PLF_KERNEL overrides]
  --io-threads N    dedicated I/O workers streaming the access plan ahead
                    of compute (plan-driven double-buffered prefetch);
                    0 = synchronous I/O on the compute thread [default: 0]
  --window W        plan lookahead window in vectors, per pipeline buffer
                    (also drives hint-based prefetch)       [default: 16]
  --compression M   APV compression behind the backing store:
                    none | exp (shared-exponent, bit-exact) | exp-f32
                    (f32 mantissas, error-bounded); needs an out-of-core
                    residency (--memory)                [default: none]
  --stats           print out-of-core statistics
  --metrics FILE    write a JSONL observability stream (per-op latency
                    events, histograms, counters) and print a stall
                    attribution (compute vs demand-read vs write-back)";

struct Opts {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Opts {
    fn parse(tokens: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got {tok:?}"))?;
            if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                values.insert(key.to_owned(), tokens[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_owned());
                i += 1;
            }
        }
        Ok(Opts { values, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} {v:?}")),
        }
    }

    fn u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} {v:?}")),
        }
    }

    fn f64_opt(&self, key: &str) -> Result<Option<f64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("bad --{key} {v:?}")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Memory budget: absolute bytes or fraction of the full vector set.
enum MemorySpec {
    All,
    Bytes(u64),
    Fraction(f64),
}

fn parse_memory(spec: Option<&str>) -> Result<MemorySpec, String> {
    let Some(spec) = spec else {
        return Ok(MemorySpec::All);
    };
    if let Some(pct) = spec.strip_suffix('%') {
        let f: f64 = pct.parse().map_err(|_| format!("bad --memory {spec:?}"))?;
        return Ok(MemorySpec::Fraction(f / 100.0));
    }
    let (digits, mult) = match spec.as_bytes().last() {
        Some(b'K' | b'k') => (&spec[..spec.len() - 1], 1u64 << 10),
        Some(b'M' | b'm') => (&spec[..spec.len() - 1], 1 << 20),
        Some(b'G' | b'g') => (&spec[..spec.len() - 1], 1 << 30),
        _ => (spec, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad --memory {spec:?}"))?;
    Ok(MemorySpec::Bytes(n * mult))
}

fn parse_strategy(name: Option<&str>, seed: u64) -> Result<StrategyKind, String> {
    let name = name.unwrap_or("lru");
    StrategyKind::from_name(name, seed).ok_or_else(|| format!("unknown strategy {name:?}"))
}

/// §3.1 memory arithmetic: ancestral-vector requirements for an analysis.
fn cmd_memsize(opts: &Opts) -> Result<(), String> {
    let n = opts.usize("taxa", 10_000)?;
    let s = opts.usize("sites", 10_000)?;
    let cats = opts.usize("cats", 4)?;
    let states = if opts.flag("protein") { 20 } else { 4 };
    if n < 3 {
        return Err("need at least 3 taxa".into());
    }
    let per_vector = s as u64 * states as u64 * cats as u64 * 8;
    let n_vectors = (n - 2) as u64;
    let total = per_vector * n_vectors;
    let human = |b: u64| -> String {
        if b >= 1 << 30 {
            format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
        } else if b >= 1 << 20 {
            format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
        } else {
            format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
        }
    };
    println!(
        "ancestral probability vectors for n = {n} taxa, s = {s} sites, {states}-state model, Γ{cats}:"
    );
    println!(
        "  per vector : {} ({} doubles)",
        human(per_vector),
        s * states * cats
    );
    println!("  vectors    : {n_vectors}");
    println!("  total      : {}", human(total));
    println!(
        "\nwith --memory {} the out-of-core engine would keep 25% of the",
        human(total / 4).replace(' ', "")
    );
    println!("vectors in RAM and stream the rest from disk.");
    Ok(())
}

fn cmd_simulate(opts: &Opts) -> Result<(), String> {
    let n_taxa = opts.usize("taxa", 64)?;
    let n_sites = opts.usize("sites", 1000)?;
    let seed = opts.u64("seed", 42)?;
    let out = opts.require("out")?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = random_topology(n_taxa, 0.1, &mut rng);
    yule_like_lengths(&mut tree, 0.12, 1e-5, &mut rng);
    // `--protein` evolves 20-state data (the alphabet follows the model's
    // state count); the default is the paper's DNA setting.
    let model = if opts.flag("protein") {
        phylo_ooc::models::protein::synthetic_protein(seed)
    } else {
        ReversibleModel::hky85(2.5, &[0.3, 0.2, 0.2, 0.3])
    };
    let gamma = DiscreteGamma::new(opts.f64_opt("alpha")?.unwrap_or(0.8), 4);
    let aln = simulate_alignment(&tree, &model, &gamma, n_sites, &mut rng);
    let mut w = BufWriter::new(File::create(out).map_err(|e| e.to_string())?);
    write_phylip(&mut w, &aln).map_err(|e| e.to_string())?;
    eprintln!("wrote {n_taxa} x {n_sites} alignment to {out}");
    if let Some(tree_out) = opts.get("tree-out") {
        let names: Vec<String> = aln.names().to_vec();
        std::fs::write(tree_out, write_newick(&tree, &names)).map_err(|e| e.to_string())?;
        eprintln!("wrote true tree to {tree_out}");
    }
    Ok(())
}

/// Load alignment + tree, reordering alignment rows to the tree's tip ids.
/// `--protein` reads 20-state data; the default alphabet is DNA.
fn load_inputs(opts: &Opts) -> Result<(Tree, CompressedAlignment), String> {
    let alphabet = if opts.flag("protein") {
        Alphabet::Protein
    } else {
        Alphabet::Dna
    };
    let aln_path = opts.require("alignment")?;
    let file = File::open(aln_path).map_err(|e| format!("{aln_path}: {e}"))?;
    let aln = read_phylip(BufReader::new(file), alphabet).map_err(|e| e.to_string())?;

    let (tree, names) = match opts.get("tree") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            parse_newick(&text).map_err(|e| e.to_string())?
        }
        None => {
            // RAxML-style start: randomized stepwise addition under
            // parsimony (cap candidate branches to keep it O(n^2)).
            let seed = opts.u64("seed", 42)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let comp = compress_patterns(&aln);
            let tree = parsimony_stepwise_tree(&comp, 0.1, 40, &mut rng);
            eprintln!("no --tree given: built a randomized parsimony starting tree");
            (tree, aln.names().to_vec())
        }
    };
    if tree.n_tips() != aln.n_seqs() {
        return Err(format!(
            "tree has {} tips but alignment has {} sequences",
            tree.n_tips(),
            aln.n_seqs()
        ));
    }
    // Reorder alignment rows so sequence i belongs to tree tip i.
    let index: HashMap<&str, usize> = aln
        .names()
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut entries = Vec::with_capacity(names.len());
    for name in &names {
        let &row = index
            .get(name.as_str())
            .ok_or_else(|| format!("tip {name:?} not found in the alignment"))?;
        entries.push((name.clone(), aln.seq_chars(row)));
    }
    let reordered = Alignment::from_chars(alphabet, &entries).map_err(|e| e.to_string())?;
    Ok((tree, compress_patterns(&reordered)))
}

/// Default scratch location for the evicted-vector file (one per process;
/// best-effort cleaned up by [`cleanup_scratch`]).
fn scratch_vector_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("phylo-ooc-vectors-{}.bin", std::process::id()))
}

/// Remove the default scratch file, if it was created.
fn cleanup_scratch() {
    let _ = std::fs::remove_file(scratch_vector_path());
}

/// Parse `--kernel`; `None` keeps the auto-detected backend (which the
/// `OOC_PLF_KERNEL` environment variable can still override).
fn parse_kernel(opts: &Opts) -> Result<Option<KernelBackend>, String> {
    match opts.get("kernel") {
        None => Ok(None),
        Some(name) => name.parse().map(Some),
    }
}

/// Resolve the engine configuration for this invocation: a TOML
/// `--profile` verbatim, or an [`EngineSpec`] assembled from the
/// individual axis flags (`--memory` → residency, `--strategy`,
/// `--shards`, `--io-threads`, `--window`, `--kernel`, `--alpha`).
fn cli_spec(opts: &Opts, seed: u64) -> Result<EngineSpec, String> {
    if let Some(path) = opts.get("profile") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        return EngineSpec::from_toml(&text).map_err(|e| e.to_string());
    }
    let residency = match parse_memory(opts.get("memory"))? {
        MemorySpec::All => Residency::InRam,
        MemorySpec::Bytes(b) => Residency::FileLimit { limit_bytes: b },
        MemorySpec::Fraction(f) => Residency::File { fraction: f },
    };
    // I/O pipelining only applies to file-backed residency; tolerate the
    // flag on an in-RAM run the way the pre-spec CLI did.
    let io_threads = if matches!(residency, Residency::InRam) {
        0
    } else {
        opts.usize("io-threads", 0)?
    };
    let compression = match opts.get("compression") {
        None | Some("none") => None,
        Some(name) => Some(
            CompressionMode::from_name(name)
                .ok_or_else(|| format!("bad --compression {name:?}: none | exp | exp-f32"))?,
        ),
    };
    Ok(EngineSpec {
        residency,
        strategy: parse_strategy(opts.get("strategy"), seed)?,
        shards: opts.usize("shards", 1)?,
        io_threads,
        window: opts.usize("window", DEFAULT_PREFETCH_WINDOW)?,
        kernel: parse_kernel(opts)?,
        alpha: opts.f64_opt("alpha")?.unwrap_or(0.8),
        n_cats: 4,
        compression,
        ..EngineSpec::default()
    })
}

/// The vector file for evicted slots: `--vector-file`, or the process
/// scratch path.
fn vector_file(opts: &Opts) -> std::path::PathBuf {
    match opts.get("vector-file") {
        Some(p) => std::path::PathBuf::from(p),
        None => scratch_vector_path(),
    }
}

/// The default model for an alignment's alphabet: HKY85 with empirical
/// base frequencies for DNA, Poisson for protein, GY94 with uniform codon
/// frequencies for codon data.
fn default_model(comp: &CompressedAlignment) -> ReversibleModel {
    match comp.alignment.alphabet().n_states() {
        4 => {
            let f = comp.alignment.empirical_freqs();
            ReversibleModel::hky85(2.5, &[f[0], f[1], f[2], f[3]])
        }
        20 => phylo_ooc::models::protein::poisson(),
        _ => phylo_ooc::models::codon::gy94_uniform(2.0, 0.5),
    }
}

/// Build the optional JSONL observability recorder from `--metrics`.
fn make_recorder(opts: &Opts) -> Result<Option<Recorder>, String> {
    match opts.get("metrics") {
        None => Ok(None),
        Some(path) => Recorder::jsonl(path)
            .map(Some)
            .map_err(|e| format!("cannot create metrics file '{path}': {e}")),
    }
}

/// Close out a recorder: emit final counters, dump the per-op latency
/// histograms to the JSONL stream, and print a stall attribution of the
/// elapsed wall time to stderr.
fn finish_recorder(
    rec: &Recorder,
    t0: u64,
    stats: Option<&phylo_ooc::ooc::OocStats>,
) -> Result<(), String> {
    if let Some(s) = stats {
        rec.emit_stats(s);
    }
    let wall = rec.now().saturating_sub(t0);
    eprintln!("{}", rec.attribution(wall));
    rec.finish()
        .map_err(|e| format!("cannot write metrics: {e}"))
}

/// Load a partition spec plus the mixed-alphabet alignment it describes:
/// rows are read as raw characters, reordered to the tree's tip order, and
/// each partition's column slice is encoded under its own alphabet.
fn load_partitioned_inputs(
    opts: &Opts,
    spec_path: &str,
) -> Result<(Tree, PartitionSpec, Vec<CompressedAlignment>), String> {
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = PartitionSpec::parse(&text).map_err(|e| format!("{spec_path}: {e}"))?;

    let aln_path = opts.require("alignment")?;
    let file = File::open(aln_path).map_err(|e| format!("{aln_path}: {e}"))?;
    let entries = read_phylip_raw(BufReader::new(file)).map_err(|e| e.to_string())?;

    // A partitioned run needs an explicit tree: the parsimony starting
    // tree is built from a single-alphabet alignment.
    let tree_path = opts
        .get("tree")
        .ok_or("--partitions requires --tree (no parsimony start for mixed data)")?;
    let text = std::fs::read_to_string(tree_path).map_err(|e| format!("{tree_path}: {e}"))?;
    let (tree, names) = parse_newick(&text).map_err(|e| e.to_string())?;
    if tree.n_tips() != entries.len() {
        return Err(format!(
            "tree has {} tips but alignment has {} sequences",
            tree.n_tips(),
            entries.len()
        ));
    }
    let index: HashMap<&str, usize> = entries
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();
    let mut reordered = Vec::with_capacity(names.len());
    for name in &names {
        let &row = index
            .get(name.as_str())
            .ok_or_else(|| format!("tip {name:?} not found in the alignment"))?;
        reordered.push((name.clone(), entries[row].1.clone()));
    }
    let comps = spec
        .split_chars(&reordered)
        .map_err(|e| e.to_string())?
        .iter()
        .map(compress_patterns)
        .collect();
    Ok((tree, spec, comps))
}

/// `likelihood --partitions FILE`: evaluate a partitioned analysis — one
/// shared tree, one engine per partition — and report the joint and
/// per-partition log-likelihoods. Under `--memory`, an absolute byte
/// budget is split across partitions proportionally to their vector
/// footprints (so a 61-state codon block gets ~15x the slots of an
/// equal-length DNA block); a `%` budget applies per partition. The
/// whole stack is resolved through one [`EngineSpec`].
fn cmd_likelihood_partitioned(opts: &Opts, spec_path: &str) -> Result<(), String> {
    let (tree, pspec, comps) = load_partitioned_inputs(opts, spec_path)?;
    let seed = opts.u64("seed", 42)?;
    let spec = cli_spec(opts, seed)?;
    let names: Vec<String> = pspec.partitions.iter().map(|p| p.name.clone()).collect();
    let models: Vec<ReversibleModel> = comps.iter().map(default_model).collect();
    let parts: Vec<PartSpec<'_>> = names
        .iter()
        .zip(comps.iter().zip(&models))
        .map(|(name, (comp, model))| PartSpec {
            name: name.clone(),
            comp,
            model,
        })
        .collect();

    // One recorder per partition, each with that partition's name as its
    // scope, all appending whole lines to one JSONL file, each headed by
    // the engine profile — `metrics_check` then reconciles every
    // partition's residency stack independently.
    let recorders: Option<HashMap<String, Recorder>> = match opts.get("metrics") {
        None => None,
        Some(path) => {
            File::create(path).map_err(|e| format!("cannot create '{path}': {e}"))?;
            let mut map = HashMap::new();
            for name in &names {
                let sink = phylo_ooc::ooc::JsonlSink::append(path)
                    .map_err(|e| format!("cannot open '{path}': {e}"))?;
                let rec =
                    Recorder::scoped(phylo_ooc::ooc::MonotonicClock::new(), sink, name.clone());
                rec.emit_profile(&spec.to_toml());
                map.insert(name.clone(), rec);
            }
            Some(map)
        }
    };

    let vector_path = vector_file(opts);
    let mut ctx = BuildContext::new().vector_path(&vector_path);
    if let Some(recs) = &recorders {
        let map = recs.clone();
        ctx = ctx.recorders(move |name| map[name].clone());
    }
    let built = spec.build(&tree, &parts, &ctx).map_err(|e| e.to_string())?;
    let mut engine = built.engine;

    for (name, slots) in names
        .iter()
        .zip(spec.slot_counts(&tree, &parts).map_err(|e| e.to_string())?)
    {
        if let Some(slots) = slots {
            eprintln!(
                "partition {}: {} of {} vectors in RAM",
                name,
                slots,
                tree.n_inner()
            );
        }
    }
    let t0s: HashMap<String, u64> = recorders
        .iter()
        .flatten()
        .map(|(name, r)| (name.clone(), r.now()))
        .collect();
    let lnl = engine.log_likelihood().map_err(|e| e.to_string())?;
    println!("log-likelihood: {lnl:.6}");
    let per = engine.partition_lnls().map_err(|e| e.to_string())?;
    for (name, part_lnl) in names.iter().zip(&per) {
        println!("  {name}: {part_lnl:.6}");
    }
    if opts.flag("stats") {
        if let Some(s) = engine.ooc_stats() {
            eprintln!("out-of-core (all partitions): {s}");
        }
    }
    if let Some(recs) = &recorders {
        let stats = engine.partition_ooc_stats();
        for (i, name) in names.iter().enumerate() {
            eprintln!("[{name}]");
            finish_recorder(&recs[name], t0s[name], stats[i].as_ref())?;
        }
    }
    drop(engine);
    for i in 0..names.len() {
        let _ = std::fs::remove_file(scratch_vector_path().with_extension(format!("p{i}")));
    }
    Ok(())
}

fn cmd_likelihood(opts: &Opts) -> Result<(), String> {
    if let Some(spec_path) = opts.get("partitions") {
        let spec_path = spec_path.to_owned();
        return cmd_likelihood_partitioned(opts, &spec_path);
    }
    let (tree, comp) = load_inputs(opts)?;
    let seed = opts.u64("seed", 42)?;
    let spec = cli_spec(opts, seed)?;
    let model = default_model(&comp);
    let parts = vec![PartSpec {
        name: String::new(),
        comp: &comp,
        model: &model,
    }];

    let recorder = make_recorder(opts)?;
    if let Some(rec) = &recorder {
        // Head the metrics stream with the exact engine configuration
        // that produced it.
        rec.emit_profile(&spec.to_toml());
    }
    let vector_path = vector_file(opts);
    let mut ctx = BuildContext::new().vector_path(&vector_path);
    if let Some(rec) = &recorder {
        let rec = rec.clone();
        ctx = ctx.recorders(move |_| rec.clone());
    }
    let built = spec.build(&tree, &parts, &ctx).map_err(|e| e.to_string())?;
    let mut engine = built.engine;
    let t0 = recorder.as_ref().map(|r| r.now());
    let lnl = engine.log_likelihood().map_err(|e| {
        cleanup_scratch();
        e.to_string()
    })?;
    println!("log-likelihood: {lnl:.6}");
    println!("alpha = {:.4}", engine.alpha());
    if let Some(Some(slots)) = spec
        .slot_counts(&tree, &parts)
        .map_err(|e| e.to_string())?
        .first()
    {
        eprintln!(
            "out-of-core: {} of {} vectors in RAM",
            slots,
            tree.n_inner()
        );
    }
    if opts.flag("stats") {
        if let Some(s) = engine.ooc_stats() {
            eprintln!("{s}");
        }
    }
    if let (Some(rec), Some(t0)) = (&recorder, t0) {
        finish_recorder(rec, t0, engine.ooc_stats().as_ref())?;
    }
    drop(engine);
    cleanup_scratch();
    Ok(())
}

fn cmd_search(opts: &Opts) -> Result<(), String> {
    let (tree, comp) = load_inputs(opts)?;
    let seed = opts.u64("seed", 42)?;
    let spec = cli_spec(opts, seed)?;
    let model = default_model(&comp);
    let parts = vec![PartSpec {
        name: String::new(),
        comp: &comp,
        model: &model,
    }];
    let cfg = SearchConfig {
        spr_radius: opts.usize("radius", 5)? as u32,
        max_rounds: opts.usize("rounds", 8)?,
        optimize_model: opts.f64_opt("alpha")?.is_none(),
        seed,
        ..Default::default()
    };

    let recorder = make_recorder(opts)?;
    if let Some(rec) = &recorder {
        rec.emit_profile(&spec.to_toml());
    }
    let vector_path = vector_file(opts);
    let mut ctx = BuildContext::new().vector_path(&vector_path);
    if let Some(rec) = &recorder {
        let rec = rec.clone();
        ctx = ctx.recorders(move |_| rec.clone());
    }
    let built = spec.build(&tree, &parts, &ctx).map_err(|e| e.to_string())?;
    let mut engine = built.engine;
    let t0 = recorder.as_ref().map(|r| r.now());
    let stats = hill_climb_observed(&mut engine, &cfg, recorder.as_ref()).map_err(|e| {
        cleanup_scratch();
        e.to_string()
    })?;
    // Keep any topology-aware strategy oracle in sync with the final tree.
    for h in &built.handles {
        h.update(engine.tree());
    }
    let mgr_stats = engine.ooc_stats();
    if let (Some(rec), Some(t0)) = (&recorder, t0) {
        finish_recorder(rec, t0, mgr_stats.as_ref())?;
    }
    let final_tree = engine.tree().clone();
    drop(engine);
    cleanup_scratch();

    println!(
        "search: lnl {:.4} -> {:.4} in {} round(s), {} SPRs applied ({} evaluated), alpha {:.4}",
        stats.initial_lnl,
        stats.final_lnl,
        stats.rounds,
        stats.spr_applied,
        stats.spr_evaluated,
        stats.alpha
    );
    if let Some(mgr) = mgr_stats {
        if opts.flag("stats") {
            eprintln!("out-of-core: {mgr}");
        }
    }
    if let Some(out) = opts.get("out") {
        let names = comp.alignment.names().to_vec();
        let mut w = BufWriter::new(File::create(out).map_err(|e| e.to_string())?);
        writeln!(w, "{}", write_newick(&final_tree, &names)).map_err(|e| e.to_string())?;
        eprintln!("best tree written to {out}");
    }
    Ok(())
}
