//! # phylo-ooc — Computing the Phylogenetic Likelihood Function Out-of-Core
//!
//! A from-scratch Rust reproduction of Izquierdo-Carrasco & Stamatakis
//! (2011): the phylogenetic likelihood function (PLF) executed with its
//! dominant data structure — the ancestral probability vectors — paged
//! explicitly between RAM and disk, instead of relying on OS paging.
//!
//! The workspace splits into substrate crates, re-exported here:
//!
//! * [`tree`] — unrooted binary trees, Newick, traversal planning, SPR/NNI,
//! * [`models`] — GTR-family substitution models, discrete Γ, eigen maths,
//! * [`seq`] — alignments, FASTA/PHYLIP, pattern compression, simulation,
//! * [`ooc`] — **the paper's contribution**: the out-of-core vector
//!   manager with Random/LRU/LFU/Topological replacement, pinning and
//!   read skipping,
//! * [`plf`] — the likelihood engine, generic over in-RAM / out-of-core /
//!   OS-paged vector residency,
//! * [`search`] — lazy-SPR hill climbing (the realistic access pattern),
//! * [`pager`] — the OS-paging baseline simulator.
//!
//! The [`setup`] module offers one-call constructors for the standard
//! experiment configurations used by the examples, integration tests and
//! the figure-regeneration benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use phylo_ooc::setup::{self, DatasetSpec};
//! use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
//!
//! // Simulate a small dataset; declare the engine instead of picking a
//! // constructor: residency, strategy, shards etc. are orthogonal axes.
//! let spec = DatasetSpec { n_taxa: 16, n_sites: 200, seed: 7, ..Default::default() };
//! let data = setup::simulate_dataset(&spec);
//! let mut standard = setup::inram_engine(&data);
//! let ooc_spec = EngineSpec {
//!     residency: Residency::OocMem { fraction: 0.25 },
//!     ..setup::base_spec(&data)
//! };
//! let mut ooc = setup::build_engine(&ooc_spec, &data, &BuildContext::new())
//!     .unwrap()
//!     .engine;
//!
//! // The paper's correctness criterion: identical likelihoods.
//! // (Likelihood methods return Result: store I/O can fail.)
//! assert_eq!(
//!     standard.log_likelihood().unwrap(),
//!     ooc.log_likelihood().unwrap(),
//! );
//! let stats = ooc.ooc_stats().expect("out-of-core engines expose stats");
//! assert!(stats.misses > 0, "with f = 0.25 there must be misses");
//! ```

pub use ooc_core as ooc;
pub use pager_sim as pager;
pub use phylo_models as models;
pub use phylo_plf as plf;
pub use phylo_search as search;
pub use phylo_seq as seq;
pub use phylo_tree as tree;

pub mod setup {
    //! Canonical experiment setups shared by examples, tests and benches.

    use ooc_core::{
        split_budget, FileStore, MemStore, OocConfig, PrefetchingStore, ShardSpec, StrategyKind,
        VectorManager,
    };
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_plf::{
        BuildContext, BuiltEngine, EngineSpec, InRamStore, OocStore, PagedStore, PartSpec,
        PartitionedPlfEngine, PlfEngine, ShardedPlfEngine, SharedTree, SpecError, TreeOracle,
    };
    use phylo_seq::{compress_patterns, simulate_alignment, CompressedAlignment, PartitionKind};
    use phylo_tree::build::{random_topology, yule_like_lengths};
    use phylo_tree::Tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::Path;

    /// Parameters of a simulated dataset (the stand-in for the paper's
    /// real rbcL alignments and INDELible simulations).
    #[derive(Debug, Clone, PartialEq)]
    pub struct DatasetSpec {
        /// Number of taxa (tree tips).
        pub n_taxa: usize,
        /// Alignment length in sites.
        pub n_sites: usize,
        /// RNG seed for topology, branch lengths and sequences.
        pub seed: u64,
        /// Γ shape used for simulation and as the engine's starting α.
        pub alpha: f64,
        /// Γ categories (the paper always uses 4).
        pub n_cats: usize,
        /// Mean branch length of the random tree.
        pub mean_branch: f64,
    }

    impl Default for DatasetSpec {
        fn default() -> Self {
            DatasetSpec {
                n_taxa: 32,
                n_sites: 300,
                seed: 42,
                alpha: 0.8,
                n_cats: 4,
                mean_branch: 0.12,
            }
        }
    }

    /// A simulated dataset: the true tree and the pattern-compressed
    /// alignment, plus the model objects used to generate it.
    pub struct Dataset {
        /// Tree the sequences were simulated on.
        pub tree: Tree,
        /// Pattern-compressed alignment.
        pub comp: CompressedAlignment,
        /// Substitution model (HKY85 with fixed unequal frequencies).
        pub model: ReversibleModel,
        /// Spec it was built from.
        pub spec: DatasetSpec,
    }

    impl Dataset {
        /// Vector width in doubles for this dataset's engines.
        pub fn width(&self) -> usize {
            PlfEngine::<InRamStore>::dims_for(&self.comp, self.spec.n_cats).width()
        }

        /// Number of managed vectors (= inner nodes).
        pub fn n_items(&self) -> usize {
            self.tree.n_inner()
        }

        /// Bytes required to hold all ancestral vectors (the paper's
        /// memory-requirement formula `(n-2) · 8 · states · cats · s`).
        pub fn total_vector_bytes(&self) -> u64 {
            self.n_items() as u64 * self.width() as u64 * 8
        }
    }

    /// Simulate a dataset per `spec` (HKY85+Γ, the class of model used in
    /// the paper's experiments).
    pub fn simulate_dataset(spec: &DatasetSpec) -> Dataset {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut tree = random_topology(spec.n_taxa, 0.1, &mut rng);
        yule_like_lengths(&mut tree, spec.mean_branch, 1e-5, &mut rng);
        let model = ReversibleModel::hky85(2.5, &[0.3, 0.2, 0.2, 0.3]);
        let gamma = DiscreteGamma::new(spec.alpha, spec.n_cats);
        let aln = simulate_alignment(&tree, &model, &gamma, spec.n_sites, &mut rng);
        let comp = compress_patterns(&aln);
        Dataset {
            tree,
            comp,
            model,
            spec: spec.clone(),
        }
    }

    /// Standard (all vectors in RAM) engine on the dataset's true tree.
    pub fn inram_engine(data: &Dataset) -> PlfEngine<InRamStore> {
        let store = InRamStore::new(data.n_items(), data.width());
        PlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            store,
        )
    }

    /// Build the replacement strategy, wiring up a [`TreeOracle`] for the
    /// strategies that rank vectors by tree distance: Topological (its
    /// whole policy) and NextUse (its beyond-plan fallback). Returns the
    /// strategy and, when an oracle was wired, the shared tree handle to
    /// refresh after rearrangements.
    pub fn build_strategy(
        kind: StrategyKind,
        tree: &Tree,
    ) -> (Box<dyn ooc_core::ReplacementStrategy>, Option<SharedTree>) {
        match kind {
            StrategyKind::Topological | StrategyKind::NextUse => {
                let shared = SharedTree::new(tree);
                let oracle = TreeOracle::new(shared.clone());
                (kind.build(Some(Box::new(oracle))), Some(shared))
            }
            _ => (kind.build(None), None),
        }
    }

    /// The dataset as a single [`PartSpec`] slice for [`EngineSpec::build`]
    /// (empty name — the unpartitioned metrics scope).
    pub fn part_specs(data: &Dataset) -> Vec<PartSpec<'_>> {
        vec![PartSpec {
            name: String::new(),
            comp: &data.comp,
            model: &data.model,
        }]
    }

    /// An [`EngineSpec`] seeded with the dataset's α and Γ categories;
    /// override residency/strategy/shards via struct update syntax.
    pub fn base_spec(data: &Dataset) -> EngineSpec {
        EngineSpec {
            alpha: data.spec.alpha,
            n_cats: data.spec.n_cats,
            ..EngineSpec::default()
        }
    }

    /// Resolve a spec over a simulated dataset — the declarative
    /// replacement for the constructor matrix below.
    pub fn build_engine(
        spec: &EngineSpec,
        data: &Dataset,
        ctx: &BuildContext,
    ) -> Result<BuiltEngine, SpecError> {
        spec.build(&data.tree, &part_specs(data), ctx)
    }

    /// Out-of-core engine with an in-memory backing store (for measuring
    /// miss rates, which are independent of the I/O medium) holding a
    /// fraction `f` of vectors in RAM slots.
    #[deprecated(
        note = "construct via `EngineSpec` (`Residency::OocMem`) and `setup::build_engine`"
    )]
    #[allow(deprecated)]
    pub fn ooc_engine_mem(
        data: &Dataset,
        f: f64,
        kind: StrategyKind,
    ) -> PlfEngine<OocStore<MemStore>> {
        ooc_engine_mem_with_handle(data, f, kind).0
    }

    /// As [`ooc_engine_mem`] but also returning the Topological strategy's
    /// shared-tree handle for refreshes during searches.
    #[deprecated(
        note = "construct via `EngineSpec`; `BuiltEngine::handles` carries the oracle handles"
    )]
    pub fn ooc_engine_mem_with_handle(
        data: &Dataset,
        f: f64,
        kind: StrategyKind,
    ) -> (PlfEngine<OocStore<MemStore>>, Option<SharedTree>) {
        let cfg = OocConfig::builder(data.n_items(), data.width())
            .fraction(f)
            .build()
            .expect("valid out-of-core config");
        let (strategy, handle) = build_strategy(kind, &data.tree);
        let manager =
            VectorManager::new(cfg, strategy, MemStore::new(data.n_items(), data.width()));
        let engine = PlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            OocStore::new(manager),
        );
        (engine, handle)
    }

    /// Out-of-core engine over a real single binary file (the paper's
    /// primary configuration), limited to `limit_bytes` of slot RAM (the
    /// paper's `-L` flag). Fails if the backing file cannot be created.
    #[deprecated(
        note = "construct via `EngineSpec` (`Residency::FileLimit`) and `setup::build_engine`"
    )]
    pub fn ooc_engine_file<P: AsRef<Path>>(
        data: &Dataset,
        path: P,
        limit_bytes: u64,
        kind: StrategyKind,
    ) -> std::io::Result<PlfEngine<OocStore<FileStore>>> {
        let cfg = OocConfig::builder(data.n_items(), data.width())
            .byte_limit(limit_bytes)
            .build()
            .expect("valid out-of-core config");
        let (strategy, _) = build_strategy(kind, &data.tree);
        let store = FileStore::create(path, data.n_items(), data.width())?;
        let manager = VectorManager::new(cfg, strategy, store);
        Ok(PlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            OocStore::new(manager),
        ))
    }

    /// Sharded out-of-core engine with per-shard in-memory backing stores:
    /// the pattern columns are split into `n_shards` contiguous ranges,
    /// each managed by its own `VectorManager` holding a fraction `f` of
    /// its vectors in RAM slots, executed in parallel. Log-likelihoods are
    /// bit-identical to the serial engines.
    #[deprecated(note = "construct via `EngineSpec` (`Residency::OocMem`, `shards > 1`)")]
    pub fn sharded_engine_mem(
        data: &Dataset,
        f: f64,
        kind: StrategyKind,
        n_shards: usize,
    ) -> ShardedPlfEngine<OocStore<MemStore>> {
        let spec = ShardSpec::even(data.comp.n_patterns(), n_shards);
        let dims =
            ShardedPlfEngine::<OocStore<MemStore>>::shard_dims(&data.comp, data.spec.n_cats, &spec);
        let stores = dims
            .iter()
            .map(|d| {
                let cfg = OocConfig::builder(data.n_items(), d.width())
                    .fraction(f)
                    .build()
                    .expect("valid out-of-core config");
                let (strategy, _) = build_strategy(kind, &data.tree);
                OocStore::new(VectorManager::new(
                    cfg,
                    strategy,
                    MemStore::new(data.n_items(), d.width()),
                ))
            })
            .collect();
        ShardedPlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            spec,
            stores,
        )
    }

    /// Sharded out-of-core engine over one backing file split into
    /// disjoint per-shard regions (`FileStore::create_regions`), each
    /// shard's manager holding a fraction `f` of its vectors in RAM.
    /// Fails if the backing file cannot be created.
    #[deprecated(note = "construct via `EngineSpec` (`Residency::File`, `shards > 1`)")]
    pub fn sharded_engine_file<P: AsRef<Path>>(
        data: &Dataset,
        path: P,
        f: f64,
        kind: StrategyKind,
        n_shards: usize,
    ) -> std::io::Result<ShardedPlfEngine<OocStore<FileStore>>> {
        let spec = ShardSpec::even(data.comp.n_patterns(), n_shards);
        let dims = ShardedPlfEngine::<OocStore<FileStore>>::shard_dims(
            &data.comp,
            data.spec.n_cats,
            &spec,
        );
        let widths: Vec<usize> = dims.iter().map(|d| d.width()).collect();
        let regions = FileStore::create_regions(path, data.n_items(), &widths)?;
        let stores = regions
            .into_iter()
            .zip(&widths)
            .map(|(store, &w)| {
                let cfg = OocConfig::builder(data.n_items(), w)
                    .fraction(f)
                    .build()
                    .expect("valid out-of-core config");
                let (strategy, _) = build_strategy(kind, &data.tree);
                OocStore::new(VectorManager::new(cfg, strategy, store))
            })
            .collect();
        Ok(ShardedPlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            spec,
            stores,
        ))
    }

    /// As [`sharded_engine_file`] but with each shard's region store
    /// wrapped in a plan-driven [`PrefetchingStore`] pipeline driven by
    /// `io_threads` dedicated I/O workers per shard. Worker handles are
    /// [`FileStore::try_clone`]s of the shard's own region, so staged
    /// reads and folded write-backs act on exactly the bytes the shard
    /// owns; log-likelihoods remain bit-identical to the serial engines
    /// because the pipeline only changes *when* bytes move, never their
    /// values. `io_threads == 0` degenerates to unpipelined shards.
    #[deprecated(note = "construct via `EngineSpec` (`Residency::File`, `shards`, `io_threads`)")]
    #[allow(deprecated)]
    pub fn sharded_engine_file_pipelined<P: AsRef<Path>>(
        data: &Dataset,
        path: P,
        f: f64,
        kind: StrategyKind,
        n_shards: usize,
        io_threads: usize,
        window: usize,
    ) -> std::io::Result<ShardedPlfEngine<OocStore<PrefetchingStore<FileStore>>>> {
        sharded_pipelined_engine(
            &data.tree,
            &data.comp,
            &data.model,
            data.spec.alpha,
            data.spec.n_cats,
            path,
            f,
            kind,
            n_shards,
            io_threads,
            window,
        )
    }

    /// The pipelined-sharded wiring over explicit parts — what
    /// [`sharded_engine_file_pipelined`] and the per-partition constructors
    /// ([`partitioned_engine_sharded_pipelined`]) share: one backing file
    /// split into per-shard regions, each wrapped in a plan-driven
    /// [`PrefetchingStore`] with `io_threads` worker handles.
    #[deprecated(note = "construct via `EngineSpec` (`Residency::File`, `shards`, `io_threads`)")]
    #[allow(clippy::too_many_arguments)]
    pub fn sharded_pipelined_engine<P: AsRef<Path>>(
        tree: &Tree,
        comp: &CompressedAlignment,
        model: &ReversibleModel,
        alpha: f64,
        n_cats: usize,
        path: P,
        f: f64,
        kind: StrategyKind,
        n_shards: usize,
        io_threads: usize,
        window: usize,
    ) -> std::io::Result<ShardedPlfEngine<OocStore<PrefetchingStore<FileStore>>>> {
        let n_items = tree.n_inner();
        let spec = ShardSpec::even(comp.n_patterns(), n_shards);
        let dims = ShardedPlfEngine::<OocStore<PrefetchingStore<FileStore>>>::shard_dims(
            comp, n_cats, &spec,
        );
        let widths: Vec<usize> = dims.iter().map(|d| d.width()).collect();
        let regions = FileStore::create_regions(path, n_items, &widths)?;
        let stores = regions
            .into_iter()
            .zip(&widths)
            .map(|(store, &w)| {
                let workers = (0..io_threads.max(1))
                    .map(|_| store.try_clone())
                    .collect::<std::io::Result<Vec<_>>>()?;
                let pipelined = PrefetchingStore::with_pool(store, workers, n_items, w);
                let cfg = OocConfig::builder(n_items, w)
                    .fraction(f)
                    .prefetch_window(window)
                    .build()
                    .expect("valid out-of-core config");
                let (strategy, _) = build_strategy(kind, tree);
                Ok(OocStore::new(VectorManager::new(cfg, strategy, pipelined)))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ShardedPlfEngine::new(
            tree.clone(),
            comp,
            model.clone(),
            alpha,
            n_cats,
            spec,
            stores,
        ))
    }

    /// As [`sharded_engine_file`] but with the paper's `-L` byte budget
    /// instead of a fraction: `limit_bytes` of slot RAM is divided evenly
    /// across the shards, so the sharded run respects the same total
    /// memory ceiling as the serial run it is compared against.
    #[deprecated(note = "construct via `EngineSpec` (`Residency::FileLimit`, `shards > 1`)")]
    pub fn sharded_engine_file_limit<P: AsRef<Path>>(
        data: &Dataset,
        path: P,
        limit_bytes: u64,
        kind: StrategyKind,
        n_shards: usize,
    ) -> std::io::Result<ShardedPlfEngine<OocStore<FileStore>>> {
        let spec = ShardSpec::even(data.comp.n_patterns(), n_shards);
        let dims = ShardedPlfEngine::<OocStore<FileStore>>::shard_dims(
            &data.comp,
            data.spec.n_cats,
            &spec,
        );
        let widths: Vec<usize> = dims.iter().map(|d| d.width()).collect();
        let regions = FileStore::create_regions(path, data.n_items(), &widths)?;
        let per_shard = (limit_bytes / n_shards as u64).max(1);
        let stores = regions
            .into_iter()
            .zip(&widths)
            .map(|(store, &w)| {
                let cfg = OocConfig::builder(data.n_items(), w)
                    .byte_limit(per_shard)
                    .build()
                    .expect("valid out-of-core config");
                let (strategy, _) = build_strategy(kind, &data.tree);
                OocStore::new(VectorManager::new(cfg, strategy, store))
            })
            .collect();
        Ok(ShardedPlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            spec,
            stores,
        ))
    }

    /// One block of a partitioned dataset: a named data partition with its
    /// own alphabet/model over the shared tree.
    pub struct PartitionPart {
        /// Partition name.
        pub name: String,
        /// Data type.
        pub kind: PartitionKind,
        /// Pattern-compressed alignment of this partition's columns.
        pub comp: CompressedAlignment,
        /// The partition's substitution model.
        pub model: ReversibleModel,
    }

    /// A partitioned dataset: several data blocks simulated on one tree.
    pub struct PartitionedDataset {
        /// The shared tree.
        pub tree: Tree,
        /// The partitions, in spec order.
        pub parts: Vec<PartitionPart>,
        /// Shared Γ shape.
        pub alpha: f64,
        /// Γ categories.
        pub n_cats: usize,
    }

    impl PartitionedDataset {
        /// Vector width in doubles of partition `i`'s engines.
        pub fn width(&self, i: usize) -> usize {
            PlfEngine::<InRamStore>::dims_for(&self.parts[i].comp, self.n_cats).width()
        }

        /// Total ancestral-vector bytes of partition `i` (its weight when
        /// splitting a joint `-L` byte budget via
        /// [`ooc_core::split_budget`]).
        pub fn partition_vector_bytes(&self, i: usize) -> u64 {
            self.tree.n_inner() as u64 * self.width(i) as u64 * 8
        }
    }

    /// The default model family for a partition kind: HKY85 for DNA (the
    /// paper's model class), a seeded synthetic reversible model for
    /// protein (20-state) and codon (61-state) partitions.
    pub fn default_partition_model(kind: PartitionKind, seed: u64) -> ReversibleModel {
        match kind {
            PartitionKind::Dna => ReversibleModel::hky85(2.5, &[0.3, 0.2, 0.2, 0.3]),
            PartitionKind::Protein => phylo_models::protein::synthetic_protein(seed),
            PartitionKind::Codon => phylo_models::codon::synthetic_codon(seed),
        }
    }

    /// Simulate a partitioned dataset: one random tree, then each
    /// partition's sites evolved independently on it under that
    /// partition's own model — the partitioned analogue of
    /// [`simulate_dataset`]. `parts` gives `(kind, n_sites)` per partition
    /// (codon partitions count codon sites, not nucleotides).
    pub fn simulate_partitioned_dataset(
        spec: &DatasetSpec,
        parts: &[(PartitionKind, usize)],
    ) -> PartitionedDataset {
        assert!(!parts.is_empty(), "need at least one partition");
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut tree = random_topology(spec.n_taxa, 0.1, &mut rng);
        yule_like_lengths(&mut tree, spec.mean_branch, 1e-5, &mut rng);
        let gamma = DiscreteGamma::new(spec.alpha, spec.n_cats);
        let parts = parts
            .iter()
            .enumerate()
            .map(|(i, &(kind, n_sites))| {
                let model = default_partition_model(kind, spec.seed ^ (i as u64 + 1));
                let aln = simulate_alignment(&tree, &model, &gamma, n_sites, &mut rng);
                PartitionPart {
                    name: format!("p{i}_{}", kind.keyword().to_ascii_lowercase()),
                    kind,
                    comp: compress_patterns(&aln),
                    model,
                }
            })
            .collect();
        PartitionedDataset {
            tree,
            parts,
            alpha: spec.alpha,
            n_cats: spec.n_cats,
        }
    }

    /// Partition names in spec order (for [`PartitionedPlfEngine::new`]).
    fn partition_names(data: &PartitionedDataset) -> Vec<String> {
        data.parts.iter().map(|p| p.name.clone()).collect()
    }

    /// The partitioned dataset as [`PartSpec`]s for [`EngineSpec::build`].
    pub fn partitioned_part_specs(data: &PartitionedDataset) -> Vec<PartSpec<'_>> {
        data.parts
            .iter()
            .map(|p| PartSpec {
                name: p.name.clone(),
                comp: &p.comp,
                model: &p.model,
            })
            .collect()
    }

    /// An [`EngineSpec`] seeded with the partitioned dataset's α and Γ
    /// categories.
    pub fn base_partitioned_spec(data: &PartitionedDataset) -> EngineSpec {
        EngineSpec {
            alpha: data.alpha,
            n_cats: data.n_cats,
            ..EngineSpec::default()
        }
    }

    /// Resolve a spec over a partitioned dataset — the declarative
    /// replacement for the `partitioned_engine_*` constructors.
    pub fn build_partitioned_engine(
        spec: &EngineSpec,
        data: &PartitionedDataset,
        ctx: &BuildContext,
    ) -> Result<BuiltEngine, SpecError> {
        spec.build(&data.tree, &partitioned_part_specs(data), ctx)
    }

    /// Partitioned engine with every member fully in RAM.
    #[deprecated(note = "construct via `EngineSpec` and `setup::build_partitioned_engine`")]
    pub fn partitioned_engine_inram(
        data: &PartitionedDataset,
    ) -> PartitionedPlfEngine<PlfEngine<InRamStore>> {
        let parts = data
            .parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let store = InRamStore::new(data.tree.n_inner(), data.width(i));
                PlfEngine::new(
                    data.tree.clone(),
                    &p.comp,
                    p.model.clone(),
                    data.alpha,
                    data.n_cats,
                    store,
                )
            })
            .collect();
        PartitionedPlfEngine::new(parts, partition_names(data))
    }

    /// Partitioned out-of-core engine with per-partition in-memory backing
    /// stores, each member's manager holding a fraction `f` of that
    /// partition's vectors in RAM slots.
    #[deprecated(
        note = "construct via `EngineSpec` (`Residency::OocMem`) and `setup::build_partitioned_engine`"
    )]
    pub fn partitioned_engine_ooc_mem(
        data: &PartitionedDataset,
        f: f64,
        kind: StrategyKind,
    ) -> PartitionedPlfEngine<PlfEngine<OocStore<MemStore>>> {
        let n_items = data.tree.n_inner();
        let parts = data
            .parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let w = data.width(i);
                let cfg = OocConfig::builder(n_items, w)
                    .fraction(f)
                    .build()
                    .expect("valid out-of-core config");
                let (strategy, _) = build_strategy(kind, &data.tree);
                let manager = VectorManager::new(cfg, strategy, MemStore::new(n_items, w));
                PlfEngine::new(
                    data.tree.clone(),
                    &p.comp,
                    p.model.clone(),
                    data.alpha,
                    data.n_cats,
                    OocStore::new(manager),
                )
            })
            .collect();
        PartitionedPlfEngine::new(parts, partition_names(data))
    }

    /// Partitioned out-of-core engine over one backing file per partition
    /// under the paper's `-L` byte budget: `limit_bytes` of slot RAM is
    /// split across the partitions *proportionally to their vector
    /// footprints* ([`ooc_core::split_budget`]) — a codon partition gets
    /// ~15× the slots of an equal-length DNA partition, so all partitions
    /// see comparable residency pressure. Partition `i`'s file is
    /// `<path>.p<i>`.
    #[deprecated(
        note = "construct via `EngineSpec` (`Residency::FileLimit`) and `setup::build_partitioned_engine`"
    )]
    pub fn partitioned_engine_file_limit<P: AsRef<Path>>(
        data: &PartitionedDataset,
        path: P,
        limit_bytes: u64,
        kind: StrategyKind,
    ) -> std::io::Result<PartitionedPlfEngine<PlfEngine<OocStore<FileStore>>>> {
        let n_items = data.tree.n_inner();
        let weights: Vec<u64> = (0..data.parts.len())
            .map(|i| data.partition_vector_bytes(i))
            .collect();
        let budgets = split_budget(limit_bytes, &weights);
        let parts = data
            .parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let w = data.width(i);
                let file = path.as_ref().with_extension(format!("p{i}"));
                let store = FileStore::create(file, n_items, w)?;
                let cfg = OocConfig::builder(n_items, w)
                    .byte_limit(budgets[i].max(1))
                    .build()
                    .expect("valid out-of-core config");
                let (strategy, _) = build_strategy(kind, &data.tree);
                Ok(PlfEngine::new(
                    data.tree.clone(),
                    &p.comp,
                    p.model.clone(),
                    data.alpha,
                    data.n_cats,
                    OocStore::new(VectorManager::new(cfg, strategy, store)),
                ))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(PartitionedPlfEngine::new(parts, partition_names(data)))
    }

    /// Partitioned engine whose members are *pipelined sharded* engines:
    /// each partition owns one backing file (`<path>.p<i>`) split into
    /// `n_shards` regions, every region wrapped in the plan-driven
    /// [`PrefetchingStore`] I/O pipeline — the full PR-6 residency stack,
    /// per partition. Per-partition log-likelihoods stay bit-identical to
    /// independent serial in-RAM runs (pipelines move bytes earlier, never
    /// change them; shard reductions fold in serial pattern order).
    #[deprecated(
        note = "construct via `EngineSpec` (`Residency::File`, `shards`, `io_threads`) and `setup::build_partitioned_engine`"
    )]
    #[allow(deprecated)]
    #[allow(clippy::too_many_arguments)]
    pub fn partitioned_engine_sharded_pipelined<P: AsRef<Path>>(
        data: &PartitionedDataset,
        path: P,
        f: f64,
        kind: StrategyKind,
        n_shards: usize,
        io_threads: usize,
        window: usize,
    ) -> std::io::Result<
        PartitionedPlfEngine<ShardedPlfEngine<OocStore<PrefetchingStore<FileStore>>>>,
    > {
        let parts = data
            .parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                sharded_pipelined_engine(
                    &data.tree,
                    &p.comp,
                    &p.model,
                    data.alpha,
                    data.n_cats,
                    path.as_ref().with_extension(format!("p{i}")),
                    f,
                    kind,
                    n_shards,
                    io_threads,
                    window,
                )
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(PartitionedPlfEngine::new(parts, partition_names(data)))
    }

    /// Standard engine whose vectors live in a demand-paged arena with
    /// `phys_bytes` of physical memory (the Figure 5 paging baseline).
    /// Fails if the swap file cannot be created.
    pub fn paged_engine<P: AsRef<Path>>(
        data: &Dataset,
        swap_path: P,
        phys_bytes: usize,
    ) -> std::io::Result<PlfEngine<PagedStore>> {
        let arena =
            pager_sim::PagedArena::new(data.total_vector_bytes() as usize, phys_bytes, swap_path)?;
        let store = PagedStore::new(arena, data.n_items(), data.width());
        Ok(PlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            store,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::setup::{self, DatasetSpec};
    use ooc_core::StrategyKind;
    use phylo_plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};

    #[test]
    fn facade_quickstart_works() {
        let spec = DatasetSpec {
            n_taxa: 10,
            n_sites: 80,
            seed: 3,
            ..Default::default()
        };
        let data = setup::simulate_dataset(&spec);
        let mut standard = setup::inram_engine(&data);
        let ooc_spec = EngineSpec {
            residency: Residency::OocMem { fraction: 0.5 },
            strategy: StrategyKind::Random { seed: 1 },
            ..setup::base_spec(&data)
        };
        let mut ooc = setup::build_engine(&ooc_spec, &data, &BuildContext::new())
            .unwrap()
            .engine;
        assert_eq!(
            standard.log_likelihood().unwrap(),
            ooc.log_likelihood().unwrap()
        );
    }

    #[test]
    fn memory_formula_matches_paper_example() {
        // Paper §3.1: s = 10,000 DNA sites under Γ4 -> each vector
        // 10,000 · 16 · 8 B = 1.28 MB (patterns may compress below s; the
        // formula is for the uncompressed width).
        let width = 10_000usize * 4 * 4;
        assert_eq!(width * 8, 1_280_000);
    }
}
