//! # phylo-ooc — Computing the Phylogenetic Likelihood Function Out-of-Core
//!
//! A from-scratch Rust reproduction of Izquierdo-Carrasco & Stamatakis
//! (2011): the phylogenetic likelihood function (PLF) executed with its
//! dominant data structure — the ancestral probability vectors — paged
//! explicitly between RAM and disk, instead of relying on OS paging.
//!
//! The workspace splits into substrate crates, re-exported here:
//!
//! * [`tree`] — unrooted binary trees, Newick, traversal planning, SPR/NNI,
//! * [`models`] — GTR-family substitution models, discrete Γ, eigen maths,
//! * [`seq`] — alignments, FASTA/PHYLIP, pattern compression, simulation,
//! * [`ooc`] — **the paper's contribution**: the out-of-core vector
//!   manager with Random/LRU/LFU/Topological replacement, pinning and
//!   read skipping,
//! * [`plf`] — the likelihood engine, generic over in-RAM / out-of-core /
//!   OS-paged vector residency,
//! * [`search`] — lazy-SPR hill climbing (the realistic access pattern),
//! * [`pager`] — the OS-paging baseline simulator.
//!
//! The [`setup`] module offers one-call constructors for the standard
//! experiment configurations used by the examples, integration tests and
//! the figure-regeneration benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use phylo_ooc::setup::{self, DatasetSpec};
//! use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
//!
//! // Simulate a small dataset; declare the engine instead of picking a
//! // constructor: residency, strategy, shards etc. are orthogonal axes.
//! let spec = DatasetSpec { n_taxa: 16, n_sites: 200, seed: 7, ..Default::default() };
//! let data = setup::simulate_dataset(&spec);
//! let mut standard = setup::inram_engine(&data);
//! let ooc_spec = EngineSpec {
//!     residency: Residency::OocMem { fraction: 0.25 },
//!     ..setup::base_spec(&data)
//! };
//! let mut ooc = setup::build_engine(&ooc_spec, &data, &BuildContext::new())
//!     .unwrap()
//!     .engine;
//!
//! // The paper's correctness criterion: identical likelihoods.
//! // (Likelihood methods return Result: store I/O can fail.)
//! assert_eq!(
//!     standard.log_likelihood().unwrap(),
//!     ooc.log_likelihood().unwrap(),
//! );
//! let stats = ooc.ooc_stats().expect("out-of-core engines expose stats");
//! assert!(stats.misses > 0, "with f = 0.25 there must be misses");
//! ```

pub use ooc_core as ooc;
pub use pager_sim as pager;
pub use phylo_models as models;
pub use phylo_plf as plf;
pub use phylo_search as search;
pub use phylo_seq as seq;
pub use phylo_tree as tree;

pub mod setup {
    //! Canonical experiment setups shared by examples, tests and benches.

    use ooc_core::StrategyKind;
    use phylo_models::{DiscreteGamma, ReversibleModel};
    use phylo_plf::{
        BuildContext, BuiltEngine, EngineSpec, InRamStore, PagedStore, PartSpec, PlfEngine,
        SharedTree, SpecError, TreeOracle,
    };
    use phylo_seq::{compress_patterns, simulate_alignment, CompressedAlignment, PartitionKind};
    use phylo_tree::build::{random_topology, yule_like_lengths};
    use phylo_tree::Tree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::path::Path;

    /// Parameters of a simulated dataset (the stand-in for the paper's
    /// real rbcL alignments and INDELible simulations).
    #[derive(Debug, Clone, PartialEq)]
    pub struct DatasetSpec {
        /// Number of taxa (tree tips).
        pub n_taxa: usize,
        /// Alignment length in sites.
        pub n_sites: usize,
        /// RNG seed for topology, branch lengths and sequences.
        pub seed: u64,
        /// Γ shape used for simulation and as the engine's starting α.
        pub alpha: f64,
        /// Γ categories (the paper always uses 4).
        pub n_cats: usize,
        /// Mean branch length of the random tree.
        pub mean_branch: f64,
    }

    impl Default for DatasetSpec {
        fn default() -> Self {
            DatasetSpec {
                n_taxa: 32,
                n_sites: 300,
                seed: 42,
                alpha: 0.8,
                n_cats: 4,
                mean_branch: 0.12,
            }
        }
    }

    /// A simulated dataset: the true tree and the pattern-compressed
    /// alignment, plus the model objects used to generate it.
    pub struct Dataset {
        /// Tree the sequences were simulated on.
        pub tree: Tree,
        /// Pattern-compressed alignment.
        pub comp: CompressedAlignment,
        /// Substitution model (HKY85 with fixed unequal frequencies).
        pub model: ReversibleModel,
        /// Spec it was built from.
        pub spec: DatasetSpec,
    }

    impl Dataset {
        /// Vector width in doubles for this dataset's engines.
        pub fn width(&self) -> usize {
            PlfEngine::<InRamStore>::dims_for(&self.comp, self.spec.n_cats).width()
        }

        /// Number of managed vectors (= inner nodes).
        pub fn n_items(&self) -> usize {
            self.tree.n_inner()
        }

        /// Bytes required to hold all ancestral vectors (the paper's
        /// memory-requirement formula `(n-2) · 8 · states · cats · s`).
        pub fn total_vector_bytes(&self) -> u64 {
            self.n_items() as u64 * self.width() as u64 * 8
        }
    }

    /// Simulate a dataset per `spec` (HKY85+Γ, the class of model used in
    /// the paper's experiments).
    pub fn simulate_dataset(spec: &DatasetSpec) -> Dataset {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut tree = random_topology(spec.n_taxa, 0.1, &mut rng);
        yule_like_lengths(&mut tree, spec.mean_branch, 1e-5, &mut rng);
        let model = ReversibleModel::hky85(2.5, &[0.3, 0.2, 0.2, 0.3]);
        let gamma = DiscreteGamma::new(spec.alpha, spec.n_cats);
        let aln = simulate_alignment(&tree, &model, &gamma, spec.n_sites, &mut rng);
        let comp = compress_patterns(&aln);
        Dataset {
            tree,
            comp,
            model,
            spec: spec.clone(),
        }
    }

    /// Standard (all vectors in RAM) engine on the dataset's true tree.
    pub fn inram_engine(data: &Dataset) -> PlfEngine<InRamStore> {
        let store = InRamStore::new(data.n_items(), data.width());
        PlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            store,
        )
    }

    /// Build the replacement strategy, wiring up a [`TreeOracle`] for the
    /// strategies that rank vectors by tree distance: Topological (its
    /// whole policy) and NextUse (its beyond-plan fallback). Returns the
    /// strategy and, when an oracle was wired, the shared tree handle to
    /// refresh after rearrangements.
    pub fn build_strategy(
        kind: StrategyKind,
        tree: &Tree,
    ) -> (Box<dyn ooc_core::ReplacementStrategy>, Option<SharedTree>) {
        match kind {
            StrategyKind::Topological | StrategyKind::NextUse => {
                let shared = SharedTree::new(tree);
                let oracle = TreeOracle::new(shared.clone());
                (kind.build(Some(Box::new(oracle))), Some(shared))
            }
            _ => (kind.build(None), None),
        }
    }

    /// The dataset as a single [`PartSpec`] slice for [`EngineSpec::build`]
    /// (empty name — the unpartitioned metrics scope).
    pub fn part_specs(data: &Dataset) -> Vec<PartSpec<'_>> {
        vec![PartSpec {
            name: String::new(),
            comp: &data.comp,
            model: &data.model,
        }]
    }

    /// An [`EngineSpec`] seeded with the dataset's α and Γ categories;
    /// override residency/strategy/shards via struct update syntax.
    pub fn base_spec(data: &Dataset) -> EngineSpec {
        EngineSpec {
            alpha: data.spec.alpha,
            n_cats: data.spec.n_cats,
            ..EngineSpec::default()
        }
    }

    /// Resolve a spec over a simulated dataset — the declarative
    /// replacement for the constructor matrix below.
    pub fn build_engine(
        spec: &EngineSpec,
        data: &Dataset,
        ctx: &BuildContext,
    ) -> Result<BuiltEngine, SpecError> {
        spec.build(&data.tree, &part_specs(data), ctx)
    }

    /// One block of a partitioned dataset: a named data partition with its
    /// own alphabet/model over the shared tree.
    pub struct PartitionPart {
        /// Partition name.
        pub name: String,
        /// Data type.
        pub kind: PartitionKind,
        /// Pattern-compressed alignment of this partition's columns.
        pub comp: CompressedAlignment,
        /// The partition's substitution model.
        pub model: ReversibleModel,
    }

    /// A partitioned dataset: several data blocks simulated on one tree.
    pub struct PartitionedDataset {
        /// The shared tree.
        pub tree: Tree,
        /// The partitions, in spec order.
        pub parts: Vec<PartitionPart>,
        /// Shared Γ shape.
        pub alpha: f64,
        /// Γ categories.
        pub n_cats: usize,
    }

    impl PartitionedDataset {
        /// Vector width in doubles of partition `i`'s engines.
        pub fn width(&self, i: usize) -> usize {
            PlfEngine::<InRamStore>::dims_for(&self.parts[i].comp, self.n_cats).width()
        }

        /// Total ancestral-vector bytes of partition `i` (its weight when
        /// splitting a joint `-L` byte budget via
        /// [`ooc_core::split_budget`]).
        pub fn partition_vector_bytes(&self, i: usize) -> u64 {
            self.tree.n_inner() as u64 * self.width(i) as u64 * 8
        }
    }

    /// The default model family for a partition kind: HKY85 for DNA (the
    /// paper's model class), a seeded synthetic reversible model for
    /// protein (20-state) and codon (61-state) partitions.
    pub fn default_partition_model(kind: PartitionKind, seed: u64) -> ReversibleModel {
        match kind {
            PartitionKind::Dna => ReversibleModel::hky85(2.5, &[0.3, 0.2, 0.2, 0.3]),
            PartitionKind::Protein => phylo_models::protein::synthetic_protein(seed),
            PartitionKind::Codon => phylo_models::codon::synthetic_codon(seed),
        }
    }

    /// Simulate a partitioned dataset: one random tree, then each
    /// partition's sites evolved independently on it under that
    /// partition's own model — the partitioned analogue of
    /// [`simulate_dataset`]. `parts` gives `(kind, n_sites)` per partition
    /// (codon partitions count codon sites, not nucleotides).
    pub fn simulate_partitioned_dataset(
        spec: &DatasetSpec,
        parts: &[(PartitionKind, usize)],
    ) -> PartitionedDataset {
        assert!(!parts.is_empty(), "need at least one partition");
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut tree = random_topology(spec.n_taxa, 0.1, &mut rng);
        yule_like_lengths(&mut tree, spec.mean_branch, 1e-5, &mut rng);
        let gamma = DiscreteGamma::new(spec.alpha, spec.n_cats);
        let parts = parts
            .iter()
            .enumerate()
            .map(|(i, &(kind, n_sites))| {
                let model = default_partition_model(kind, spec.seed ^ (i as u64 + 1));
                let aln = simulate_alignment(&tree, &model, &gamma, n_sites, &mut rng);
                PartitionPart {
                    name: format!("p{i}_{}", kind.keyword().to_ascii_lowercase()),
                    kind,
                    comp: compress_patterns(&aln),
                    model,
                }
            })
            .collect();
        PartitionedDataset {
            tree,
            parts,
            alpha: spec.alpha,
            n_cats: spec.n_cats,
        }
    }

    /// The partitioned dataset as [`PartSpec`]s for [`EngineSpec::build`].
    pub fn partitioned_part_specs(data: &PartitionedDataset) -> Vec<PartSpec<'_>> {
        data.parts
            .iter()
            .map(|p| PartSpec {
                name: p.name.clone(),
                comp: &p.comp,
                model: &p.model,
            })
            .collect()
    }

    /// An [`EngineSpec`] seeded with the partitioned dataset's α and Γ
    /// categories.
    pub fn base_partitioned_spec(data: &PartitionedDataset) -> EngineSpec {
        EngineSpec {
            alpha: data.alpha,
            n_cats: data.n_cats,
            ..EngineSpec::default()
        }
    }

    /// Resolve a spec over a partitioned dataset — the declarative
    /// replacement for the `partitioned_engine_*` constructors.
    pub fn build_partitioned_engine(
        spec: &EngineSpec,
        data: &PartitionedDataset,
        ctx: &BuildContext,
    ) -> Result<BuiltEngine, SpecError> {
        spec.build(&data.tree, &partitioned_part_specs(data), ctx)
    }

    /// Standard engine whose vectors live in a demand-paged arena with
    /// `phys_bytes` of physical memory (the Figure 5 paging baseline).
    /// Fails if the swap file cannot be created.
    pub fn paged_engine<P: AsRef<Path>>(
        data: &Dataset,
        swap_path: P,
        phys_bytes: usize,
    ) -> std::io::Result<PlfEngine<PagedStore>> {
        let arena =
            pager_sim::PagedArena::new(data.total_vector_bytes() as usize, phys_bytes, swap_path)?;
        let store = PagedStore::new(arena, data.n_items(), data.width());
        Ok(PlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            store,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::setup::{self, DatasetSpec};
    use ooc_core::StrategyKind;
    use phylo_plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};

    #[test]
    fn facade_quickstart_works() {
        let spec = DatasetSpec {
            n_taxa: 10,
            n_sites: 80,
            seed: 3,
            ..Default::default()
        };
        let data = setup::simulate_dataset(&spec);
        let mut standard = setup::inram_engine(&data);
        let ooc_spec = EngineSpec {
            residency: Residency::OocMem { fraction: 0.5 },
            strategy: StrategyKind::Random { seed: 1 },
            ..setup::base_spec(&data)
        };
        let mut ooc = setup::build_engine(&ooc_spec, &data, &BuildContext::new())
            .unwrap()
            .engine;
        assert_eq!(
            standard.log_likelihood().unwrap(),
            ooc.log_likelihood().unwrap()
        );
    }

    #[test]
    fn memory_formula_matches_paper_example() {
        // Paper §3.1: s = 10,000 DNA sites under Γ4 -> each vector
        // 10,000 · 16 · 8 B = 1.28 MB (patterns may compress below s; the
        // formula is for the uncompressed width).
        let width = 10_000usize * 4 * 4;
        assert_eq!(width * 8, 1_280_000);
    }
}
