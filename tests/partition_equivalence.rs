//! Partition-equivalence suite: a partitioned analysis (several data
//! blocks with their own models and alphabets sharing one tree) must
//! produce per-partition log-likelihoods bit-identical to running each
//! partition as an independent serial in-RAM analysis — for every
//! residency backend, including the pipelined sharded path. Partition
//! engines never exchange data; only scalar (lnL, d1, d2) reductions are
//! shared, so this is exact equality, not a tolerance.

mod common;

use phylo_ooc::ooc::StrategyKind;
use phylo_ooc::plf::{InRamStore, LikelihoodEngine, PartitionedPlfEngine, PlfEngine};
use phylo_ooc::seq::PartitionKind;
use phylo_ooc::setup::{self, DatasetSpec, PartitionedDataset};

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_taxa: 14,
        n_sites: 0, // per-partition sizes below
        seed: 2607,
        ..Default::default()
    }
}

/// Mixed DNA + protein + codon blocks on one shared tree. Codon sites are
/// codon counts (61-state columns), exercising the widest vectors.
fn mixed_data() -> PartitionedDataset {
    setup::simulate_partitioned_dataset(
        &spec(),
        &[
            (PartitionKind::Dna, 150),
            (PartitionKind::Protein, 60),
            (PartitionKind::Codon, 20),
        ],
    )
}

/// Typed all-in-RAM partitioned engine, built directly so the tests can
/// reach member trees (`part(i)`) — access the spec layer erases.
fn inram_partitioned(data: &PartitionedDataset) -> PartitionedPlfEngine<PlfEngine<InRamStore>> {
    let parts = data
        .parts
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let store = InRamStore::new(data.tree.n_inner(), data.width(i));
            PlfEngine::new(
                data.tree.clone(),
                &p.comp,
                p.model.clone(),
                data.alpha,
                data.n_cats,
                store,
            )
        })
        .collect();
    let names = data.parts.iter().map(|p| p.name.clone()).collect();
    PartitionedPlfEngine::new(parts, names)
}

/// Each partition as its own standalone serial in-RAM analysis — the
/// reference every partitioned backend must reproduce exactly.
fn independent_serial_lnls(data: &PartitionedDataset) -> Vec<f64> {
    data.parts
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let store = InRamStore::new(data.tree.n_inner(), data.width(i));
            let mut e = PlfEngine::new(
                data.tree.clone(),
                &p.comp,
                p.model.clone(),
                data.alpha,
                data.n_cats,
                store,
            );
            e.log_likelihood().expect("in-RAM run cannot fail")
        })
        .collect()
}

fn assert_bitwise(got: &[f64], want: &[f64], backend: &str) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{backend}: partition {i} log-likelihood {g} differs from the \
             independent serial run's {w}"
        );
    }
}

#[test]
fn partitioned_lnls_bit_identical_across_residency_backends() {
    let data = mixed_data();
    let reference = independent_serial_lnls(&data);
    let dir = tempfile::tempdir().expect("tempdir");

    let mut inram = inram_partitioned(&data);
    inram.log_likelihood().expect("in-RAM traversal");
    assert_bitwise(&inram.partition_lnls().unwrap(), &reference, "inram");

    let mut ooc_mem = common::partitioned_ooc_mem(&data, 0.3, StrategyKind::Lru);
    ooc_mem.log_likelihood().expect("OOC-mem traversal");
    assert_bitwise(&ooc_mem.partition_lnls().unwrap(), &reference, "ooc-mem");

    // Paper's -L flag: one byte budget split across partitions
    // proportionally to their vector footprints, one file each.
    let total: u64 = (0..data.parts.len())
        .map(|i| data.partition_vector_bytes(i))
        .sum();
    let mut file = common::partitioned_file_limit(
        &data,
        &dir.path().join("vectors.bin"),
        total / 3,
        StrategyKind::NextUse,
    );
    file.log_likelihood().expect("OOC-file traversal");
    assert_bitwise(&file.partition_lnls().unwrap(), &reference, "ooc-file");

    // The full PR-6 residency stack per partition: sharded members over
    // plan-driven double-buffered prefetching file stores.
    let mut piped = common::partitioned_sharded_pipelined(
        &data,
        &dir.path().join("piped.bin"),
        0.3,
        StrategyKind::Lru,
        3,
        2,
        8,
    );
    piped.log_likelihood().expect("pipelined traversal");
    assert_bitwise(
        &piped.partition_lnls().unwrap(),
        &reference,
        "sharded-pipelined",
    );

    // Joint likelihood is the per-partition sum, in partition order, for
    // every backend.
    let joint = inram.log_likelihood().unwrap();
    assert_eq!(joint.to_bits(), file.log_likelihood().unwrap().to_bits());
    assert_eq!(joint.to_bits(), piped.log_likelihood().unwrap().to_bits());
}

#[test]
fn joint_optimisation_stays_in_lockstep_across_backends() {
    let data = mixed_data();
    let dir = tempfile::tempdir().expect("tempdir");

    let mut inram = inram_partitioned(&data);
    let mut file = common::partitioned_file_limit(
        &data,
        &dir.path().join("opt.bin"),
        u64::MAX / 2, // generous budget; residency must not matter anyway
        StrategyKind::Lru,
    );

    let lnl0 = inram.log_likelihood().unwrap();
    let s_inram = inram.smooth_branches(2, 8).expect("smoothing");
    let s_file = file.smooth_branches(2, 8).expect("smoothing");
    assert_eq!(
        s_inram.to_bits(),
        s_file.to_bits(),
        "joint branch smoothing must be residency-independent"
    );
    assert!(
        s_inram > lnl0,
        "smoothing must improve the joint likelihood"
    );

    let (a_inram, l_inram) = inram.optimize_alpha(1e-3, 40).expect("alpha");
    let (a_file, l_file) = file.optimize_alpha(1e-3, 40).expect("alpha");
    assert_eq!(a_inram.to_bits(), a_file.to_bits());
    assert_eq!(l_inram.to_bits(), l_file.to_bits());
    assert!(l_inram >= s_inram, "shared-alpha fit must not regress");

    // All members hold the same (shared) branch lengths afterwards.
    for h in 0..inram.part(0).tree().n_half_edges() as u32 {
        let len = inram.part(0).tree().branch_length(h);
        for i in 1..inram.n_partitions() {
            assert_eq!(
                len.to_bits(),
                inram.part(i).tree().branch_length(h).to_bits()
            );
        }
    }
}
