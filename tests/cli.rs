//! End-to-end tests of the `phylo-ooc` command-line interface.

use std::path::Path;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_phylo-ooc"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = cli().args(args).output().expect("spawn CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn simulate_into(dir: &Path) -> (String, String) {
    let aln = dir.join("d.phy").to_string_lossy().into_owned();
    let tree = dir.join("t.nwk").to_string_lossy().into_owned();
    let (ok, _, err) = run(&[
        "simulate",
        "--taxa",
        "16",
        "--sites",
        "200",
        "--seed",
        "5",
        "--out",
        &aln,
        "--tree-out",
        &tree,
    ]);
    assert!(ok, "simulate failed: {err}");
    (aln, tree)
}

#[test]
fn help_and_bad_command() {
    let (ok, out, _) = run(&["help"]);
    assert!(ok);
    assert!(out.contains("USAGE"));
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn simulate_then_likelihood_in_ram_and_ooc_agree() {
    let dir = tempfile::tempdir().unwrap();
    let (aln, tree) = simulate_into(dir.path());

    let (ok, out_ram, err) = run(&["likelihood", "--alignment", &aln, "--tree", &tree]);
    assert!(ok, "{err}");
    let (ok, out_ooc, err) = run(&[
        "likelihood",
        "--alignment",
        &aln,
        "--tree",
        &tree,
        "--memory",
        "25%",
        "--strategy",
        "rand",
        "--stats",
    ]);
    assert!(ok, "{err}");
    let lnl = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("log-likelihood:"))
            .unwrap()
            .to_owned()
    };
    assert_eq!(lnl(&out_ram), lnl(&out_ooc), "in-RAM vs out-of-core CLI");
}

#[test]
fn search_writes_a_parseable_tree() {
    let dir = tempfile::tempdir().unwrap();
    let (aln, _) = simulate_into(dir.path());
    let best = dir.path().join("best.nwk");
    let (ok, out, err) = run(&[
        "search",
        "--alignment",
        &aln,
        "--memory",
        "50%",
        "--rounds",
        "1",
        "--radius",
        "3",
        "--seed",
        "3",
        "--alpha",
        "0.8",
        "--out",
        best.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("search: lnl"));
    let text = std::fs::read_to_string(&best).unwrap();
    let (tree, names) = phylo_ooc::tree::parse_newick(&text).expect("valid newick");
    assert_eq!(tree.n_tips(), 16);
    assert_eq!(names.len(), 16);
}

#[test]
fn memory_suffixes_accepted() {
    let dir = tempfile::tempdir().unwrap();
    let (aln, tree) = simulate_into(dir.path());
    for memory in ["1M", "300K", "100000"] {
        let (ok, out, err) = run(&[
            "likelihood",
            "--alignment",
            &aln,
            "--tree",
            &tree,
            "--memory",
            memory,
        ]);
        assert!(ok, "--memory {memory}: {err}");
        assert!(out.contains("log-likelihood:"));
    }
}

#[test]
fn unwritable_vector_file_fails_with_context() {
    let dir = tempfile::tempdir().unwrap();
    let (aln, tree) = simulate_into(dir.path());
    let bad = dir.path().join("no_such_dir").join("v.bin");
    let (ok, _, err) = run(&[
        "likelihood",
        "--alignment",
        &aln,
        "--tree",
        &tree,
        "--memory",
        "25%",
        "--vector-file",
        bad.to_str().unwrap(),
    ]);
    assert!(!ok, "creating the store in a missing directory must fail");
    assert!(
        err.contains("cannot create vector file"),
        "stderr must say what failed: {err}"
    );
    assert!(
        err.contains("no_such_dir"),
        "stderr must name the offending path: {err}"
    );
}

#[test]
fn missing_inputs_fail_gracefully() {
    let (ok, _, err) = run(&["likelihood"]);
    assert!(!ok);
    assert!(err.contains("missing --alignment"));
    let (ok, _, err) = run(&[
        "likelihood",
        "--alignment",
        "/nonexistent.phy",
        "--tree",
        "/x",
    ]);
    assert!(!ok);
    assert!(err.contains("error"));
}
