//! Compression-equivalence suite for the scale-aware APV codec behind
//! the store layer. `compression = "exp"` is a lossless re-encoding
//! (shared-exponent blocks + full 52-bit mantissas), so every managed
//! residency — serial or sharded, in-memory, file or file-limit backing,
//! pipelined or not — must stay bit-identical to the uncompressed run
//! for every replacement strategy. `compression = "exp-f32"` rounds
//! mantissas to 23 bits; its log-likelihood error must stay within the
//! documented `exp_f32_lnl_error_bound`.

mod common;

use phylo_ooc::ooc::{exp_f32_lnl_error_bound, CompressionMode, StrategyKind};
use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
use phylo_ooc::setup::{self, DatasetSpec};

const STRATEGIES: [StrategyKind; 5] = [
    StrategyKind::Random { seed: 3 },
    StrategyKind::Lru,
    StrategyKind::Lfu,
    StrategyKind::Topological,
    StrategyKind::NextUse,
];

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_taxa: 20,
        n_sites: 170, // odd: uneven shard widths when sharded
        seed: 20260809,
        ..Default::default()
    }
}

fn lnl(spec: &EngineSpec, data: &setup::Dataset, ctx: &BuildContext) -> f64 {
    setup::build_engine(spec, data, ctx)
        .unwrap()
        .engine
        .full_traversals(2)
        .unwrap()
}

#[test]
fn exp_compression_bit_identical_across_strategies() {
    let data = setup::simulate_dataset(&spec());
    let dir = tempfile::tempdir().unwrap();
    let reference = setup::inram_engine(&data).full_traversals(2).unwrap();

    for kind in STRATEGIES {
        let raw = EngineSpec {
            residency: Residency::File { fraction: 0.3 },
            strategy: kind,
            ..setup::base_spec(&data)
        };
        let exp = EngineSpec {
            compression: Some(CompressionMode::Exp),
            ..raw.clone()
        };
        let ctx_raw =
            BuildContext::new().vector_path(dir.path().join(format!("{}-raw.bin", kind.label())));
        let ctx_exp =
            BuildContext::new().vector_path(dir.path().join(format!("{}-exp.bin", kind.label())));
        let a = lnl(&raw, &data, &ctx_raw);
        let b = lnl(&exp, &data, &ctx_exp);
        assert_eq!(a.to_bits(), reference.to_bits(), "raw {}", kind.label());
        assert_eq!(
            b.to_bits(),
            reference.to_bits(),
            "exp must be bit-identical to raw (strategy {})",
            kind.label()
        );
    }
}

#[test]
fn exp_compression_bit_identical_across_residencies() {
    let data = setup::simulate_dataset(&spec());
    let dir = tempfile::tempdir().unwrap();
    let reference = setup::inram_engine(&data).full_traversals(2).unwrap();
    let base = setup::base_spec(&data);

    let cells: Vec<(&str, EngineSpec, Option<&str>)> = vec![
        (
            "ooc-mem",
            EngineSpec {
                residency: Residency::OocMem { fraction: 0.4 },
                compression: Some(CompressionMode::Exp),
                ..base.clone()
            },
            None,
        ),
        (
            "file-limit",
            EngineSpec {
                residency: Residency::FileLimit {
                    limit_bytes: data.total_vector_bytes() / 3,
                },
                compression: Some(CompressionMode::Exp),
                ..base.clone()
            },
            Some("limit.bin"),
        ),
        (
            "sharded",
            EngineSpec {
                residency: Residency::File { fraction: 0.3 },
                shards: 3,
                compression: Some(CompressionMode::Exp),
                ..base.clone()
            },
            Some("sharded.bin"),
        ),
        (
            "sharded-pipelined",
            EngineSpec {
                residency: Residency::File { fraction: 0.3 },
                shards: 2,
                io_threads: 2,
                window: 8,
                compression: Some(CompressionMode::Exp),
                ..base.clone()
            },
            Some("piped.bin"),
        ),
        (
            "serial-pipelined",
            EngineSpec {
                residency: Residency::File { fraction: 0.3 },
                io_threads: 1,
                window: 8,
                compression: Some(CompressionMode::Exp),
                ..base.clone()
            },
            Some("serial-piped.bin"),
        ),
    ];

    for (label, cell, path) in cells {
        let ctx = match path {
            Some(p) => BuildContext::new().vector_path(dir.path().join(p)),
            None => BuildContext::new(),
        };
        let got = lnl(&cell, &data, &ctx);
        assert_eq!(
            got.to_bits(),
            reference.to_bits(),
            "{label}: exp-compressed lnl diverged"
        );
    }
}

#[test]
fn exp_f32_stays_within_documented_lnl_bound() {
    let data = setup::simulate_dataset(&spec());
    let reference = setup::inram_engine(&data).full_traversals(2).unwrap();
    let lossy = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        compression: Some(CompressionMode::ExpF32),
        ..setup::base_spec(&data)
    };
    let got = lnl(&lossy, &data, &BuildContext::new());
    let bound = exp_f32_lnl_error_bound(data.spec.n_sites as u64, data.tree.n_inner() as u64);
    let delta = (got - reference).abs();
    assert!(
        delta <= bound,
        "exp-f32 |Δlnl| = {delta:e} exceeds the documented bound {bound:e}"
    );
    assert!(got.is_finite() && got < 0.0);
}

#[test]
fn compressed_search_matches_uncompressed_topology() {
    use phylo_ooc::search::{hill_climb, SearchConfig};
    use phylo_ooc::tree::write_newick;
    let data = setup::simulate_dataset(&DatasetSpec {
        n_taxa: 14,
        n_sites: 120,
        seed: 99,
        ..Default::default()
    });
    let cfg = SearchConfig {
        spr_radius: 3,
        max_rounds: 1,
        optimize_model: false,
        seed: 11,
        ..Default::default()
    };
    let mut plain = common::ooc_mem(&data, 0.3, StrategyKind::Lru);
    let plain_stats = hill_climb(&mut plain, &cfg).unwrap();

    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        compression: Some(CompressionMode::Exp),
        ..setup::base_spec(&data)
    };
    let mut packed = setup::build_engine(&spec, &data, &BuildContext::new())
        .unwrap()
        .engine;
    let packed_stats = hill_climb(&mut packed, &cfg).unwrap();

    assert_eq!(
        plain_stats.final_lnl.to_bits(),
        packed_stats.final_lnl.to_bits()
    );
    assert_eq!(plain_stats.spr_applied, packed_stats.spr_applied);
    let names = data.comp.alignment.names().to_vec();
    assert_eq!(
        write_newick(plain.tree(), &names),
        write_newick(packed.tree(), &names),
        "compression must not alter the search trajectory"
    );
}
