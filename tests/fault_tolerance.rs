//! Fault tolerance across the whole residency stack: injected store
//! failures must surface as contextual [`OocError`]s from the engine's
//! likelihood entry points (never panics), and a retry layer must absorb
//! transient faults without changing the computed likelihood by a single
//! bit.

use phylo_ooc::ooc::{
    FaultInjectingStore, FaultKind, FaultOp, FaultPlan, FaultRule, MemStore, OocConfig, OocOp,
    RetryPolicy, RetryingStore, StrategyKind, VectorManager,
};
use phylo_ooc::plf::{OocStore, PlfEngine};
use phylo_ooc::setup::{self, DatasetSpec};

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_taxa: 24,
        n_sites: 150,
        seed: 404,
        ..Default::default()
    }
}

fn engine_over<S: phylo_ooc::ooc::BackingStore>(
    data: &setup::Dataset,
    store: S,
) -> PlfEngine<OocStore<S>> {
    // A quarter of the vectors in RAM: evictions (store writes) and
    // reloads (store reads) both happen during a single traversal.
    let cfg = OocConfig::builder(data.n_items(), data.width())
        .fraction(0.25)
        .build()
        .expect("valid out-of-core config");
    let manager = VectorManager::new(cfg, StrategyKind::Lru.build(None), store);
    PlfEngine::new(
        data.tree.clone(),
        &data.comp,
        data.model.clone(),
        data.spec.alpha,
        data.spec.n_cats,
        OocStore::new(manager),
    )
}

#[test]
fn permanent_write_fault_surfaces_contextual_error() {
    let data = setup::simulate_dataset(&spec());
    // Every eviction write-back fails permanently.
    let plan = FaultPlan::none().with(FaultRule::From {
        op: FaultOp::Write,
        start: 0,
        kind: FaultKind::Permanent,
    });
    let store = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), plan);
    let mut engine = engine_over(&data, store);

    let err = engine
        .log_likelihood()
        .expect_err("all write-backs fail: the likelihood run must error");
    assert_eq!(err.op, OocOp::Write);
    assert!(err.item.is_some(), "eviction errors must name the item");
    assert!(!err.is_transient());
    let msg = err.to_string();
    assert!(msg.contains("write failed"), "{msg}");
    assert!(msg.contains("for item"), "{msg}");
    assert!(msg.contains("eviction write-back"), "{msg}");
    // The manager counted the failure.
    assert!(engine.store().manager().stats().io_errors > 0);
}

#[test]
fn permanent_read_fault_surfaces_contextual_error() {
    let data = setup::simulate_dataset(&spec());
    // Let the first traversal's writes through, then fail every read.
    let plan = FaultPlan::none().with(FaultRule::From {
        op: FaultOp::Read,
        start: 0,
        kind: FaultKind::Permanent,
    });
    let store = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), plan);
    let mut engine = engine_over(&data, store);

    let err = engine
        .log_likelihood()
        .expect_err("reloads fail: the likelihood run must error");
    assert_eq!(err.op, OocOp::Read);
    assert!(err.item.is_some());
    assert!(err.to_string().contains("slot load"), "{}", err);
}

#[test]
fn retrying_store_recovers_transient_faults_bit_exactly() {
    let data = setup::simulate_dataset(&spec());
    let reference = setup::inram_engine(&data)
        .log_likelihood()
        .expect("in-RAM reference cannot fail");

    // Transient fault windows on both op classes. A retry re-issues the
    // operation under the next fault index, so a window of three costs at
    // most three retries before escaping it.
    let plan = FaultPlan::transient_reads(2, 3).with(FaultRule::Window {
        op: FaultOp::Write,
        start: 1,
        count: 2,
        kind: FaultKind::Transient,
    });
    let faulty = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), plan);
    let store = RetryingStore::new(faulty, RetryPolicy::immediate(4));
    let mut engine = engine_over(&data, store);

    let lnl = engine
        .log_likelihood()
        .expect("transient faults must be absorbed by the retry layer");
    assert_eq!(
        lnl.to_bits(),
        reference.to_bits(),
        "recovery must not perturb the likelihood: {lnl} vs {reference}"
    );

    let retry = engine.store().manager().store().retry_stats();
    assert!(
        retry.retries > 0,
        "the schedule must have triggered retries"
    );
    assert!(retry.recoveries > 0, "faults must have been recovered");
    assert_eq!(retry.exhausted, 0);
    assert_eq!(retry.permanent_failures, 0);
    let faults = engine.store().manager().store().inner().fault_stats();
    assert!(
        faults.total_faults() > 0,
        "the plan must actually have fired"
    );
    // And no error ever leaked into the manager's counters.
    assert_eq!(engine.store().manager().stats().io_errors, 0);
}

#[test]
fn retrying_store_gives_up_on_permanent_faults() {
    let data = setup::simulate_dataset(&spec());
    let plan = FaultPlan::none().with(FaultRule::From {
        op: FaultOp::Write,
        start: 0,
        kind: FaultKind::Permanent,
    });
    let faulty = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), plan);
    let store = RetryingStore::new(faulty, RetryPolicy::immediate(4));
    let mut engine = engine_over(&data, store);

    let err = engine
        .log_likelihood()
        .expect_err("permanent faults must not be retried into success");
    assert_eq!(err.op, OocOp::Write);
    let retry = engine.store().manager().store().retry_stats();
    assert_eq!(retry.retries, 0, "permanent errors are not worth retrying");
    assert!(retry.permanent_failures > 0);
}
