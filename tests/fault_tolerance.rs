//! Fault tolerance across the whole residency stack: injected store
//! failures must surface as contextual [`OocError`]s from the engine's
//! likelihood entry points (never panics), and a retry layer must absorb
//! transient faults without changing the computed likelihood by a single
//! bit.

use phylo_ooc::ooc::{
    FaultInjectingStore, FaultKind, FaultOp, FaultPlan, FaultRule, MemStore, OocConfig, OocOp,
    RetryPolicy, RetryingStore, StrategyKind, VectorManager,
};
use phylo_ooc::plf::{OocStore, PlfEngine};
use phylo_ooc::setup::{self, DatasetSpec};

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_taxa: 24,
        n_sites: 150,
        seed: 404,
        ..Default::default()
    }
}

fn engine_over<S: phylo_ooc::ooc::BackingStore>(
    data: &setup::Dataset,
    store: S,
) -> PlfEngine<OocStore<S>> {
    // A quarter of the vectors in RAM: evictions (store writes) and
    // reloads (store reads) both happen during a single traversal.
    let cfg = OocConfig::builder(data.n_items(), data.width())
        .fraction(0.25)
        .build()
        .expect("valid out-of-core config");
    let manager = VectorManager::new(cfg, StrategyKind::Lru.build(None), store);
    PlfEngine::new(
        data.tree.clone(),
        &data.comp,
        data.model.clone(),
        data.spec.alpha,
        data.spec.n_cats,
        OocStore::new(manager),
    )
}

#[test]
fn permanent_write_fault_surfaces_contextual_error() {
    let data = setup::simulate_dataset(&spec());
    // Every eviction write-back fails permanently.
    let plan = FaultPlan::none().with(FaultRule::From {
        op: FaultOp::Write,
        start: 0,
        kind: FaultKind::Permanent,
    });
    let store = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), plan);
    let mut engine = engine_over(&data, store);

    let err = engine
        .log_likelihood()
        .expect_err("all write-backs fail: the likelihood run must error");
    assert_eq!(err.op, OocOp::Write);
    assert!(err.item.is_some(), "eviction errors must name the item");
    assert!(!err.is_transient());
    let msg = err.to_string();
    assert!(msg.contains("write failed"), "{msg}");
    assert!(msg.contains("for item"), "{msg}");
    assert!(msg.contains("eviction write-back"), "{msg}");
    // The manager counted the failure.
    assert!(engine.store().manager().stats().io_errors > 0);
}

#[test]
fn permanent_read_fault_surfaces_contextual_error() {
    let data = setup::simulate_dataset(&spec());
    // Let the first traversal's writes through, then fail every read.
    let plan = FaultPlan::none().with(FaultRule::From {
        op: FaultOp::Read,
        start: 0,
        kind: FaultKind::Permanent,
    });
    let store = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), plan);
    let mut engine = engine_over(&data, store);

    let err = engine
        .log_likelihood()
        .expect_err("reloads fail: the likelihood run must error");
    assert_eq!(err.op, OocOp::Read);
    assert!(err.item.is_some());
    assert!(err.to_string().contains("slot load"), "{}", err);
}

#[test]
fn retrying_store_recovers_transient_faults_bit_exactly() {
    let data = setup::simulate_dataset(&spec());
    let reference = setup::inram_engine(&data)
        .log_likelihood()
        .expect("in-RAM reference cannot fail");

    // Transient fault windows on both op classes. A retry re-issues the
    // operation under the next fault index, so a window of three costs at
    // most three retries before escaping it.
    let plan = FaultPlan::transient_reads(2, 3).with(FaultRule::Window {
        op: FaultOp::Write,
        start: 1,
        count: 2,
        kind: FaultKind::Transient,
    });
    let faulty = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), plan);
    let store = RetryingStore::new(faulty, RetryPolicy::immediate(4));
    let mut engine = engine_over(&data, store);

    let lnl = engine
        .log_likelihood()
        .expect("transient faults must be absorbed by the retry layer");
    assert_eq!(
        lnl.to_bits(),
        reference.to_bits(),
        "recovery must not perturb the likelihood: {lnl} vs {reference}"
    );

    let retry = engine.store().manager().store().retry_stats();
    assert!(
        retry.retries > 0,
        "the schedule must have triggered retries"
    );
    assert!(retry.recoveries > 0, "faults must have been recovered");
    assert_eq!(retry.exhausted, 0);
    assert_eq!(retry.permanent_failures, 0);
    let faults = engine.store().manager().store().inner().fault_stats();
    assert!(
        faults.total_faults() > 0,
        "the plan must actually have fired"
    );
    // And no error ever leaked into the manager's counters.
    assert_eq!(engine.store().manager().stats().io_errors, 0);
}

/// A transfer that succeeds only after retries must count ONCE in the
/// manager's `OocStats`: the same workload run fault-free and run through
/// a transient fault plan + retry layer must report identical residency
/// counters, with the extra attempts visible only in the fault injector's
/// own attempt counts and the retry layer's `retried_ops`.
#[test]
fn retried_operations_do_not_double_count_in_ooc_stats() {
    let data = setup::simulate_dataset(&spec());

    // Fault-free baseline over the identical store stack shape.
    let clean = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), {
        FaultPlan::none()
    });
    let clean = RetryingStore::new(clean, RetryPolicy::immediate(4));
    let mut baseline = engine_over(&data, clean);
    let lnl_ref = baseline.log_likelihood().expect("baseline cannot fault");
    let stats_ref = *baseline.store().manager().stats();

    // Same workload with transient fault windows on reads and writes.
    let plan = FaultPlan::transient_reads(2, 3).with(FaultRule::Window {
        op: FaultOp::Write,
        start: 1,
        count: 2,
        kind: FaultKind::Transient,
    });
    let faulty = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), plan);
    let store = RetryingStore::new(faulty, RetryPolicy::immediate(4));
    let mut engine = engine_over(&data, store);
    let lnl = engine.log_likelihood().expect("transient faults absorbed");
    assert_eq!(lnl.to_bits(), lnl_ref.to_bits());

    let stats = *engine.store().manager().stats();
    assert_eq!(
        stats, stats_ref,
        "an op that succeeded after retries must still be ONE disk_read / \
         disk_write — retries may not leak into the residency counters"
    );

    let retry = engine.store().manager().store().retry_stats();
    assert!(retry.retried_ops > 0, "schedule must have retried some ops");
    assert!(
        retry.retries >= retry.retried_ops,
        "each retried op costs at least one retry attempt"
    );

    // The extra attempts are visible below the retry layer: the injector
    // saw more read+write attempts than the manager counted successes.
    let faults = engine.store().manager().store().inner().fault_stats();
    assert!(faults.total_faults() > 0, "the plan must actually fire");
    assert!(
        faults.reads + faults.writes > stats.disk_reads + stats.disk_writes,
        "attempts below the retry layer ({} + {}) must exceed counted \
         transfers ({} + {})",
        faults.reads,
        faults.writes,
        stats.disk_reads,
        stats.disk_writes
    );
}

#[test]
fn retrying_store_gives_up_on_permanent_faults() {
    let data = setup::simulate_dataset(&spec());
    let plan = FaultPlan::none().with(FaultRule::From {
        op: FaultOp::Write,
        start: 0,
        kind: FaultKind::Permanent,
    });
    let faulty = FaultInjectingStore::new(MemStore::new(data.n_items(), data.width()), plan);
    let store = RetryingStore::new(faulty, RetryPolicy::immediate(4));
    let mut engine = engine_over(&data, store);

    let err = engine
        .log_likelihood()
        .expect_err("permanent faults must not be retried into success");
    assert_eq!(err.op, OocOp::Write);
    let retry = engine.store().manager().store().retry_stats();
    assert_eq!(retry.retries, 0, "permanent errors are not worth retrying");
    assert!(retry.permanent_failures > 0);
}
