//! Shared spec-built engine constructors for the integration tests: thin
//! wrappers over [`EngineSpec`] + [`setup::build_engine`] for the
//! configurations the suites exercise repeatedly. Each test binary
//! compiles its own copy, so not every helper is used everywhere.
#![allow(dead_code)]

use phylo_ooc::ooc::StrategyKind;
use phylo_ooc::plf::{BuildContext, DynEngine, EngineSpec, Residency, SharedTree};
use phylo_ooc::setup::{self, Dataset, PartitionedDataset};
use std::path::Path;

/// Out-of-core engine over an in-memory backing store holding fraction
/// `f` of vectors in slots.
pub fn ooc_mem(data: &Dataset, f: f64, kind: StrategyKind) -> Box<dyn DynEngine> {
    ooc_mem_with_handle(data, f, kind).0
}

/// As [`ooc_mem`] but also returning the topology-aware strategy's
/// shared-tree handle (None for history-based strategies).
pub fn ooc_mem_with_handle(
    data: &Dataset,
    f: f64,
    kind: StrategyKind,
) -> (Box<dyn DynEngine>, Option<SharedTree>) {
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: f },
        strategy: kind,
        ..setup::base_spec(data)
    };
    let built = setup::build_engine(&spec, data, &BuildContext::new()).expect("spec build");
    (built.engine, built.handles.into_iter().next())
}

/// Out-of-core engine over a real backing file under the paper's `-L`
/// byte budget.
pub fn ooc_file(
    data: &Dataset,
    path: &Path,
    limit_bytes: u64,
    kind: StrategyKind,
) -> Box<dyn DynEngine> {
    let spec = EngineSpec {
        residency: Residency::FileLimit { limit_bytes },
        strategy: kind,
        ..setup::base_spec(data)
    };
    let ctx = BuildContext::new().vector_path(path);
    setup::build_engine(&spec, data, &ctx)
        .expect("spec build")
        .engine
}

/// Partitioned engine with every member out-of-core over an in-memory
/// backing store.
pub fn partitioned_ooc_mem(
    data: &PartitionedDataset,
    f: f64,
    kind: StrategyKind,
) -> Box<dyn DynEngine> {
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: f },
        strategy: kind,
        ..setup::base_partitioned_spec(data)
    };
    setup::build_partitioned_engine(&spec, data, &BuildContext::new())
        .expect("spec build")
        .engine
}

/// Partitioned engine whose members share one `-L` byte budget split
/// proportionally to their vector footprints, one backing file each.
pub fn partitioned_file_limit(
    data: &PartitionedDataset,
    path: &Path,
    limit_bytes: u64,
    kind: StrategyKind,
) -> Box<dyn DynEngine> {
    let spec = EngineSpec {
        residency: Residency::FileLimit { limit_bytes },
        strategy: kind,
        ..setup::base_partitioned_spec(data)
    };
    let ctx = BuildContext::new().vector_path(path);
    setup::build_partitioned_engine(&spec, data, &ctx)
        .expect("spec build")
        .engine
}

/// Partitioned engine with sharded members over pipelined file regions —
/// the full residency stack per partition.
#[allow(clippy::too_many_arguments)]
pub fn partitioned_sharded_pipelined(
    data: &PartitionedDataset,
    path: &Path,
    f: f64,
    kind: StrategyKind,
    shards: usize,
    io_threads: usize,
    window: usize,
) -> Box<dyn DynEngine> {
    let spec = EngineSpec {
        residency: Residency::File { fraction: f },
        strategy: kind,
        shards,
        io_threads,
        window,
        ..setup::base_partitioned_spec(data)
    };
    let ctx = BuildContext::new().vector_path(path);
    setup::build_partitioned_engine(&spec, data, &ctx)
        .expect("spec build")
        .engine
}

/// Sharded out-of-core engine with per-shard in-memory backing stores.
pub fn sharded_mem(
    data: &Dataset,
    f: f64,
    kind: StrategyKind,
    shards: usize,
) -> Box<dyn DynEngine> {
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: f },
        strategy: kind,
        shards,
        ..setup::base_spec(data)
    };
    setup::build_engine(&spec, data, &BuildContext::new())
        .expect("spec build")
        .engine
}

/// Sharded out-of-core engine over one backing file split into per-shard
/// regions, optionally pipelined by `io_threads` workers per shard.
pub fn sharded_file(
    data: &Dataset,
    path: &Path,
    f: f64,
    kind: StrategyKind,
    shards: usize,
    io_threads: usize,
) -> Box<dyn DynEngine> {
    let spec = EngineSpec {
        residency: Residency::File { fraction: f },
        strategy: kind,
        shards,
        io_threads,
        ..setup::base_spec(data)
    };
    let ctx = BuildContext::new().vector_path(path);
    setup::build_engine(&spec, data, &ctx)
        .expect("spec build")
        .engine
}

/// As [`sharded_file`] but with an explicit lookahead window for the
/// prefetch pipeline.
#[allow(clippy::too_many_arguments)]
pub fn sharded_file_windowed(
    data: &Dataset,
    path: &Path,
    f: f64,
    kind: StrategyKind,
    shards: usize,
    io_threads: usize,
    window: usize,
) -> Box<dyn DynEngine> {
    let spec = EngineSpec {
        residency: Residency::File { fraction: f },
        strategy: kind,
        shards,
        io_threads,
        window,
        ..setup::base_spec(data)
    };
    let ctx = BuildContext::new().vector_path(path);
    setup::build_engine(&spec, data, &ctx)
        .expect("spec build")
        .engine
}
