//! Spec-resolution equivalence: every wiring `EngineSpec` can resolve to
//! — serial/sharded, in-memory/file/file-limit backing, pipelined or not,
//! partitioned or not — must produce log-likelihoods bit-identical to the
//! plain in-RAM engine on a fig2-sized dataset. Residency, sharding and
//! pipelining never change computed values, so this is `assert_eq!` on
//! `f64`, no tolerance.

use ooc_core::StrategyKind;
use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
use phylo_ooc::seq::PartitionKind;
use phylo_ooc::setup::{self, DatasetSpec};

fn fig2_dataset() -> setup::Dataset {
    setup::simulate_dataset(&DatasetSpec {
        n_taxa: 16,
        n_sites: 160,
        seed: 20260809,
        ..Default::default()
    })
}

fn fig2_partitioned() -> setup::PartitionedDataset {
    setup::simulate_partitioned_dataset(
        &DatasetSpec {
            n_taxa: 12,
            n_sites: 0, // per-partition lengths below
            seed: 7,
            ..Default::default()
        },
        &[
            (PartitionKind::Dna, 90),
            (PartitionKind::Protein, 40),
            (PartitionKind::Dna, 60),
        ],
    )
}

/// Resolve `spec` over the dataset and return its log-likelihood.
fn spec_lnl(spec: &EngineSpec, data: &setup::Dataset, ctx: &BuildContext) -> f64 {
    setup::build_engine(spec, data, ctx)
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap()
}

#[test]
fn ooc_mem_spec_matches_inram() {
    let data = fig2_dataset();
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        ..setup::base_spec(&data)
    };
    assert_eq!(reference, spec_lnl(&spec, &data, &BuildContext::new()));
}

#[test]
fn next_use_spec_collects_oracle_handle() {
    let data = fig2_dataset();
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        strategy: StrategyKind::NextUse,
        ..setup::base_spec(&data)
    };
    let built = setup::build_engine(&spec, &data, &BuildContext::new()).unwrap();
    assert_eq!(built.handles.len(), 1, "spec collects the oracle handle");
    let mut engine = built.engine;
    assert_eq!(reference, engine.log_likelihood().unwrap());
}

#[test]
fn file_limit_spec_matches_inram() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let spec = EngineSpec {
        residency: Residency::FileLimit {
            limit_bytes: data.total_vector_bytes() / 4,
        },
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("v.bin"));
    assert_eq!(reference, spec_lnl(&spec, &data, &ctx));
}

#[test]
fn sharded_mem_spec_matches_inram() {
    let data = fig2_dataset();
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        shards: 3,
        ..setup::base_spec(&data)
    };
    assert_eq!(reference, spec_lnl(&spec, &data, &BuildContext::new()));
}

#[test]
fn sharded_file_spec_matches_inram() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let spec = EngineSpec {
        residency: Residency::File { fraction: 0.25 },
        strategy: StrategyKind::Lfu,
        shards: 3,
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("v.bin"));
    assert_eq!(reference, spec_lnl(&spec, &data, &ctx));
}

#[test]
fn sharded_file_pipelined_spec_matches_inram() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let spec = EngineSpec {
        residency: Residency::File { fraction: 0.25 },
        shards: 2,
        io_threads: 2,
        window: 8,
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("v.bin"));
    assert_eq!(reference, spec_lnl(&spec, &data, &ctx));
}

#[test]
fn single_io_thread_pipeline_spec_matches_inram() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let spec = EngineSpec {
        residency: Residency::File { fraction: 0.3 },
        shards: 2,
        io_threads: 1,
        window: 8,
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("v.bin"));
    assert_eq!(reference, spec_lnl(&spec, &data, &ctx));
}

#[test]
fn sharded_file_limit_spec_matches_inram() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let spec = EngineSpec {
        residency: Residency::FileLimit {
            limit_bytes: data.total_vector_bytes() / 3,
        },
        shards: 2,
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("v.bin"));
    assert_eq!(reference, spec_lnl(&spec, &data, &ctx));
}

/// The in-RAM partitioned build is itself the reference for the managed
/// partitioned residencies below.
fn partitioned_reference(data: &setup::PartitionedDataset) -> (f64, Vec<f64>) {
    let spec = setup::base_partitioned_spec(data); // InRam default
    let mut engine = setup::build_partitioned_engine(&spec, data, &BuildContext::new())
        .unwrap()
        .engine;
    let joint = engine.log_likelihood().unwrap();
    (joint, engine.partition_lnls().unwrap())
}

#[test]
fn partitioned_inram_spec_matches_independent_members() {
    use phylo_ooc::plf::{InRamStore, PlfEngine};
    let data = fig2_partitioned();
    let (joint, lnls) = partitioned_reference(&data);
    // Per-partition lnLs equal each partition run as its own standalone
    // serial analysis; the joint likelihood is their sum in order.
    for (i, p) in data.parts.iter().enumerate() {
        let store = InRamStore::new(data.tree.n_inner(), data.width(i));
        let mut solo = PlfEngine::new(
            data.tree.clone(),
            &p.comp,
            p.model.clone(),
            data.alpha,
            data.n_cats,
            store,
        );
        assert_eq!(solo.log_likelihood().unwrap(), lnls[i], "partition {i}");
    }
    assert_eq!(joint, lnls.iter().sum::<f64>());
}

#[test]
fn partitioned_ooc_mem_spec_matches_inram() {
    let data = fig2_partitioned();
    let (joint, lnls) = partitioned_reference(&data);
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        ..setup::base_partitioned_spec(&data)
    };
    let mut engine = setup::build_partitioned_engine(&spec, &data, &BuildContext::new())
        .unwrap()
        .engine;
    assert_eq!(joint, engine.log_likelihood().unwrap());
    assert_eq!(lnls, engine.partition_lnls().unwrap());
}

#[test]
fn partitioned_file_limit_spec_matches_inram() {
    let data = fig2_partitioned();
    let dir = tempfile::tempdir().unwrap();
    let (joint, lnls) = partitioned_reference(&data);
    let total: u64 = (0..data.parts.len())
        .map(|i| data.partition_vector_bytes(i))
        .sum();
    let spec = EngineSpec {
        residency: Residency::FileLimit {
            limit_bytes: total / 4,
        },
        ..setup::base_partitioned_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("v.bin"));
    let mut engine = setup::build_partitioned_engine(&spec, &data, &ctx)
        .unwrap()
        .engine;
    assert_eq!(joint, engine.log_likelihood().unwrap());
    assert_eq!(lnls, engine.partition_lnls().unwrap());
}

#[test]
fn partitioned_sharded_pipelined_spec_matches_inram() {
    let data = fig2_partitioned();
    let dir = tempfile::tempdir().unwrap();
    let (joint, lnls) = partitioned_reference(&data);
    let spec = EngineSpec {
        residency: Residency::File { fraction: 0.3 },
        shards: 2,
        io_threads: 1,
        window: 8,
        ..setup::base_partitioned_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("v.bin"));
    let mut engine = setup::build_partitioned_engine(&spec, &data, &ctx)
        .unwrap()
        .engine;
    assert_eq!(joint, engine.log_likelihood().unwrap());
    assert_eq!(lnls, engine.partition_lnls().unwrap());
}
