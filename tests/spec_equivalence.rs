//! Satellite of the `EngineSpec` redesign: every deprecated `setup::`
//! constructor and its spec-built twin must produce bit-identical
//! log-likelihoods on a fig2-sized dataset. Residency, sharding and
//! pipelining never change computed values — so a declarative spec that
//! resolves to the same wiring must reproduce the legacy constructor's
//! lnL exactly (`assert_eq!` on `f64`, no tolerance).
#![allow(deprecated)]

use ooc_core::StrategyKind;
use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
use phylo_ooc::seq::PartitionKind;
use phylo_ooc::setup::{self, DatasetSpec};

fn fig2_dataset() -> setup::Dataset {
    setup::simulate_dataset(&DatasetSpec {
        n_taxa: 16,
        n_sites: 160,
        seed: 20260809,
        ..Default::default()
    })
}

fn fig2_partitioned() -> setup::PartitionedDataset {
    setup::simulate_partitioned_dataset(
        &DatasetSpec {
            n_taxa: 12,
            n_sites: 0, // per-partition lengths below
            seed: 7,
            ..Default::default()
        },
        &[
            (PartitionKind::Dna, 90),
            (PartitionKind::Protein, 40),
            (PartitionKind::Dna, 60),
        ],
    )
}

#[test]
fn ooc_engine_mem_matches_spec_twin() {
    let data = fig2_dataset();
    let legacy = setup::ooc_engine_mem(&data, 0.3, StrategyKind::Lru)
        .log_likelihood()
        .unwrap();
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        ..setup::base_spec(&data)
    };
    let twin = setup::build_engine(&spec, &data, &BuildContext::new())
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap();
    assert_eq!(legacy, twin);
}

#[test]
fn ooc_engine_mem_with_handle_matches_spec_twin() {
    let data = fig2_dataset();
    let (mut engine, handle) = setup::ooc_engine_mem_with_handle(&data, 0.3, StrategyKind::NextUse);
    assert!(handle.is_some(), "NextUse wires an oracle");
    let legacy = engine.log_likelihood().unwrap();
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        strategy: StrategyKind::NextUse,
        ..setup::base_spec(&data)
    };
    let built = setup::build_engine(&spec, &data, &BuildContext::new()).unwrap();
    assert_eq!(built.handles.len(), 1, "spec collects the oracle handle");
    let mut engine = built.engine;
    assert_eq!(legacy, engine.log_likelihood().unwrap());
}

#[test]
fn ooc_engine_file_matches_spec_twin() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let limit = data.total_vector_bytes() / 4;
    let legacy = setup::ooc_engine_file(
        &data,
        dir.path().join("legacy.bin"),
        limit,
        StrategyKind::Lru,
    )
    .unwrap()
    .log_likelihood()
    .unwrap();
    let spec = EngineSpec {
        residency: Residency::FileLimit { limit_bytes: limit },
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("twin.bin"));
    let twin = setup::build_engine(&spec, &data, &ctx)
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap();
    assert_eq!(legacy, twin);
}

#[test]
fn sharded_engine_mem_matches_spec_twin() {
    let data = fig2_dataset();
    let legacy = setup::sharded_engine_mem(&data, 0.3, StrategyKind::Lru, 3)
        .log_likelihood()
        .unwrap();
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        shards: 3,
        ..setup::base_spec(&data)
    };
    let twin = setup::build_engine(&spec, &data, &BuildContext::new())
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap();
    assert_eq!(legacy, twin);
}

#[test]
fn sharded_engine_file_matches_spec_twin() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let legacy = setup::sharded_engine_file(
        &data,
        dir.path().join("legacy.bin"),
        0.25,
        StrategyKind::Lfu,
        3,
    )
    .unwrap()
    .log_likelihood()
    .unwrap();
    let spec = EngineSpec {
        residency: Residency::File { fraction: 0.25 },
        strategy: StrategyKind::Lfu,
        shards: 3,
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("twin.bin"));
    let twin = setup::build_engine(&spec, &data, &ctx)
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap();
    assert_eq!(legacy, twin);
}

#[test]
fn sharded_engine_file_pipelined_matches_spec_twin() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let legacy = setup::sharded_engine_file_pipelined(
        &data,
        dir.path().join("legacy.bin"),
        0.25,
        StrategyKind::Lru,
        2,
        2,
        8,
    )
    .unwrap()
    .log_likelihood()
    .unwrap();
    let spec = EngineSpec {
        residency: Residency::File { fraction: 0.25 },
        shards: 2,
        io_threads: 2,
        window: 8,
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("twin.bin"));
    let twin = setup::build_engine(&spec, &data, &ctx)
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap();
    assert_eq!(legacy, twin);
}

#[test]
fn sharded_pipelined_engine_matches_spec_twin() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let legacy = setup::sharded_pipelined_engine(
        &data.tree,
        &data.comp,
        &data.model,
        data.spec.alpha,
        data.spec.n_cats,
        dir.path().join("legacy.bin"),
        0.3,
        StrategyKind::Lru,
        2,
        1,
        8,
    )
    .unwrap()
    .log_likelihood()
    .unwrap();
    let spec = EngineSpec {
        residency: Residency::File { fraction: 0.3 },
        shards: 2,
        io_threads: 1,
        window: 8,
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("twin.bin"));
    let twin = setup::build_engine(&spec, &data, &ctx)
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap();
    assert_eq!(legacy, twin);
}

#[test]
fn sharded_engine_file_limit_matches_spec_twin() {
    let data = fig2_dataset();
    let dir = tempfile::tempdir().unwrap();
    let limit = data.total_vector_bytes() / 3;
    let legacy = setup::sharded_engine_file_limit(
        &data,
        dir.path().join("legacy.bin"),
        limit,
        StrategyKind::Lru,
        2,
    )
    .unwrap()
    .log_likelihood()
    .unwrap();
    let spec = EngineSpec {
        residency: Residency::FileLimit { limit_bytes: limit },
        shards: 2,
        ..setup::base_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("twin.bin"));
    let twin = setup::build_engine(&spec, &data, &ctx)
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap();
    assert_eq!(legacy, twin);
}

#[test]
fn partitioned_engine_inram_matches_spec_twin() {
    let data = fig2_partitioned();
    let mut legacy = setup::partitioned_engine_inram(&data);
    let spec = setup::base_partitioned_spec(&data); // InRam default
    let mut twin = setup::build_partitioned_engine(&spec, &data, &BuildContext::new())
        .unwrap()
        .engine;
    assert_eq!(
        legacy.log_likelihood().unwrap(),
        twin.log_likelihood().unwrap()
    );
    assert_eq!(
        legacy.partition_lnls().unwrap(),
        twin.partition_lnls().unwrap(),
        "per-partition lnLs must match member for member"
    );
}

#[test]
fn partitioned_engine_ooc_mem_matches_spec_twin() {
    let data = fig2_partitioned();
    let legacy = setup::partitioned_engine_ooc_mem(&data, 0.3, StrategyKind::Lru)
        .log_likelihood()
        .unwrap();
    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.3 },
        ..setup::base_partitioned_spec(&data)
    };
    let twin = setup::build_partitioned_engine(&spec, &data, &BuildContext::new())
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap();
    assert_eq!(legacy, twin);
}

#[test]
fn partitioned_engine_file_limit_matches_spec_twin() {
    let data = fig2_partitioned();
    let dir = tempfile::tempdir().unwrap();
    let total: u64 = (0..data.parts.len())
        .map(|i| data.partition_vector_bytes(i))
        .sum();
    let limit = total / 4;
    let legacy = setup::partitioned_engine_file_limit(
        &data,
        dir.path().join("legacy.bin"),
        limit,
        StrategyKind::Lru,
    )
    .unwrap()
    .log_likelihood()
    .unwrap();
    let spec = EngineSpec {
        residency: Residency::FileLimit { limit_bytes: limit },
        ..setup::base_partitioned_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("twin.bin"));
    let twin = setup::build_partitioned_engine(&spec, &data, &ctx)
        .unwrap()
        .engine
        .log_likelihood()
        .unwrap();
    assert_eq!(legacy, twin);
}

#[test]
fn partitioned_engine_sharded_pipelined_matches_spec_twin() {
    let data = fig2_partitioned();
    let dir = tempfile::tempdir().unwrap();
    let mut legacy = setup::partitioned_engine_sharded_pipelined(
        &data,
        dir.path().join("legacy.bin"),
        0.3,
        StrategyKind::Lru,
        2,
        1,
        8,
    )
    .unwrap();
    let spec = EngineSpec {
        residency: Residency::File { fraction: 0.3 },
        shards: 2,
        io_threads: 1,
        window: 8,
        ..setup::base_partitioned_spec(&data)
    };
    let ctx = BuildContext::new().vector_path(dir.path().join("twin.bin"));
    let mut twin = setup::build_partitioned_engine(&spec, &data, &ctx)
        .unwrap()
        .engine;
    assert_eq!(
        legacy.log_likelihood().unwrap(),
        twin.log_likelihood().unwrap()
    );
    assert_eq!(
        legacy.partition_lnls().unwrap(),
        twin.partition_lnls().unwrap()
    );
}
