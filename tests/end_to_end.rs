//! End-to-end workflows across the whole stack: simulate → write/read
//! standard formats → build engines → search → export the tree.

mod common;

use phylo_ooc::models::{DiscreteGamma, ReversibleModel};
use phylo_ooc::ooc::StrategyKind;
use phylo_ooc::plf::{InRamStore, PlfEngine};
use phylo_ooc::search::{hill_climb, nni_round, SearchConfig};
use phylo_ooc::seq::fasta::{read_fasta, write_fasta};
use phylo_ooc::seq::phylip::{read_phylip, write_phylip};
use phylo_ooc::seq::{compress_patterns, simulate_alignment, Alphabet};
use phylo_ooc::setup::{self, DatasetSpec};
use phylo_ooc::tree::build::{random_topology, yule_like_lengths};
use phylo_ooc::tree::{parse_newick, write_newick};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::BufReader;

#[test]
fn simulate_export_import_evaluate() {
    // Simulate, dump to FASTA and PHYLIP, re-read both, and verify the
    // likelihood of the re-read data matches the original exactly.
    let data = setup::simulate_dataset(&DatasetSpec {
        n_taxa: 12,
        n_sites: 140,
        seed: 5,
        ..Default::default()
    });
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();

    let mut fasta_buf = Vec::new();
    write_fasta(&mut fasta_buf, &data.comp.alignment).unwrap();
    let mut phylip_buf = Vec::new();
    write_phylip(&mut phylip_buf, &data.comp.alignment).unwrap();

    for alignment in [
        read_fasta(BufReader::new(&fasta_buf[..]), Alphabet::Dna).unwrap(),
        read_phylip(BufReader::new(&phylip_buf[..]), Alphabet::Dna).unwrap(),
    ] {
        // We exported the *pattern* alignment, whose columns are already
        // distinct; re-compressing keeps their order, but the original
        // column weights must be carried over.
        let mut comp = compress_patterns(&alignment);
        assert_eq!(comp.n_patterns(), data.comp.n_patterns());
        comp.weights = data.comp.weights.clone();
        let dims = PlfEngine::<InRamStore>::dims_for(&comp, 4);
        let store = InRamStore::new(data.tree.n_inner(), dims.width());
        let mut engine = PlfEngine::new(
            data.tree.clone(),
            &comp,
            data.model.clone(),
            data.spec.alpha,
            4,
            store,
        );
        assert_eq!(
            engine.log_likelihood().unwrap().to_bits(),
            reference.to_bits()
        );
    }
}

#[test]
fn newick_roundtrip_preserves_likelihood() {
    // Serialise the tree to Newick, re-parse it, remap sequences by tip
    // name, and verify the likelihood is unchanged (up to f64 parsing of
    // the branch lengths; we print with full precision so it is exact).
    let data = setup::simulate_dataset(&DatasetSpec {
        n_taxa: 15,
        n_sites: 100,
        seed: 6,
        ..Default::default()
    });
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let names = data.comp.alignment.names().to_vec();
    let nwk = write_newick(&data.tree, &names);
    let (tree2, names2) = parse_newick(&nwk).unwrap();

    // Reorder alignment rows to the new tip order.
    let order: Vec<usize> = names2
        .iter()
        .map(|n| names.iter().position(|m| m == n).unwrap())
        .collect();
    let entries: Vec<(String, String)> = order
        .iter()
        .map(|&i| (names[i].clone(), data.comp.alignment.seq_chars(i)))
        .collect();
    // Expand back to per-site columns (alignment in comp is pattern-level,
    // so weights must be carried over); easiest: evaluate on the pattern
    // alignment directly with its weights.
    let aln = phylo_ooc::seq::Alignment::from_chars(Alphabet::Dna, &entries).unwrap();
    let comp2 = phylo_ooc::seq::CompressedAlignment {
        weights: data.comp.weights.clone(),
        site_to_pattern: data.comp.site_to_pattern.clone(),
        alignment: aln,
    };
    let dims = PlfEngine::<InRamStore>::dims_for(&comp2, 4);
    let store = InRamStore::new(tree2.n_inner(), dims.width());
    let mut engine = PlfEngine::new(tree2, &comp2, data.model.clone(), data.spec.alpha, 4, store);
    let lnl = engine.log_likelihood().unwrap();
    assert!(
        (lnl - reference).abs() < 1e-6 * reference.abs(),
        "{lnl} vs {reference}"
    );
}

#[test]
fn search_recovers_signal_on_easy_data() {
    // Strong signal (long alignment, few taxa): the search from a random
    // start must reach a likelihood close to the truth's.
    let mut rng = StdRng::seed_from_u64(31);
    let mut true_tree = random_topology(12, 0.1, &mut rng);
    yule_like_lengths(&mut true_tree, 0.2, 1e-4, &mut rng);
    let model = ReversibleModel::jc69();
    let gamma = DiscreteGamma::new(1.0, 4);
    let aln = simulate_alignment(&true_tree, &model, &gamma, 800, &mut rng);
    let comp = compress_patterns(&aln);

    let dims = PlfEngine::<InRamStore>::dims_for(&comp, 4);
    let mut engine_true = PlfEngine::new(
        true_tree.clone(),
        &comp,
        model.clone(),
        1.0,
        4,
        InRamStore::new(true_tree.n_inner(), dims.width()),
    );
    let true_lnl = engine_true.smooth_branches(2, 24).unwrap();

    let start = random_topology(12, 0.1, &mut StdRng::seed_from_u64(90));
    let mut engine = PlfEngine::new(
        start,
        &comp,
        model,
        1.0,
        4,
        InRamStore::new(true_tree.n_inner(), dims.width()),
    );
    let stats = hill_climb(
        &mut engine,
        &SearchConfig {
            spr_radius: 6,
            max_rounds: 8,
            optimize_model: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        stats.final_lnl > true_lnl - 5.0,
        "search {} vs truth {true_lnl}",
        stats.final_lnl
    );
}

#[test]
fn nni_polish_after_spr_search() {
    let data = setup::simulate_dataset(&DatasetSpec {
        n_taxa: 14,
        n_sites: 160,
        seed: 8,
        ..Default::default()
    });
    let mut engine = common::ooc_mem(&data, 0.5, StrategyKind::Lru);
    let cfg = SearchConfig {
        spr_radius: 3,
        max_rounds: 1,
        optimize_model: false,
        ..Default::default()
    };
    let stats = hill_climb(&mut engine, &cfg).unwrap();
    let (polished, _) = nni_round(&mut engine, 12, 1e-4).unwrap();
    assert!(polished >= stats.final_lnl - 1e-6);
}

#[test]
fn protein_data_end_to_end() {
    // The paper quotes protein memory footprints (20 states, 80 doubles
    // per site under Γ); verify the whole stack handles 20-state data.
    let mut rng = StdRng::seed_from_u64(17);
    let mut tree = random_topology(8, 0.1, &mut rng);
    yule_like_lengths(&mut tree, 0.15, 1e-4, &mut rng);
    let model = phylo_ooc::models::protein::synthetic_protein(4);
    let gamma = DiscreteGamma::new(0.7, 4);
    let aln = simulate_alignment(&tree, &model, &gamma, 60, &mut rng);
    let comp = compress_patterns(&aln);
    let dims = PlfEngine::<InRamStore>::dims_for(&comp, 4);
    assert_eq!(dims.n_states, 20);
    // 80 doubles per site, as in §3.1.
    assert_eq!(dims.site_stride(), 80);

    let mut standard = PlfEngine::new(
        tree.clone(),
        &comp,
        model.clone(),
        0.7,
        4,
        InRamStore::new(tree.n_inner(), dims.width()),
    );
    let reference = standard.log_likelihood().unwrap();
    assert!(reference.is_finite() && reference < 0.0);

    // Out-of-core protein run, minimum slots.
    use phylo_ooc::ooc::{MemStore, OocConfig, VectorManager};
    use phylo_ooc::plf::OocStore;
    let manager = VectorManager::new(
        OocConfig::builder(tree.n_inner(), dims.width())
            .slots(3)
            .build()
            .unwrap(),
        StrategyKind::Lru.build(None),
        MemStore::new(tree.n_inner(), dims.width()),
    );
    let mut ooc = PlfEngine::new(tree, &comp, model, 0.7, 4, OocStore::new(manager));
    assert_eq!(ooc.log_likelihood().unwrap().to_bits(), reference.to_bits());
}
