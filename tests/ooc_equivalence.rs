//! Experiment E5 — the paper's correctness criterion (§4.1):
//! "Given a fixed starting tree, RAxML is deterministic, that is,
//! regardless of f and the selected replacement strategy, the resulting
//! tree (and log likelihood score) must always be identical to the tree
//! returned by the standard RAxML implementation."
//!
//! We assert bit-identical log-likelihoods across every residency backend,
//! replacement strategy and memory fraction, for plain evaluation, full
//! traversals, smoothing and whole searches.

mod common;

use phylo_ooc::ooc::StrategyKind;
use phylo_ooc::plf::{BuildContext, EngineSpec, Residency};
use phylo_ooc::search::{hill_climb, SearchConfig};
use phylo_ooc::setup::{self, DatasetSpec};
use phylo_ooc::tree::write_newick;

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_taxa: 24,
        n_sites: 180,
        seed: 2011,
        ..Default::default()
    }
}

const STRATEGIES: [StrategyKind; 5] = [
    StrategyKind::Random { seed: 3 },
    StrategyKind::Lru,
    StrategyKind::Lfu,
    StrategyKind::Topological,
    StrategyKind::NextUse,
];

#[test]
fn likelihood_identical_across_strategies_and_fractions() {
    let data = setup::simulate_dataset(&spec());
    let mut standard = setup::inram_engine(&data);
    let reference = standard.log_likelihood().unwrap();
    assert!(reference.is_finite() && reference < 0.0);

    for kind in STRATEGIES {
        for f in [0.25, 0.5, 0.75] {
            let mut ooc = common::ooc_mem(&data, f, kind);
            let lnl = ooc.log_likelihood().unwrap();
            assert_eq!(
                reference.to_bits(),
                lnl.to_bits(),
                "strategy {} f={f}: {lnl} != {reference}",
                kind.label()
            );
        }
    }
}

#[test]
fn minimum_slots_still_exact() {
    // The paper's extreme case: only five slots (and the hard minimum 3).
    let data = setup::simulate_dataset(&spec());
    let mut standard = setup::inram_engine(&data);
    let reference = standard.full_traversals(2).unwrap();
    for n_slots in [3usize, 5] {
        let f = n_slots as f64 / data.n_items() as f64;
        let engine_spec = EngineSpec {
            residency: Residency::OocMem { fraction: f },
            strategy: StrategyKind::Random { seed: 1 },
            ..setup::base_spec(&data)
        };
        let resolved = engine_spec
            .slot_counts(&data.tree, &setup::part_specs(&data))
            .unwrap();
        assert_eq!(resolved, vec![Some(n_slots)]);
        let mut ooc = setup::build_engine(&engine_spec, &data, &BuildContext::new())
            .unwrap()
            .engine;
        let lnl = ooc.full_traversals(2).unwrap();
        assert_eq!(reference.to_bits(), lnl.to_bits(), "{n_slots} slots");
        assert!(
            ooc.ooc_stats().unwrap().miss_rate() > 0.3,
            "tiny slot counts should miss a lot"
        );
    }
}

#[test]
fn file_store_matches_mem_store() {
    let data = setup::simulate_dataset(&spec());
    let dir = tempfile::tempdir().unwrap();
    let mut mem = common::ooc_mem(&data, 0.3, StrategyKind::Lru);
    let mut file = common::ooc_file(
        &data,
        &dir.path().join("v.bin"),
        data.total_vector_bytes() * 3 / 10,
        StrategyKind::Lru,
    );
    let a = mem.full_traversals(3).unwrap();
    let b = file.full_traversals(3).unwrap();
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn paged_arena_matches_standard() {
    let data = setup::simulate_dataset(&spec());
    let dir = tempfile::tempdir().unwrap();
    let mut standard = setup::inram_engine(&data);
    // Heavily oversubscribed arena: an eighth of the required memory.
    let mut paged = setup::paged_engine(
        &data,
        dir.path().join("swap.bin"),
        (data.total_vector_bytes() / 8) as usize,
    )
    .unwrap();
    let a = standard.full_traversals(2).unwrap();
    let b = paged.full_traversals(2).unwrap();
    assert_eq!(a.to_bits(), b.to_bits());
    assert!(
        paged.store().arena().stats().major_faults > 0,
        "oversubscription must cause swap traffic"
    );
}

#[test]
fn smoothing_identical_out_of_core() {
    let data = setup::simulate_dataset(&spec());
    let mut standard = setup::inram_engine(&data);
    let mut ooc = common::ooc_mem(&data, 0.25, StrategyKind::Lru);
    let a = standard.smooth_branches(2, 12).unwrap();
    let b = ooc.smooth_branches(2, 12).unwrap();
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn whole_search_identical_out_of_core() {
    let data = setup::simulate_dataset(&DatasetSpec {
        n_taxa: 16,
        n_sites: 120,
        seed: 77,
        ..Default::default()
    });
    let cfg = SearchConfig {
        spr_radius: 3,
        max_rounds: 2,
        optimize_model: true,
        seed: 5,
        ..Default::default()
    };
    let mut standard = setup::inram_engine(&data);
    let std_stats = hill_climb(&mut standard, &cfg).unwrap();

    for kind in STRATEGIES {
        let (mut ooc, handle) = common::ooc_mem_with_handle(&data, 0.25, kind);
        let ooc_stats = hill_climb(&mut ooc, &cfg).unwrap();
        if let Some(h) = handle {
            h.update(ooc.tree());
        }
        assert_eq!(
            std_stats.final_lnl.to_bits(),
            ooc_stats.final_lnl.to_bits(),
            "strategy {}",
            kind.label()
        );
        assert_eq!(std_stats.spr_applied, ooc_stats.spr_applied);
        let names = data.comp.alignment.names().to_vec();
        assert_eq!(
            write_newick(standard.tree(), &names),
            write_newick(ooc.tree(), &names),
            "final topology must be identical (strategy {})",
            kind.label()
        );
    }
}

#[test]
fn read_skipping_does_not_change_results() {
    use phylo_ooc::ooc::{MemStore, OocConfig, VectorManager};
    use phylo_ooc::plf::{OocStore, PlfEngine};
    let data = setup::simulate_dataset(&spec());
    let reference = setup::inram_engine(&data).full_traversals(2).unwrap();
    for read_skipping in [true, false] {
        let cfg = OocConfig::builder(data.n_items(), data.width())
            .fraction(0.25)
            .read_skipping(read_skipping)
            .build()
            .expect("valid out-of-core config");
        let manager = VectorManager::new(
            cfg,
            StrategyKind::Lru.build(None),
            MemStore::new(data.n_items(), data.width()),
        );
        let mut engine = PlfEngine::new(
            data.tree.clone(),
            &data.comp,
            data.model.clone(),
            data.spec.alpha,
            data.spec.n_cats,
            OocStore::new(manager),
        );
        let lnl = engine.full_traversals(2).unwrap();
        assert_eq!(
            reference.to_bits(),
            lnl.to_bits(),
            "read_skipping={read_skipping}"
        );
    }
}
