//! The §5 future-work extensions wired into the full engine: a prefetch
//! thread behind the backing store, and the three-layer
//! accelerator/RAM/disk hierarchy.

use phylo_ooc::ooc::{
    FileStore, OocConfig, PrefetchingStore, StrategyKind, TieredStore, VectorManager,
};
use phylo_ooc::plf::{OocStore, PlfEngine};
use phylo_ooc::setup::{self, DatasetSpec};
use std::sync::atomic::Ordering;

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_taxa: 40,
        n_sites: 200,
        seed: 99,
        ..Default::default()
    }
}

#[test]
fn prefetching_store_is_transparent() {
    let data = setup::simulate_dataset(&spec());
    let reference = setup::inram_engine(&data).full_traversals(3).unwrap();

    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("vectors.bin");
    let main = FileStore::create(&path, data.n_items(), data.width()).unwrap();
    let worker = FileStore::open(&path, data.width()).unwrap();
    let store = PrefetchingStore::new(main, worker, data.n_items(), data.width());

    let cfg = OocConfig::builder(data.n_items(), data.width())
        .fraction(0.25)
        .build()
        .expect("valid out-of-core config");
    let manager = VectorManager::new(cfg, StrategyKind::Lru.build(None), store);
    let mut engine = PlfEngine::new(
        data.tree.clone(),
        &data.comp,
        data.model.clone(),
        data.spec.alpha,
        data.spec.n_cats,
        OocStore::new(manager),
    );
    // Mix of traversals and smoothing; prefetch hints flow from the
    // submitted AccessPlan through the plan cursor's lookahead window
    // (submit_plan -> begin_plan -> store.hint) on every traversal.
    let lnl = engine.full_traversals(3).unwrap();
    assert_eq!(lnl.to_bits(), reference.to_bits());
    engine.smooth_branches(1, 8).unwrap();
    let partial = engine.log_likelihood().unwrap();
    engine.invalidate_all();
    let full = engine.log_likelihood().unwrap();
    assert_eq!(partial.to_bits(), full.to_bits());
}

#[test]
fn prefetch_thread_actually_stages_reads() {
    let data = setup::simulate_dataset(&spec());
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("vectors.bin");
    let main = FileStore::create(&path, data.n_items(), data.width()).unwrap();
    let worker = FileStore::open(&path, data.width()).unwrap();
    let store = PrefetchingStore::new(main, worker, data.n_items(), data.width());

    let cfg = OocConfig::builder(data.n_items(), data.width())
        .fraction(0.2)
        .build()
        .expect("valid out-of-core config");
    let manager = VectorManager::new(cfg, StrategyKind::Lru.build(None), store);
    let mut engine = PlfEngine::new(
        data.tree.clone(),
        &data.comp,
        data.model.clone(),
        data.spec.alpha,
        data.spec.n_cats,
        OocStore::new(manager),
    );
    // Smoothing passes generate many partial traversals whose upcoming
    // reads are hinted ahead of time.
    engine.smooth_branches(2, 8).unwrap();
    let stats = engine.store().manager().store().stats();
    let prefetched = stats.prefetched.load(Ordering::Relaxed);
    let hits = stats.staged_hits.load(Ordering::Relaxed);
    assert!(
        prefetched > 0,
        "worker thread should have completed some prefetches"
    );
    // Timing-dependent, but across two smoothing passes at least some
    // demand reads should land in the staging cache.
    assert!(
        hits > 0,
        "no staged hits at all (prefetched = {prefetched})"
    );
}

#[test]
fn three_layer_hierarchy_is_exact_and_absorbs_io() {
    let data = setup::simulate_dataset(&spec());
    let reference = setup::inram_engine(&data).full_traversals(2).unwrap();

    let dir = tempfile::tempdir().unwrap();
    let disk =
        FileStore::create(dir.path().join("disk.bin"), data.n_items(), data.width()).unwrap();
    // Middle tier ("RAM") holds half the vectors; the manager's slots
    // ("accelerator memory") hold only 10%.
    let tier = TieredStore::new(disk, data.n_items() / 2);
    let cfg = OocConfig::builder(data.n_items(), data.width())
        .fraction(0.10)
        .build()
        .expect("valid out-of-core config");
    let manager = VectorManager::new(cfg, StrategyKind::Lru.build(None), tier);
    let mut engine = PlfEngine::new(
        data.tree.clone(),
        &data.comp,
        data.model.clone(),
        data.spec.alpha,
        data.spec.n_cats,
        OocStore::new(manager),
    );
    let lnl = engine.full_traversals(2).unwrap();
    assert_eq!(lnl.to_bits(), reference.to_bits());

    let tier_stats = engine.store().manager().store().stats();
    assert!(
        tier_stats.hits > 0,
        "middle tier should absorb manager misses"
    );
    assert!(
        tier_stats.hits > tier_stats.misses,
        "with half the vectors cached most tier reads should hit: {tier_stats:?}"
    );
}
