//! Deterministic stall-attribution tests: a hand-cranked [`ManualClock`]
//! shared between a simulated-latency store and the [`Recorder`] makes
//! every span duration exact, so the attribution split (demand-read vs
//! write-back vs prefetch-wait vs compute) can be asserted to the
//! nanosecond for a scripted access plan — no timers, no tolerance.

use phylo_ooc::ooc::{
    BackingStore, Event, ItemId, ManualClock, MemStore, MemorySink, OocConfig, PrefetchingStore,
    Recorder, StallKind, StrategyKind, VectorManager,
};
use phylo_ooc::setup::{self, DatasetSpec};
use std::io;

const READ_NS: u64 = 1_000;
const WRITE_NS: u64 = 300;
const WIDTH: usize = 4;

/// Wraps a store and advances a shared [`ManualClock`] by a fixed cost per
/// read / write, simulating device latency the recorder can observe.
struct SimLatencyStore<S> {
    inner: S,
    clock: ManualClock,
    read_ns: u64,
    write_ns: u64,
}

impl<S: BackingStore> BackingStore for SimLatencyStore<S> {
    fn read(&mut self, item: ItemId, buf: &mut [f64]) -> io::Result<()> {
        self.clock.advance(self.read_ns);
        self.inner.read(item, buf)
    }

    fn write(&mut self, item: ItemId, buf: &[f64]) -> io::Result<()> {
        self.clock.advance(self.write_ns);
        self.inner.write(item, buf)
    }
}

fn sim_store(clock: &ManualClock, n_items: usize) -> SimLatencyStore<MemStore> {
    SimLatencyStore {
        inner: MemStore::new(n_items, WIDTH),
        clock: clock.clone(),
        read_ns: READ_NS,
        write_ns: WRITE_NS,
    }
}

fn count(events: &[Event], layer: &str, op: &str) -> u64 {
    events
        .iter()
        .filter(|e| e.layer == layer && e.op == op)
        .count() as u64
}

/// The scripted plan from the issue: fill the three slots with writes,
/// force two evictions and one demand read, then flush — and assert the
/// attribution splits the elapsed time exactly.
#[test]
fn scripted_plan_attributes_stalls_exactly() {
    let clock = ManualClock::new();
    let (sink, events) = MemorySink::new();
    let rec = Recorder::new(clock.clone(), sink);

    let cfg = OocConfig::builder(6, WIDTH).slots(3).build().unwrap();
    let mut mgr = VectorManager::new(cfg, StrategyKind::Lru.build(None), sim_store(&clock, 6));
    mgr.set_recorder(rec.clone());

    let v = [1.0; WIDTH];
    let mut out = [0.0; WIDTH];

    // Writes fill the three slots — write intent skips the load read.
    mgr.write_vector(0, &v).unwrap();
    mgr.write_vector(1, &v).unwrap();
    mgr.write_vector(2, &v).unwrap();
    // A hit: item 2 is resident, so no clock movement and no event.
    mgr.read_into(2, &mut out).unwrap();
    // Slot pressure: item 3 evicts item 0 (LRU), one write-back.
    mgr.write_vector(3, &v).unwrap();
    // Reading item 0 back evicts item 1 (write-back) then demand-reads.
    mgr.read_into(0, &mut out).unwrap();
    // Flush writes the two still-dirty slots (items 2 and 3).
    mgr.flush().unwrap();

    let stats = *mgr.stats();
    assert_eq!(stats.disk_reads, 1, "script: one demand read");
    assert_eq!(stats.disk_writes, 4, "script: 2 evictions + 2 flush writes");

    // Exact nanosecond attribution: every demand read costs READ_NS on
    // the manual clock, every write-back WRITE_NS.
    assert_eq!(
        rec.kind_ns(StallKind::DemandRead),
        stats.disk_reads * READ_NS
    );
    assert_eq!(
        rec.kind_ns(StallKind::WriteBack),
        stats.disk_writes * WRITE_NS
    );
    assert_eq!(rec.kind_ns(StallKind::PrefetchWait), 0);
    assert_eq!(rec.kind_ns(StallKind::BarrierWait), 0);

    // The whole run advanced the clock only through store I/O, so the
    // wall time decomposes with zero residual compute.
    let wall = rec.now();
    assert_eq!(wall, READ_NS + 4 * WRITE_NS);
    let attr = rec.attribution(wall);
    assert_eq!(attr.demand_read_ns, READ_NS);
    assert_eq!(attr.write_back_ns, 4 * WRITE_NS);
    assert_eq!(attr.compute_ns(), 0);

    // Events reconcile with the counters: one per successful transfer,
    // none for hits/misses/evictions (histogram-only).
    let events = events.lock().clone();
    assert_eq!(count(&events, "manager", "demand-read"), stats.disk_reads);
    assert_eq!(count(&events, "manager", "write-back"), stats.disk_writes);
    // Transfers plus the single store-sync span `flush` emits.
    assert_eq!(count(&events, "manager", "flush"), 1);
    assert_eq!(
        rec.events_recorded(),
        stats.disk_reads + stats.disk_writes + 1
    );

    // Histograms still saw everything, including the hist-only spans.
    let hits = rec.histogram("manager", "hit").unwrap();
    assert_eq!(hits.count(), stats.hits);
    let reads = rec.histogram("manager", "demand-read").unwrap();
    assert_eq!(reads.count(), stats.disk_reads);
    assert_eq!(reads.sum_ns(), stats.disk_reads * READ_NS);
    let writes = rec.histogram("manager", "write-back").unwrap();
    assert_eq!(writes.count(), stats.disk_writes);
    assert_eq!(writes.sum_ns(), stats.disk_writes * WRITE_NS);
}

/// A demand read that overlaps its own in-flight prefetch is attributed
/// twice on purpose: once at the top level (demand-read) and once as the
/// nested prefetch-wait "of which" slice. The nested kind must NOT be
/// subtracted again by `compute_ns`.
#[test]
fn overlapped_prefetch_is_nested_not_double_subtracted() {
    let clock = ManualClock::new();
    let (sink, events) = MemorySink::new();
    let rec = Recorder::new(clock.clone(), sink);

    let n = 6;
    // The worker handle is a dummy store: no hints are ever issued, so it
    // never stages anything; `debug_mark_pending` simulates the race.
    let mut prefetching =
        PrefetchingStore::new(sim_store(&clock, n), MemStore::new(n, WIDTH), n, WIDTH);
    prefetching.set_recorder(rec.clone());

    let cfg = OocConfig::builder(n, WIDTH).slots(3).build().unwrap();
    let mut mgr = VectorManager::new(cfg, StrategyKind::Lru.build(None), prefetching);
    mgr.set_recorder(rec.clone());

    let v = [2.0; WIDTH];
    let mut out = [0.0; WIDTH];
    for item in 0..4 {
        mgr.write_vector(item, &v).unwrap();
    }
    // Pretend a prefetch of item 0 is in flight when the demand read
    // arrives: the read proceeds, classified as overlapped.
    mgr.store().debug_mark_pending(0);
    mgr.read_into(0, &mut out).unwrap();

    let stats = *mgr.stats();
    assert_eq!(stats.disk_reads, 1);

    // Both the top-level and the nested kind saw the same store read.
    assert_eq!(rec.kind_ns(StallKind::DemandRead), READ_NS);
    assert_eq!(rec.kind_ns(StallKind::PrefetchWait), READ_NS);

    let wall = rec.now();
    let attr = rec.attribution(wall);
    assert_eq!(attr.prefetch_wait_ns, READ_NS);
    // compute = wall − demand-read − write-back − barrier; the nested
    // prefetch-wait is a slice OF demand-read, not another subtrahend.
    assert_eq!(
        attr.compute_ns(),
        wall - attr.demand_read_ns - attr.write_back_ns
    );

    let events = events.lock().clone();
    assert_eq!(count(&events, "prefetch", "stalled-read"), 1);
    assert_eq!(count(&events, "manager", "demand-read"), 1);
}

/// Engine-level wiring: a full traversal under a recorder produces
/// combine-batch spans and manager events that reconcile with `OocStats`.
#[test]
fn engine_traversal_events_reconcile_with_stats() {
    let data = setup::simulate_dataset(&DatasetSpec {
        n_taxa: 24,
        n_sites: 120,
        seed: 17,
        ..Default::default()
    });
    let (mut engine, _handle) = setup::ooc_engine_mem_with_handle(&data, 0.25, StrategyKind::Lru);

    let (sink, events) = MemorySink::new();
    let rec = Recorder::new(ManualClock::new(), sink);
    engine.store_mut().manager_mut().set_recorder(rec.clone());
    engine.set_recorder(rec.clone());

    engine.full_traversals(2).unwrap();

    let stats = *engine.store().manager().stats();
    let events = events.lock().clone();
    assert!(count(&events, "plf", "combine-batch") >= 1);
    assert_eq!(count(&events, "manager", "demand-read"), stats.disk_reads);
    assert_eq!(count(&events, "manager", "write-back"), stats.disk_writes);
    assert!(stats.miss_rate().is_finite());
    assert!(stats.read_rate().is_finite());
}
