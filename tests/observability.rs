//! Deterministic stall-attribution tests: a hand-cranked [`ManualClock`]
//! shared between a simulated-latency store and the [`Recorder`] makes
//! every span duration exact, so the attribution split (demand-read vs
//! write-back vs prefetch-wait vs compute) can be asserted to the
//! nanosecond for a scripted access plan — no timers, no tolerance.

use phylo_ooc::ooc::{
    AccessPlan, AccessRecord, BackingStore, Event, ItemId, ManualClock, MemStore, MemorySink,
    OocConfig, PrefetchingStore, Recorder, StallKind, StrategyKind, VectorManager,
};
use phylo_ooc::plf::{BuildContext, EngineSpec, LikelihoodEngine, Residency};
use phylo_ooc::setup::{self, DatasetSpec};
use std::io;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};

const READ_NS: u64 = 1_000;
const WRITE_NS: u64 = 300;
const WIDTH: usize = 4;

/// Wraps a store and advances a shared [`ManualClock`] by a fixed cost per
/// read / write, simulating device latency the recorder can observe.
struct SimLatencyStore<S> {
    inner: S,
    clock: ManualClock,
    read_ns: u64,
    write_ns: u64,
}

impl<S: BackingStore> BackingStore for SimLatencyStore<S> {
    fn read(&mut self, item: ItemId, buf: &mut [f64]) -> io::Result<()> {
        self.clock.advance(self.read_ns);
        self.inner.read(item, buf)
    }

    fn write(&mut self, item: ItemId, buf: &[f64]) -> io::Result<()> {
        self.clock.advance(self.write_ns);
        self.inner.write(item, buf)
    }
}

fn sim_store(clock: &ManualClock, n_items: usize) -> SimLatencyStore<MemStore> {
    SimLatencyStore {
        inner: MemStore::new(n_items, WIDTH),
        clock: clock.clone(),
        read_ns: READ_NS,
        write_ns: WRITE_NS,
    }
}

fn count(events: &[Event], layer: &str, op: &str) -> u64 {
    events
        .iter()
        .filter(|e| e.layer == layer && e.op == op)
        .count() as u64
}

/// The scripted plan from the issue: fill the three slots with writes,
/// force two evictions and one demand read, then flush — and assert the
/// attribution splits the elapsed time exactly.
#[test]
fn scripted_plan_attributes_stalls_exactly() {
    let clock = ManualClock::new();
    let (sink, events) = MemorySink::new();
    let rec = Recorder::new(clock.clone(), sink);

    let cfg = OocConfig::builder(6, WIDTH).slots(3).build().unwrap();
    let mut mgr = VectorManager::new(cfg, StrategyKind::Lru.build(None), sim_store(&clock, 6));
    mgr.set_recorder(rec.clone());

    let v = [1.0; WIDTH];
    let mut out = [0.0; WIDTH];

    // Writes fill the three slots — write intent skips the load read.
    mgr.write_vector(0, &v).unwrap();
    mgr.write_vector(1, &v).unwrap();
    mgr.write_vector(2, &v).unwrap();
    // A hit: item 2 is resident, so no clock movement and no event.
    mgr.read_into(2, &mut out).unwrap();
    // Slot pressure: item 3 evicts item 0 (LRU), one write-back.
    mgr.write_vector(3, &v).unwrap();
    // Reading item 0 back evicts item 1 (write-back) then demand-reads.
    mgr.read_into(0, &mut out).unwrap();
    // Flush writes the two still-dirty slots (items 2 and 3).
    mgr.flush().unwrap();

    let stats = *mgr.stats();
    assert_eq!(stats.disk_reads, 1, "script: one demand read");
    assert_eq!(stats.disk_writes, 4, "script: 2 evictions + 2 flush writes");

    // Exact nanosecond attribution: every demand read costs READ_NS on
    // the manual clock, every write-back WRITE_NS.
    assert_eq!(
        rec.kind_ns(StallKind::DemandRead),
        stats.disk_reads * READ_NS
    );
    assert_eq!(
        rec.kind_ns(StallKind::WriteBack),
        stats.disk_writes * WRITE_NS
    );
    assert_eq!(rec.kind_ns(StallKind::PrefetchWait), 0);
    assert_eq!(rec.kind_ns(StallKind::BarrierWait), 0);

    // The whole run advanced the clock only through store I/O, so the
    // wall time decomposes with zero residual compute.
    let wall = rec.now();
    assert_eq!(wall, READ_NS + 4 * WRITE_NS);
    let attr = rec.attribution(wall);
    assert_eq!(attr.demand_read_ns, READ_NS);
    assert_eq!(attr.write_back_ns, 4 * WRITE_NS);
    assert_eq!(attr.compute_ns(), 0);
    // A consistent report never over-attributes: no overflow sample.
    assert_eq!(attr.overflow_ns(), 0);
    assert!(rec.histogram("obs", "attribution-overflow").is_none());

    // Events reconcile with the counters: one per successful transfer,
    // none for hits/misses/evictions (histogram-only).
    let events = events.lock().clone();
    assert_eq!(count(&events, "manager", "demand-read"), stats.disk_reads);
    assert_eq!(count(&events, "manager", "write-back"), stats.disk_writes);
    // Transfers plus the single store-sync span `flush` emits.
    assert_eq!(count(&events, "manager", "flush"), 1);
    assert_eq!(
        rec.events_recorded(),
        stats.disk_reads + stats.disk_writes + 1
    );

    // Histograms still saw everything, including the hist-only spans.
    let hits = rec.histogram("manager", "hit").unwrap();
    assert_eq!(hits.count(), stats.hits);
    let reads = rec.histogram("manager", "demand-read").unwrap();
    assert_eq!(reads.count(), stats.disk_reads);
    assert_eq!(reads.sum_ns(), stats.disk_reads * READ_NS);
    let writes = rec.histogram("manager", "write-back").unwrap();
    assert_eq!(writes.count(), stats.disk_writes);
    assert_eq!(writes.sum_ns(), stats.disk_writes * WRITE_NS);
}

/// An in-memory store shareable between a pipeline's main handle and its
/// worker handle — the same "one underlying device" relationship a
/// [`phylo_ooc::ooc::FileStore`] pair over one path has, without touching
/// the filesystem.
#[derive(Clone)]
struct SharedMemStore(Arc<Mutex<MemStore>>);

impl SharedMemStore {
    fn new(n_items: usize, width: usize) -> Self {
        SharedMemStore(Arc::new(Mutex::new(MemStore::new(n_items, width))))
    }
}

impl BackingStore for SharedMemStore {
    fn read(&mut self, item: ItemId, buf: &mut [f64]) -> io::Result<()> {
        self.0.lock().unwrap().read(item, buf)
    }

    fn write(&mut self, item: ItemId, buf: &[f64]) -> io::Result<()> {
        self.0.lock().unwrap().write(item, buf)
    }
}

/// Blocks every read until the gate opens, reporting "I am about to
/// block" on `entered` first — the test's handle on "the prefetch of this
/// item is in flight *right now*".
struct GatedStore<S> {
    inner: S,
    gate: Arc<(Mutex<bool>, Condvar)>,
    entered: mpsc::Sender<()>,
}

impl<S: BackingStore> BackingStore for GatedStore<S> {
    fn read(&mut self, item: ItemId, buf: &mut [f64]) -> io::Result<()> {
        let _ = self.entered.send(());
        let (lock, cond) = &*self.gate;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cond.wait(open).unwrap();
        }
        drop(open);
        self.inner.read(item, buf)
    }

    fn write(&mut self, item: ItemId, buf: &[f64]) -> io::Result<()> {
        self.inner.write(item, buf)
    }
}

/// A demand read that overlaps its own in-flight prefetch must be counted
/// exactly once: the wait is prefetch-wait, and the manager's enclosing
/// demand-read span *excludes* that interval, so the two kinds are
/// disjoint by construction and sum — with write-back and compute — to
/// wall time with no double subtraction.
#[test]
fn overlapped_prefetch_attributed_once_as_prefetch_wait() {
    let clock = ManualClock::new();
    let (sink, events) = MemorySink::new();
    let rec = Recorder::new(clock.clone(), sink);

    let n = 6;
    let shared = SharedMemStore::new(n, WIDTH);
    // Main handle pays READ_NS / WRITE_NS on the manual clock; the worker
    // handle pays READ_NS per staged read but blocks on the gate first.
    let main = SimLatencyStore {
        inner: shared.clone(),
        clock: clock.clone(),
        read_ns: READ_NS,
        write_ns: WRITE_NS,
    };
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let (entered_tx, entered_rx) = mpsc::channel();
    let worker = GatedStore {
        inner: SimLatencyStore {
            inner: shared.clone(),
            clock: clock.clone(),
            read_ns: READ_NS,
            write_ns: WRITE_NS,
        },
        gate: Arc::clone(&gate),
        entered: entered_tx,
    };
    let mut prefetching = PrefetchingStore::new(main, worker, n, WIDTH);
    prefetching.set_recorder(rec.clone());

    // Dirty-only write-backs: with the paper's unconditional write-back,
    // the demand read's eviction below would fold a write behind the
    // gated plan read, and the fold would retire at a racy point relative
    // to the stalled reader waking — smearing the exact clock arithmetic.
    let cfg = OocConfig::builder(n, WIDTH)
        .slots(3)
        .prefetch_window(4)
        .always_write_back(false)
        .build()
        .unwrap();
    let mut mgr = VectorManager::new(cfg, StrategyKind::Lru.build(None), prefetching);
    mgr.set_recorder(rec.clone());

    let v = [2.0; WIDTH];
    let mut out = [0.0; WIDTH];
    // Fill the three slots, then evict item 0 (LRU) with a write-back the
    // pipeline folds into its queue; drain so the fold has retired (clock
    // advances WRITE_NS through the worker handle) before the plan starts.
    for item in 0..4 {
        mgr.write_vector(item, &v).unwrap();
    }
    mgr.store().drain();
    assert_eq!(rec.now(), WRITE_NS, "one folded write-back retired");
    // Flush the remaining dirty residents so the demand read below evicts
    // a *clean* victim: otherwise its write-back fold would queue behind
    // the gated plan read and retire at a racy point relative to the
    // stalled reader waking, smearing the exact clock arithmetic.
    mgr.flush().unwrap();
    assert_eq!(rec.now(), 4 * WRITE_NS, "fold + three flush writes retired");

    // Install a plan whose first read is item 0: the pipeline starts
    // streaming it and blocks on the gate — the prefetch is now in
    // flight, guaranteed, before the demand read below is issued.
    mgr.begin_plan(AccessPlan::from_records(vec![AccessRecord::read(0)], n));
    entered_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("pipeline worker never started streaming the plan");

    // Open the gate shortly after the demand read has started waiting.
    let opener = std::thread::spawn({
        let gate = Arc::clone(&gate);
        move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            let (lock, cond) = &*gate;
            *lock.lock().unwrap() = true;
            cond.notify_all();
        }
    });
    // The read overlaps its own in-flight prefetch: it stalls, the worker
    // stages (advancing the clock by READ_NS), and the staged copy is
    // consumed — no second disk read.
    mgr.read_into(0, &mut out).unwrap();
    opener.join().unwrap();
    assert_eq!(out, v);

    let stats = *mgr.stats();
    assert_eq!(stats.disk_reads, 1, "one demand read issued to the store");
    let pstats = mgr.store().stats();
    assert_eq!(pstats.hinted_too_late.load(Ordering::Relaxed), 1);
    assert_eq!(pstats.staged_hits.load(Ordering::Relaxed), 1);
    assert_eq!(pstats.staged_misses.load(Ordering::Relaxed), 0);

    // Counted once: the whole store interval is prefetch-wait, and the
    // manager's demand-read span excluded it entirely.
    assert_eq!(rec.kind_ns(StallKind::PrefetchWait), READ_NS);
    assert_eq!(rec.kind_ns(StallKind::DemandRead), 0);

    // Disjoint decomposition: demand + write-back + prefetch + compute
    // partition wall time exactly — nothing double-counted, nothing
    // double-subtracted. (Folded write-backs advance the clock on the
    // worker thread outside the manager's instant-return fold spans, so
    // that time lands in the compute residual / flush span.)
    let wall = rec.now();
    assert_eq!(wall, 4 * WRITE_NS + READ_NS);
    let attr = rec.attribution(wall);
    assert_eq!(attr.prefetch_wait_ns, READ_NS);
    assert_eq!(attr.demand_read_ns, 0);
    assert_eq!(
        attr.demand_read_ns + attr.write_back_ns + attr.prefetch_wait_ns + attr.compute_ns(),
        wall
    );

    let events = events.lock().clone();
    assert_eq!(count(&events, "prefetch", "stalled-read"), 1);
    assert_eq!(count(&events, "manager", "demand-read"), 1);
}

/// The other resolution of the same race: the in-flight marker never
/// resolves (the hint was lost), the stalled read times out and falls
/// through to the main store. The fall-through disk time is demand-read,
/// the (clockless) wait is prefetch-wait — still disjoint, still summing
/// to wall.
#[test]
fn overlapped_prefetch_fallthrough_stays_disjoint() {
    let clock = ManualClock::new();
    let (sink, events) = MemorySink::new();
    let rec = Recorder::new(clock.clone(), sink);

    let n = 6;
    let shared = SharedMemStore::new(n, WIDTH);
    let main = SimLatencyStore {
        inner: shared.clone(),
        clock: clock.clone(),
        read_ns: READ_NS,
        write_ns: WRITE_NS,
    };
    let mut prefetching = PrefetchingStore::new(main, shared.clone(), n, WIDTH);
    prefetching.set_recorder(rec.clone());

    let cfg = OocConfig::builder(n, WIDTH).slots(3).build().unwrap();
    let mut mgr = VectorManager::new(cfg, StrategyKind::Lru.build(None), prefetching);
    mgr.set_recorder(rec.clone());

    let v = [2.0; WIDTH];
    let mut out = [0.0; WIDTH];
    for item in 0..4 {
        mgr.write_vector(item, &v).unwrap();
    }
    mgr.store().drain();
    // Mark a prefetch of item 0 as in flight that nothing will resolve:
    // the demand read waits its bounded spin, then falls through.
    mgr.store().debug_mark_pending(0);
    mgr.read_into(0, &mut out).unwrap();
    assert_eq!(out, v);

    let stats = *mgr.stats();
    assert_eq!(stats.disk_reads, 1);
    let pstats = mgr.store().stats();
    assert_eq!(pstats.hinted_too_late.load(Ordering::Relaxed), 1);
    assert_eq!(pstats.staged_misses.load(Ordering::Relaxed), 1);

    // The manual clock only moved during the fall-through disk read, so
    // the wait interval is zero-width and all READ_NS is demand-read —
    // none of it counted twice as prefetch-wait.
    assert_eq!(rec.kind_ns(StallKind::DemandRead), READ_NS);
    assert_eq!(rec.kind_ns(StallKind::PrefetchWait), 0);

    let wall = rec.now();
    let attr = rec.attribution(wall);
    assert_eq!(
        attr.demand_read_ns + attr.write_back_ns + attr.prefetch_wait_ns + attr.compute_ns(),
        wall
    );

    let events = events.lock().clone();
    assert_eq!(count(&events, "prefetch", "stalled-read"), 1);
    assert_eq!(count(&events, "manager", "demand-read"), 1);
}

/// Engine-level wiring: a full traversal under a recorder produces
/// combine-batch spans and manager events that reconcile with `OocStats`.
#[test]
fn engine_traversal_events_reconcile_with_stats() {
    let data = setup::simulate_dataset(&DatasetSpec {
        n_taxa: 24,
        n_sites: 120,
        seed: 17,
        ..Default::default()
    });
    let (sink, events) = MemorySink::new();
    let rec = Recorder::new(ManualClock::new(), sink);

    let spec = EngineSpec {
        residency: Residency::OocMem { fraction: 0.25 },
        strategy: StrategyKind::Lru,
        ..setup::base_spec(&data)
    };
    let handout = rec.clone();
    let ctx = BuildContext::new().recorders(move |_| handout.clone());
    let mut engine = setup::build_engine(&spec, &data, &ctx).unwrap().engine;

    engine.full_traversals(2).unwrap();

    let stats = engine.ooc_stats().expect("managed engine reports stats");
    let events = events.lock().clone();
    assert!(count(&events, "plf", "combine-batch") >= 1);
    assert_eq!(count(&events, "manager", "demand-read"), stats.disk_reads);
    assert_eq!(count(&events, "manager", "write-back"), stats.disk_writes);
    assert!(stats.miss_rate().is_finite());
    assert!(stats.read_rate().is_finite());
}

/// Satellite of the attribution fix: when the attributed stall totals
/// exceed the wall interval (overlapping spans, or a wall clock that
/// missed part of the measured work), the negative compute residual used
/// to be clamped to zero silently. It must now surface as an
/// `obs/attribution-overflow` sample carrying the excess nanoseconds.
#[test]
fn over_attribution_emits_overflow_sample() {
    let clock = ManualClock::new();
    let (sink, _events) = MemorySink::new();
    let rec = Recorder::new(clock.clone(), sink);

    let cfg = OocConfig::builder(4, WIDTH).slots(3).build().unwrap();
    let mut mgr = VectorManager::new(cfg, StrategyKind::Lru.build(None), sim_store(&clock, 4));
    mgr.set_recorder(rec.clone());

    // Four writes into three slots: one eviction write-back, WRITE_NS of
    // attributed stall on the manual clock.
    let v = [1.0; WIDTH];
    for item in 0..4 {
        mgr.write_vector(item, &v).unwrap();
    }
    assert_eq!(rec.kind_ns(StallKind::WriteBack), WRITE_NS);

    // Attribute against a wall interval shorter than the stall total —
    // the classic "timer started late" inconsistency.
    let wall = WRITE_NS / 2;
    let attr = rec.attribution(wall);
    assert_eq!(attr.compute_ns(), 0, "residual is clamped");
    assert_eq!(attr.overflow_ns(), WRITE_NS - wall);

    let overflow = rec
        .histogram("obs", "attribution-overflow")
        .expect("over-attribution must leave a trace");
    assert_eq!(overflow.count(), 1);
    assert_eq!(overflow.sum_ns(), WRITE_NS - wall);

    // A consistent re-report does not add to the counter.
    let ok = rec.attribution(2 * WRITE_NS);
    assert_eq!(ok.overflow_ns(), 0);
    let overflow = rec.histogram("obs", "attribution-overflow").unwrap();
    assert_eq!(overflow.count(), 1);
}
