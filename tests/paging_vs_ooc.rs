//! The mechanism behind Figure 5: under the same memory budget, the
//! out-of-core manager must (a) produce identical results, (b) move far
//! fewer, far larger I/O requests than the page-granularity baseline, and
//! (c) the paging baseline's fault count must grow with memory pressure as
//! reported in the paper's §4.3.

mod common;

use phylo_ooc::ooc::StrategyKind;
use phylo_ooc::plf::LikelihoodEngine;
use phylo_ooc::setup::{self, DatasetSpec};

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_taxa: 96,
        n_sites: 300,
        seed: 4242,
        ..Default::default()
    }
}

#[test]
fn same_budget_same_result_fewer_ops() {
    let data = setup::simulate_dataset(&spec());
    let dir = tempfile::tempdir().unwrap();
    let budget = (data.total_vector_bytes() / 4) as usize;

    let mut paged = setup::paged_engine(&data, dir.path().join("swap.bin"), budget).unwrap();
    let lnl_paged = paged.full_traversals(3).unwrap();
    let pstats = *paged.store().arena().stats();

    let mut ooc = common::ooc_file(
        &data,
        &dir.path().join("vectors.bin"),
        budget as u64,
        StrategyKind::Lru,
    );
    let lnl_ooc = ooc.full_traversals(3).unwrap();
    let ostats = ooc.ooc_stats().expect("managed engine reports stats");

    assert_eq!(lnl_paged.to_bits(), lnl_ooc.to_bits());
    assert!(pstats.major_faults > 0, "baseline must be paging");
    // Application knowledge -> an order of magnitude fewer I/O requests.
    assert!(
        ostats.io_ops() * 4 < pstats.io_ops(),
        "ooc ops {} should be well below paging ops {}",
        ostats.io_ops(),
        pstats.io_ops()
    );
    // And each out-of-core request is a whole vector, far above 4 KiB.
    assert!(data.width() * 8 > 4096 * 4);
}

#[test]
fn fault_counts_grow_with_dataset_size() {
    // §4.3: "the number of page faults increases from 346,861 for 2GB to
    // 902,489 for 5GB" — same phenomenon at our scale: fixed budget,
    // growing dataset, growing fault count once RAM is exceeded.
    let dir = tempfile::tempdir().unwrap();
    let budget = 1024 * 1024; // 1 MiB: exceeded by all three datasets
    let mut faults = Vec::new();
    for (i, n_sites) in [150usize, 300, 600].into_iter().enumerate() {
        let data = setup::simulate_dataset(&DatasetSpec {
            n_taxa: 64,
            n_sites,
            seed: 9,
            ..Default::default()
        });
        let mut paged =
            setup::paged_engine(&data, dir.path().join(format!("swap{i}.bin")), budget).unwrap();
        let _ = paged.full_traversals(2).unwrap();
        faults.push(paged.store().arena().stats().major_faults);
    }
    assert!(
        faults[0] < faults[1] && faults[1] < faults[2],
        "faults must grow with pressure: {faults:?}"
    );
}

#[test]
fn ooc_io_scales_with_misses_not_touches() {
    // Doubling traversals over a fitting working set must not double I/O.
    let data = setup::simulate_dataset(&DatasetSpec {
        n_taxa: 40,
        n_sites: 150,
        seed: 3,
        ..Default::default()
    });
    let mut fits = common::ooc_mem(&data, 1.0, StrategyKind::Lru);
    let _ = fits.full_traversals(4).unwrap();
    let stats = fits.ooc_stats().expect("managed engine reports stats");
    assert_eq!(
        stats.miss_rate() * stats.requests as f64,
        stats.misses as f64
    );
    assert_eq!(
        stats.misses as usize,
        data.n_items(),
        "f = 1.0: only the cold loads miss"
    );
    assert_eq!(stats.disk_reads, 0, "nothing is ever evicted at f = 1.0");
}

#[test]
fn modeled_clock_replays_paper_scale_geometry() {
    // The modelled-disk replay used for the paper-scale Figure 5 points:
    // identical access pattern, virtual I/O clock instead of real I/O.
    use phylo_ooc::ooc::{DiskModel, ModeledStore, NullStore, OocConfig, VectorManager};
    use phylo_ooc::plf::OocStore;
    use phylo_ooc::plf::PlfEngine;

    let data = setup::simulate_dataset(&DatasetSpec {
        n_taxa: 32,
        n_sites: 120,
        seed: 12,
        ..Default::default()
    });
    let cfg = OocConfig::builder(data.n_items(), data.width())
        .fraction(0.25)
        .build()
        .expect("valid out-of-core config");
    let store = ModeledStore::new(NullStore, DiskModel::hdd_2010());
    let manager = VectorManager::new(cfg, StrategyKind::Lru.build(None), store);
    let mut engine = PlfEngine::new(
        data.tree.clone(),
        &data.comp,
        data.model.clone(),
        data.spec.alpha,
        data.spec.n_cats,
        OocStore::new(manager),
    );
    let _ = engine.full_traversals(5).unwrap();
    let clock = engine.store().manager().store().clock_secs();
    let ops = engine.store().manager().store().ops();
    assert!(ops > 0);
    // Each op costs at least the seek latency.
    assert!(clock >= ops as f64 * 0.008);
}
