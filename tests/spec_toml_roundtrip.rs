//! Property test for the `EngineSpec` profile format: serializing any
//! valid spec to TOML and parsing it back must reproduce the spec
//! exactly — every axis, including the `compression` field, with no
//! drift in floats (`f64::to_string` round-trips bit-exactly).

use phylo_ooc::ooc::{CompressionMode, StrategyKind};
use phylo_ooc::plf::{EngineSpec, KernelBackend, Residency};
use proptest::prelude::*;

/// Any *valid* spec: the generator draws every axis independently, then
/// repairs the combinations `EngineSpec::validate` rejects (pipelines
/// need file backing, paged runs cannot shard or compress, …) so the
/// round-trip property is tested on the full accepted surface.
fn arb_spec() -> impl Strategy<Value = EngineSpec> {
    (
        (
            0u8..5,                             // residency selector
            0.01f64..1.0,                       // fraction
            1u64..(1 << 40),                    // byte budget
            0u8..5,                             // strategy selector
            any::<u64>(),                       // random-strategy seed
            (1usize..5, 0usize..3, 1usize..33), // shards, io_threads, window
        ),
        (
            0u8..5,        // kernel selector (4 = auto)
            0.05f64..5.0,  // alpha
            1usize..8,     // n_cats
            any::<bool>(), // read_skipping
            any::<bool>(), // always_write_back
            0u8..3,        // compression selector
        ),
    )
        .prop_map(
            |(
                (res, fraction, bytes, strat, seed, (shards, io_threads, window)),
                (kern, alpha, n_cats, read_skipping, always_write_back, comp),
            )| {
                let residency = match res {
                    0 => Residency::InRam,
                    1 => Residency::OocMem { fraction },
                    2 => Residency::File { fraction },
                    3 => Residency::FileLimit { limit_bytes: bytes },
                    _ => Residency::Paged { phys_bytes: bytes },
                };
                let strategy = match strat {
                    0 => StrategyKind::Random { seed },
                    1 => StrategyKind::Lru,
                    2 => StrategyKind::Lfu,
                    3 => StrategyKind::Topological,
                    _ => StrategyKind::NextUse,
                };
                let kernel = match kern {
                    0 => Some(KernelBackend::Scalar),
                    1 => Some(KernelBackend::GenericUnrolled),
                    2 => Some(KernelBackend::Dna4Unrolled),
                    3 => Some(KernelBackend::Avx2Fma),
                    _ => None,
                };
                let compression = match comp {
                    0 => None,
                    1 => Some(CompressionMode::Exp),
                    _ => Some(CompressionMode::ExpF32),
                };
                // Repair the combinations validate() rejects.
                let file_backed = matches!(
                    residency,
                    Residency::File { .. } | Residency::FileLimit { .. }
                );
                let managed = file_backed || matches!(residency, Residency::OocMem { .. });
                EngineSpec {
                    residency,
                    strategy,
                    shards: if matches!(residency, Residency::Paged { .. }) {
                        1
                    } else {
                        shards
                    },
                    io_threads: if file_backed { io_threads } else { 0 },
                    window,
                    kernel,
                    alpha,
                    n_cats,
                    read_skipping,
                    always_write_back,
                    compression: if managed { compression } else { None },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn toml_round_trip_is_identity(spec in arb_spec()) {
        spec.validate().expect("generator only yields valid specs");
        let text = spec.to_toml();
        let parsed = EngineSpec::from_toml(&text)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{text}"));
        prop_assert_eq!(&parsed, &spec);
        // Serialization is deterministic: a second hop is a fixpoint.
        prop_assert_eq!(parsed.to_toml(), text);
    }
}
