//! Shard-equivalence suite: the sharded parallel engine must be
//! bit-identical to the serial path for every shard count, merge its
//! per-shard residency statistics exactly, and keep both properties
//! under injected store faults with a retry layer.

mod common;

use phylo_ooc::ooc::{
    BackingStore, FaultInjectingStore, FaultKind, FaultOp, FaultPlan, FaultRule, MemStore,
    OocConfig, OocStats, RetryPolicy, RetryingStore, ShardSpec, StrategyKind, VectorManager,
};
use phylo_ooc::plf::{LikelihoodEngine, OocStore, ShardedPlfEngine};
use phylo_ooc::setup::{self, DatasetSpec};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_taxa: 24,
        n_sites: 211, // odd length: uneven shard ranges for k = 2, 4, 7
        seed: 1105,
        ..Default::default()
    }
}

/// Sharded engine over arbitrary per-shard backing stores built by `mk`
/// (the spec layer only covers Mem/File stores).
fn sharded_over<S, F>(data: &setup::Dataset, k: usize, mut mk: F) -> ShardedPlfEngine<OocStore<S>>
where
    S: BackingStore + Send,
    F: FnMut(usize) -> S,
{
    let spec = ShardSpec::even(data.comp.n_patterns(), k);
    let dims = ShardedPlfEngine::<OocStore<S>>::shard_dims(&data.comp, data.spec.n_cats, &spec);
    let stores = dims
        .iter()
        .map(|d| {
            let cfg = OocConfig::builder(data.n_items(), d.width())
                .fraction(0.25)
                .build()
                .expect("valid out-of-core config");
            let manager = VectorManager::new(cfg, StrategyKind::Lru.build(None), mk(d.width()));
            OocStore::new(manager)
        })
        .collect();
    ShardedPlfEngine::new(
        data.tree.clone(),
        &data.comp,
        data.model.clone(),
        data.spec.alpha,
        data.spec.n_cats,
        spec,
        stores,
    )
}

#[test]
fn sharded_likelihood_bit_identical_for_all_shard_counts() {
    let data = setup::simulate_dataset(&spec());
    let reference = setup::inram_engine(&data)
        .log_likelihood()
        .expect("in-RAM reference cannot fail");
    let serial = common::ooc_mem(&data, 0.25, StrategyKind::Lru)
        .log_likelihood()
        .expect("serial OOC traversal failed");
    assert_eq!(serial.to_bits(), reference.to_bits());

    for k in SHARD_COUNTS {
        let mut sharded = common::sharded_mem(&data, 0.25, StrategyKind::Lru, k);
        let lnl = sharded.log_likelihood().expect("sharded traversal failed");
        assert_eq!(
            lnl.to_bits(),
            reference.to_bits(),
            "k={k}: {lnl} vs {reference}"
        );
    }
}

#[test]
fn sharded_file_regions_bit_identical_to_serial() {
    let data = setup::simulate_dataset(&spec());
    let dir = tempfile::tempdir().expect("tempdir");
    let reference = setup::inram_engine(&data)
        .log_likelihood()
        .expect("in-RAM reference cannot fail");

    for k in SHARD_COUNTS {
        let mut sharded = common::sharded_file(
            &data,
            &dir.path().join(format!("shards_{k}.bin")),
            0.25,
            StrategyKind::Lru,
            k,
            0,
        );
        let lnl = sharded
            .log_likelihood()
            .expect("sharded file traversal failed");
        assert_eq!(lnl.to_bits(), reference.to_bits(), "k={k}");
    }
}

#[test]
fn sharded_search_operations_bit_identical_to_serial() {
    // The harder determinism claims: branch-length Newton (three per-site
    // accumulators), smoothing sweeps and the Brent α optimisation must
    // follow exactly the serial engine's floating-point trajectory.
    let data = setup::simulate_dataset(&spec());
    let mut serial = setup::inram_engine(&data);
    let mut sharded = common::sharded_mem(&data, 0.25, StrategyKind::Lru, 4);

    let h = serial.tree().branches().next().expect("tree has branches");
    let (z_s, l_s) = serial.optimize_branch(h, 16).expect("serial NR failed");
    let (z_p, l_p) = sharded.optimize_branch(h, 16).expect("sharded NR failed");
    assert_eq!(z_s.to_bits(), z_p.to_bits(), "NR branch length diverged");
    assert_eq!(l_s.to_bits(), l_p.to_bits(), "NR likelihood diverged");

    let sm_s = serial.smooth_branches(2, 8).expect("serial smoothing");
    let sm_p = sharded.smooth_branches(2, 8).expect("sharded smoothing");
    assert_eq!(sm_s.to_bits(), sm_p.to_bits(), "smoothing diverged");

    let (a_s, la_s) = serial.optimize_alpha(1e-3, 40).expect("serial alpha");
    let (a_p, la_p) = sharded.optimize_alpha(1e-3, 40).expect("sharded alpha");
    assert_eq!(a_s.to_bits(), a_p.to_bits(), "Brent α diverged");
    assert_eq!(la_s.to_bits(), la_p.to_bits(), "α likelihood diverged");
}

#[test]
fn merged_stats_equal_sum_of_per_shard_stats() {
    let data = setup::simulate_dataset(&spec());
    let n_items = data.n_items();
    let mut sharded = sharded_over(&data, 4, |width| MemStore::new(n_items, width));
    sharded.full_traversals(3).expect("traversals failed");

    let merged = sharded.merged_ooc_stats().expect("merged stats");
    let sum: OocStats = (0..sharded.n_shards())
        .map(|i| *sharded.shard(i).store().manager().stats())
        .sum();
    assert_eq!(merged, sum, "merged stats must be the exact field-wise sum");
    assert!(merged.requests > 0);
    assert!(
        merged.misses > 0,
        "a quarter-resident run must miss in at least one shard"
    );
}

#[test]
fn sharded_engine_absorbs_transient_faults_with_retry() {
    let data = setup::simulate_dataset(&spec());
    let reference = setup::inram_engine(&data)
        .log_likelihood()
        .expect("in-RAM reference cannot fail");

    let n_items = data.n_items();
    let mut sharded = sharded_over(&data, 4, |width| {
        let plan = FaultPlan::transient_reads(2, 3).with(FaultRule::Window {
            op: FaultOp::Write,
            start: 1,
            count: 2,
            kind: FaultKind::Transient,
        });
        RetryingStore::new(
            FaultInjectingStore::new(MemStore::new(n_items, width), plan),
            RetryPolicy::immediate(4),
        )
    });
    let lnl = sharded
        .log_likelihood()
        .expect("transient faults must be absorbed per shard");
    assert_eq!(
        lnl.to_bits(),
        reference.to_bits(),
        "recovery must not perturb the likelihood"
    );

    let (mut retries, mut recoveries, mut io_errors) = (0, 0, 0);
    for i in 0..sharded.n_shards() {
        let mgr = sharded.shard(i).store().manager();
        let r = mgr.store().retry_stats();
        retries += r.retries;
        recoveries += r.recoveries;
        assert_eq!(r.exhausted, 0);
        assert_eq!(r.permanent_failures, 0);
        io_errors += mgr.stats().io_errors;
    }
    assert!(retries > 0, "the fault schedules must have fired");
    assert!(recoveries > 0);
    assert_eq!(io_errors, 0, "no error may leak past the retry layer");
}

#[test]
fn sharded_engine_surfaces_permanent_faults() {
    let data = setup::simulate_dataset(&spec());
    let n_items = data.n_items();
    // Every shard's write-backs fail permanently; the parallel traversal
    // must surface an error, not panic or silently drop a shard.
    let mut sharded = sharded_over(&data, 4, |width| {
        let plan = FaultPlan::none().with(FaultRule::From {
            op: FaultOp::Write,
            start: 0,
            kind: FaultKind::Permanent,
        });
        FaultInjectingStore::new(MemStore::new(n_items, width), plan)
    });
    let err = sharded
        .log_likelihood()
        .expect_err("permanent write faults must surface from the sharded engine");
    assert!(err.to_string().contains("write failed"), "{err}");
}
