//! Pipeline stress suite: the plan-driven double-buffered I/O pipeline
//! must be a pure latency optimisation. Sweeping lookahead window sizes,
//! I/O thread counts and replacement strategies — with and without
//! injected worker-store faults — every configuration must produce
//! likelihoods bit-identical to the in-RAM reference, and the residency
//! statistics must stay internally consistent.

mod common;

use phylo_ooc::ooc::{
    FaultInjectingStore, FaultKind, FaultOp, FaultPlan, FaultRule, FileStore, OocConfig, OocStats,
    PrefetchingStore, StrategyKind, VectorManager,
};
use phylo_ooc::plf::{LikelihoodEngine, OocStore, PlfEngine};
use phylo_ooc::setup::{self, DatasetSpec};
use std::path::Path;

/// Window sizes to sweep: 0 disables plan streaming entirely (pure
/// demand paging through the pipeline's write-fold path), 1 is the
/// degenerate single-item window, 32 overshoots the slot count.
const WINDOWS: [usize; 5] = [0, 1, 2, 8, 32];

fn spec() -> DatasetSpec {
    DatasetSpec {
        n_taxa: 28,
        n_sites: 173, // odd: exercises non-uniform widths when sharded
        seed: 2024,
        ..Default::default()
    }
}

/// The two checkpoints every configuration is compared against:
/// likelihood after repeated full traversals, and after a smoothing pass
/// plus a from-scratch re-evaluation.
fn reference_run(data: &setup::Dataset) -> (u64, u64) {
    let mut engine = setup::inram_engine(data);
    let a = engine.full_traversals(2).unwrap();
    engine.smooth_branches(1, 6).unwrap();
    engine.invalidate_all();
    let b = engine.log_likelihood().unwrap();
    (a.to_bits(), b.to_bits())
}

fn checkpoints<S: phylo_ooc::plf::AncestralStore>(engine: &mut PlfEngine<S>) -> (u64, u64) {
    let a = engine.full_traversals(2).unwrap();
    engine.smooth_branches(1, 6).unwrap();
    engine.invalidate_all();
    let b = engine.log_likelihood().unwrap();
    (a.to_bits(), b.to_bits())
}

/// The counter identities that must survive any pipeline interleaving:
/// every request is a hit or a miss, and every miss is satisfied by
/// exactly one of a disk read, a skipped read, a cold zero-fill, or a
/// staged-buffer adoption.
fn assert_stats_consistent(s: &OocStats, ctx: &str) {
    assert_eq!(s.requests, s.hits + s.misses, "{ctx}: requests split");
    assert_eq!(
        s.misses,
        s.disk_reads + s.skipped_reads + s.cold_loads + s.staged_loads,
        "{ctx}: miss satisfaction split"
    );
}

/// Engine over a plan-driven pipeline: `io_threads` worker handles onto
/// the same backing file, each optionally wrapped in a fault injector.
fn pipelined_engine(
    data: &setup::Dataset,
    path: &Path,
    window: usize,
    kind: StrategyKind,
    io_threads: usize,
    worker_faults: &FaultPlan,
) -> PlfEngine<OocStore<PrefetchingStore<FileStore>>> {
    let main = FileStore::create(path, data.n_items(), data.width()).unwrap();
    let workers: Vec<_> = (0..io_threads)
        .map(|_| {
            FaultInjectingStore::new(
                FileStore::open(path, data.width()).unwrap(),
                worker_faults.clone(),
            )
        })
        .collect();
    let store = PrefetchingStore::with_pool(main, workers, data.n_items(), data.width());
    let cfg = OocConfig::builder(data.n_items(), data.width())
        .fraction(0.25)
        .prefetch_window(window)
        .build()
        .expect("valid out-of-core config");
    let (strategy, _) = setup::build_strategy(kind, &data.tree);
    let manager = VectorManager::new(cfg, strategy, store);
    PlfEngine::new(
        data.tree.clone(),
        &data.comp,
        data.model.clone(),
        data.spec.alpha,
        data.spec.n_cats,
        OocStore::new(manager),
    )
}

#[test]
fn pipelined_likelihood_bit_identical_across_windows() {
    let data = setup::simulate_dataset(&spec());
    let reference = reference_run(&data);
    let dir = tempfile::tempdir().unwrap();
    let clean = FaultPlan::none();

    for kind in [StrategyKind::Lru, StrategyKind::NextUse] {
        for (i, &window) in WINDOWS.iter().enumerate() {
            let path = dir.path().join(format!("w{window}-{i}-{kind:?}.bin"));
            let mut engine = pipelined_engine(&data, &path, window, kind, 1, &clean);
            let got = checkpoints(&mut engine);
            assert_eq!(
                got, reference,
                "window {window}, strategy {kind:?}: pipeline changed the likelihood"
            );
            let stats = *engine.store().manager().stats();
            assert_stats_consistent(&stats, &format!("window {window}, {kind:?}"));
        }
    }
}

#[test]
fn pipelined_likelihood_bit_identical_with_io_thread_pool() {
    let data = setup::simulate_dataset(&spec());
    let reference = reference_run(&data);
    let dir = tempfile::tempdir().unwrap();
    let clean = FaultPlan::none();

    for io_threads in [2, 4] {
        let path = dir.path().join(format!("pool{io_threads}.bin"));
        let mut engine = pipelined_engine(&data, &path, 8, StrategyKind::Lru, io_threads, &clean);
        let got = checkpoints(&mut engine);
        assert_eq!(
            got, reference,
            "{io_threads} I/O threads: pipeline changed the likelihood"
        );
        let stats = *engine.store().manager().stats();
        assert_stats_consistent(&stats, &format!("{io_threads} I/O threads"));
    }
}

#[test]
fn pipelined_likelihood_survives_worker_faults() {
    let data = setup::simulate_dataset(&spec());
    let reference = reference_run(&data);
    let dir = tempfile::tempdir().unwrap();

    // Roughly 15% of worker prefetch reads and 10% of folded write-backs
    // fail (deterministically, by hashed op index). Failed prefetches
    // degrade to demand reads on the clean main handle; failed folds stay
    // queued and are retried synchronously at flush/shutdown — neither
    // may change a single bit of the result.
    let faults = FaultPlan::none()
        .with(FaultRule::Random {
            op: FaultOp::Read,
            seed: 0xF00D,
            permille: 150,
            kind: FaultKind::Transient,
        })
        .with(FaultRule::Random {
            op: FaultOp::Write,
            seed: 0xBEEF,
            permille: 100,
            kind: FaultKind::Permanent,
        });

    for (i, &window) in WINDOWS.iter().enumerate() {
        if window == 0 {
            continue; // no streaming to disturb
        }
        let path = dir.path().join(format!("faulty-w{window}-{i}.bin"));
        let mut engine = pipelined_engine(&data, &path, window, StrategyKind::Lru, 2, &faults);
        let got = checkpoints(&mut engine);
        assert_eq!(
            got, reference,
            "window {window} under worker faults: pipeline changed the likelihood"
        );
        let stats = *engine.store().manager().stats();
        assert_stats_consistent(&stats, &format!("faulty window {window}"));
    }
}

#[test]
fn sharded_pipelines_bit_identical_and_stats_merge() {
    let data = setup::simulate_dataset(&spec());
    let reference = setup::inram_engine(&data).log_likelihood().unwrap();
    let dir = tempfile::tempdir().unwrap();

    for k in [2, 4] {
        for window in [1, 8] {
            let path = dir.path().join(format!("sharded-{k}-{window}.bin"));
            let mut engine =
                common::sharded_file_windowed(&data, &path, 0.25, StrategyKind::Lru, k, 1, window);
            let lnl = engine.log_likelihood().unwrap();
            assert_eq!(
                lnl.to_bits(),
                reference.to_bits(),
                "{k} shards, window {window}: sharded pipeline changed the likelihood"
            );
            let merged = engine
                .ooc_stats()
                .expect("sharded OOC engine reports merged stats");
            assert_stats_consistent(&merged, &format!("{k} shards, window {window}"));
            assert!(
                merged.requests > 0,
                "{k} shards: merged stats must reflect real traffic"
            );
        }
    }
}
